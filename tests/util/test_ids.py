"""Tests for identifier generation."""

import pytest

from repro.util import new_id, new_run_id
from repro.util.ids import ID_ALPHABET


class TestNewId:
    def test_prefix_is_applied(self):
        assert new_id("task").startswith("task-")

    def test_ids_are_unique(self):
        ids = {new_id("x") for _ in range(1000)}
        assert len(ids) == 1000

    def test_ids_sort_in_creation_order(self):
        a = new_id("seq")
        b = new_id("seq")
        assert a < b

    def test_suffix_uses_safe_alphabet(self):
        suffix = new_id("p").rsplit("-", 1)[1]
        assert all(c in ID_ALPHABET for c in suffix)

    def test_rejects_empty_prefix(self):
        with pytest.raises(ValueError):
            new_id("")

    def test_rejects_non_identifier_prefix(self):
        with pytest.raises(ValueError):
            new_id("has space")

    def test_run_id_prefix(self):
        assert new_run_id().startswith("run-")

    def test_thread_safety(self):
        import threading

        results: list = []

        def make_many():
            results.extend(new_id("t") for _ in range(500))

        threads = [threading.Thread(target=make_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 2000
