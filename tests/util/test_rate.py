"""Tests for rate estimation and smoothing."""

import pytest

from repro.util import EWMA, RateEstimator
from repro.util.validation import ValidationError


class TestEWMA:
    def test_first_sample_sets_value(self):
        e = EWMA(alpha=0.5)
        assert e.update(10.0) == 10.0

    def test_smoothing_moves_toward_samples(self):
        e = EWMA(alpha=0.5)
        e.update(0.0)
        assert e.update(10.0) == 5.0

    def test_alpha_one_tracks_raw(self):
        e = EWMA(alpha=1.0)
        e.update(1.0)
        assert e.update(42.0) == 42.0

    def test_reset(self):
        e = EWMA()
        e.update(5.0)
        e.reset()
        assert e.value is None

    def test_invalid_alpha(self):
        with pytest.raises(ValidationError):
            EWMA(alpha=1.5)


class TestRateEstimator:
    def make(self):
        # Manual clock for determinism.
        state = {"t": 0.0}
        est = RateEstimator(window=10.0, clock=lambda: state["t"])
        return est, state

    def test_empty_rate_is_zero(self):
        est, _ = self.make()
        assert est.rate() == 0.0

    def test_steady_rate(self):
        est, state = self.make()
        for i in range(10):
            state["t"] = float(i)
            est.record()
        state["t"] = 10.0
        # 10 events over 10 seconds (window-limited span).
        assert est.rate() == pytest.approx(1.0, rel=0.2)

    def test_events_outside_window_ignored(self):
        est, state = self.make()
        est.record(at=0.0)
        state["t"] = 100.0
        assert est.rate() == 0.0

    def test_total_counts_everything(self):
        est, state = self.make()
        est.record(count=3.0)
        est.record(count=2.0)
        assert est.total == 5.0

    def test_invalid_window(self):
        with pytest.raises(ValidationError):
            RateEstimator(window=0)
