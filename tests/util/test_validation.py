"""Tests for validation helpers."""

import pytest

from repro.util import (
    ValidationError,
    check_in_range,
    check_non_negative,
    check_one_of,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="x must be positive"):
            check_positive("x", bad)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive("x", True)

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError, match="must be a number"):
            check_positive("x", "3")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -0.1)


class TestCheckInRange:
    def test_bounds_inclusive(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError, match=r"\[0.0, 1.0\]"):
            check_in_range("x", 1.5, 0.0, 1.0)


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", "s", (int, str)) == "s"

    def test_error_names_expected_types(self):
        with pytest.raises(ValidationError, match="int | str"):
            check_type("x", 1.5, (int, str))


class TestCheckOneOf:
    def test_accepts_member(self):
        assert check_one_of("mode", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValidationError, match="must be one of"):
            check_one_of("mode", "c", ("a", "b"))

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
