"""Tests for timing helpers."""

import time

import pytest

from repro.util import Stopwatch, Timer, monotonic_ms


class TestStopwatch:
    def test_context_manager_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert 0.005 < sw.elapsed < 1.0

    def test_elapsed_ms_matches_elapsed(self):
        with Stopwatch() as sw:
            pass
        assert sw.elapsed_ms == pytest.approx(sw.elapsed * 1000.0)

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_unstarted_elapsed_is_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_live_elapsed_while_running(self):
        sw = Stopwatch().start()
        first = sw.elapsed
        time.sleep(0.002)
        assert sw.elapsed > first


class TestTimer:
    def test_accumulates_sections(self):
        t = Timer()
        with t.time():
            pass
        with t.time():
            pass
        assert t.count == 2
        assert t.total >= 0.0

    def test_mean_of_added_values(self):
        t = Timer()
        t.add(1.0)
        t.add(3.0)
        assert t.mean == 2.0
        assert t.min == 1.0
        assert t.max == 3.0

    def test_empty_mean_is_zero(self):
        assert Timer().mean == 0.0

    def test_laps_recorded(self):
        t = Timer()
        t.add(0.5)
        assert t.laps == (0.5,)


def test_monotonic_ms_increases():
    a = monotonic_ms()
    b = monotonic_ms()
    assert b >= a
