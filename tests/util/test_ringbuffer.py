"""Tests for the bounded ring buffer."""

import pytest

from repro.util import RingBuffer, ValidationError


class TestRingBuffer:
    def test_append_and_iterate(self):
        rb = RingBuffer(5)
        rb.extend([1, 2, 3])
        assert list(rb) == [1, 2, 3]

    def test_overwrites_oldest_when_full(self):
        rb = RingBuffer(3)
        rb.extend(range(5))
        assert list(rb) == [2, 3, 4]

    def test_len_tracks_size(self):
        rb = RingBuffer(3)
        assert len(rb) == 0
        rb.append(1)
        assert len(rb) == 1
        rb.extend([2, 3, 4])
        assert len(rb) == 3

    def test_full_flag(self):
        rb = RingBuffer(2)
        assert not rb.full
        rb.extend([1, 2])
        assert rb.full

    def test_indexing(self):
        rb = RingBuffer(3)
        rb.extend([10, 20, 30, 40])
        assert rb[0] == 20
        assert rb[-1] == 40

    def test_index_out_of_range(self):
        rb = RingBuffer(3)
        rb.append(1)
        with pytest.raises(IndexError):
            rb[1]
        with pytest.raises(IndexError):
            rb[-2]

    def test_clear(self):
        rb = RingBuffer(3)
        rb.extend([1, 2, 3])
        rb.clear()
        assert len(rb) == 0
        assert list(rb) == []

    def test_to_list(self):
        rb = RingBuffer(4)
        rb.extend("abc")
        assert rb.to_list() == ["a", "b", "c"]

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            RingBuffer(0)

    def test_capacity_one(self):
        rb = RingBuffer(1)
        rb.extend([1, 2, 3])
        assert list(rb) == [3]

    def test_wraparound_ordering_preserved(self):
        rb = RingBuffer(4)
        rb.extend(range(10))
        assert list(rb) == [6, 7, 8, 9]
