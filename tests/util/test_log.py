"""Tests for logging setup."""

import logging

from repro.util.log import ROOT_LOGGER_NAME, configure, get_logger


class TestGetLogger:
    def test_namespaced_under_root(self):
        logger = get_logger("broker")
        assert logger.name == f"{ROOT_LOGGER_NAME}.broker"

    def test_already_namespaced_passthrough(self):
        logger = get_logger(f"{ROOT_LOGGER_NAME}.compute")
        assert logger.name == f"{ROOT_LOGGER_NAME}.compute"

    def test_same_name_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestConfigure:
    def teardown_method(self):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        for handler in list(root.handlers):
            root.removeHandler(handler)

    def test_attaches_stream_handler(self):
        configure()
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(isinstance(h, logging.StreamHandler) for h in root.handlers)

    def test_idempotent(self):
        configure()
        configure()
        root = logging.getLogger(ROOT_LOGGER_NAME)
        stream_handlers = [
            h for h in root.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(stream_handlers) == 1

    def test_level_applied(self):
        configure(level=logging.DEBUG)
        assert logging.getLogger(ROOT_LOGGER_NAME).level == logging.DEBUG

    def test_library_silent_by_default(self, capsys):
        # Without configure(), loggers propagate to the root logger but
        # the framework never calls basicConfig — so nothing prints.
        get_logger("quiet-test").info("should not appear")
        assert "should not appear" not in capsys.readouterr().err
