"""Equivalence tests: the batched consume path vs the per-message path.

The micro-batched fast path must be an *optimisation*, not a semantic
change: for a stateless processor the two paths must produce identical
results, identical message traces (same ids, same stages) and identical
completion accounting — including under duplicate delivery and poisoned
messages.
"""

import numpy as np
import pytest

from repro.broker import Producer
from repro.core import (
    EdgeToCloudPipeline,
    PipelineConfig,
    make_block_producer,
    make_model_processor,
    passthrough_processor,
)
from repro.core.context import FunctionContext
from repro.data import encode_block
from repro.ml import StreamingKMeans

STAGES = (
    "produce",
    "uplink_start",
    "broker_in",
    "dequeue",
    "consume",
    "process_start",
    "process_end",
)


def build_pipeline(running_pilots, *, batched, run_id, producer=None, processor=None):
    edge, cloud = running_pilots
    knobs = dict(poll_batch=8, consume_batch=8) if batched else {}
    config = PipelineConfig(
        num_devices=2, messages_per_device=8, max_duration=60.0, **knobs
    )
    return EdgeToCloudPipeline(
        pilot_edge=edge,
        pilot_cloud_processing=cloud,
        produce_function_handler=producer
        or make_block_producer(points=50, features=8, clusters=5),
        process_cloud_function_handler=processor or passthrough_processor,
        config=config,
        run_id=run_id,
    )


def make_seq_producer():
    """Deterministic producer: block values carry the per-device sequence."""
    counts: dict = {}

    def produce(context):
        device = (
            context.get(FunctionContext.DEVICE_ID, "device-0")
            if context
            else "device-0"
        )
        seq = counts.get(device, 0)
        counts[device] = seq + 1
        return np.full((6, 4), float(seq))

    return produce


def make_poison_processor():
    """Fails on the block whose sequence marker is 2 — in both forms."""

    def poison(context=None, data=None):
        block = np.asarray(data)
        if block[0, 0] == 2.0:
            raise RuntimeError("poisoned block")
        return {"first": float(block[0, 0])}

    def poison_batch(context=None, blocks=None):
        if any(np.asarray(b)[0, 0] == 2.0 for b in blocks):
            raise RuntimeError("batch poisoned")
        return [poison(context, b) for b in blocks]

    poison.process_cloud_batch = poison_batch
    return poison


class TestEquivalence:
    def test_results_traces_and_counts_match(self, running_pilots):
        runs = {}
        for label, batched in (("per", False), ("bat", True)):
            pipeline = build_pipeline(running_pilots, batched=batched, run_id="eqv")
            result = pipeline.run()
            assert result.completed
            traces = pipeline.collector.traces()
            runs[label] = (result, traces)
        per, bat = runs["per"], runs["bat"]
        # Same processed count, same results (order-independent).
        assert len(per[0].results) == len(bat[0].results) == 16
        key = lambda r: (r["points"], r["features"], round(r["mean_norm"], 12))
        assert sorted(map(key, per[0].results)) == sorted(map(key, bat[0].results))
        # Same message ids, each with the full stage trace.
        per_ids = {t.message_id for t in per[1]}
        bat_ids = {t.message_id for t in bat[1]}
        assert per_ids == bat_ids and len(per_ids) == 16
        for traces in (per[1], bat[1]):
            for trace in traces:
                assert all(trace.has(stage) for stage in STAGES), trace.message_id

    def test_plain_function_keeps_per_message_path(self, running_pilots):
        def plain(context=None, data=None):
            return {"points": int(np.asarray(data).shape[0])}

        pipeline = build_pipeline(
            running_pilots, batched=True, run_id="plain", processor=plain
        )
        result = pipeline.run()
        assert result.completed
        assert len(result.results) == 16
        assert "batch_fallbacks" not in pipeline.collector.counters()

    def test_supports_batch_function(self, running_pilots):
        def flex(context=None, blocks=None):
            return [{"points": int(np.asarray(b).shape[0])} for b in blocks]

        flex.supports_batch = True
        pipeline = build_pipeline(
            running_pilots, batched=True, run_id="flex", processor=flex
        )
        result = pipeline.run()
        assert result.completed
        assert len(result.results) == 16
        assert all(r == {"points": 50} for r in result.results)

    def test_model_processor_batched_completes(self, running_pilots):
        processor = make_model_processor(
            lambda: StreamingKMeans(n_clusters=3, seed=0)
        )
        pipeline = build_pipeline(
            running_pilots, batched=True, run_id="model", processor=processor
        )
        result = pipeline.run()
        assert result.completed
        assert len(result.results) == 16
        assert all(r["model"] == "StreamingKMeans" for r in result.results)


class TestDuplicateDelivery:
    @pytest.mark.parametrize("batched", [False, True])
    def test_duplicate_is_counted_once(self, running_pilots, batched):
        run_id = f"dup-{batched}"
        pipeline = build_pipeline(running_pilots, batched=batched, run_id=run_id)
        config = pipeline.config
        # Pre-inject a record that collides with the first real message of
        # device 0: at-least-once delivery hands the consumer the same
        # message id twice.
        pipeline.broker.create_topic(
            config.topic, num_partitions=config.num_devices, exist_ok=True
        )
        Producer(pipeline.broker).send(
            config.topic,
            encode_block(np.zeros((5, 8))),
            partition=0,
            headers={"message_id": f"{run_id}/d0/m0", "device": "device-0"},
        )
        result = pipeline.run()
        assert result.completed
        # 16 distinct ids -> 16 results; the 17th record is the duplicate.
        assert len(result.results) == 16
        assert pipeline.collector.counters()["duplicate_deliveries"] == 1


class TestPoisonedMessages:
    def run_poisoned(self, running_pilots, batched):
        pipeline = build_pipeline(
            running_pilots,
            batched=batched,
            run_id=f"poison-{batched}",
            producer=make_seq_producer(),
            processor=make_poison_processor(),
        )
        return pipeline, pipeline.run()

    def test_poison_isolation_matches_per_message_path(self, running_pilots):
        per_pipe, per = self.run_poisoned(running_pilots, batched=False)
        bat_pipe, bat = self.run_poisoned(running_pilots, batched=True)
        # One poisoned message per device, in both modes.
        for pipeline, result in ((per_pipe, per), (bat_pipe, bat)):
            assert not result.completed  # errors were recorded
            assert pipeline.collector.counters()["processing_errors"] == 2
            assert len(result.errors) == 2
            assert all("poisoned block" in err for err in result.errors)
        # Identical surviving results: the batch failure cost one message
        # per poisoned block, not the whole chunk.
        key = lambda r: r["first"]
        assert sorted(map(key, per.results)) == sorted(map(key, bat.results))
        assert len(bat.results) == 14
        # The batched run actually exercised the fallback.
        assert bat_pipe.collector.counters()["batch_fallbacks"] >= 1
        assert "batch_fallbacks" not in per_pipe.collector.counters()
