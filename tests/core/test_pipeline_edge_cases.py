"""Edge-case behaviour of the pipeline."""

import numpy as np
import pytest

from repro.core import (
    EdgeToCloudPipeline,
    PipelineConfig,
    make_block_producer,
    passthrough_processor,
)


def build(running_pilots, produce=None, process=None, **cfg):
    edge, cloud = running_pilots
    defaults = dict(num_devices=1, messages_per_device=6, max_duration=30.0)
    defaults.update(cfg)
    return EdgeToCloudPipeline(
        pilot_edge=edge,
        pilot_cloud_processing=cloud,
        produce_function_handler=produce
        or make_block_producer(points=20, features=4, clusters=2),
        process_cloud_function_handler=process or passthrough_processor,
        config=PipelineConfig(**defaults),
    )


class TestProducerBehaviour:
    def test_producer_returning_none_stops_device_early(self, running_pilots):
        state = {"count": 0}

        def finite_producer(context):
            state["count"] += 1
            if state["count"] > 3:
                return None  # sensor went quiet
            return np.ones((5, 2))

        pipeline = build(
            running_pilots, produce=finite_producer, messages_per_device=100,
            max_duration=5.0,
        )
        result = pipeline.run()
        # The run cannot complete (fewer messages than expected) but must
        # terminate at the deadline with the 3 real messages processed.
        assert result.report.messages == 3

    def test_producer_exception_recorded(self, running_pilots):
        def exploding_producer(context):
            raise RuntimeError("sensor failure")

        pipeline = build(
            running_pilots, produce=exploding_producer, max_duration=3.0
        )
        result = pipeline.run()
        assert not result.completed
        assert any("producer" in e for e in result.errors)

    def test_static_policies_never_probe(self, running_pilots):
        # With the default (static) placement, the producer is called
        # exactly once per message — no hidden probe call.
        state = {"calls": 0}

        def counting_producer(context):
            state["calls"] += 1
            return np.ones((5, 2))

        pipeline = build(running_pilots, produce=counting_producer, messages_per_device=4)
        result = pipeline.run()
        assert result.completed
        assert state["calls"] == 4

    def test_cost_policy_probe_failure_tolerated(self, running_pilots):
        # Cost-based placement probes the producer once; a cold-start
        # failure in the probe must not break pipeline startup.
        from repro.core import CostBasedPlacement
        from repro.netem import LAN, ContinuumTopology

        topo = ContinuumTopology(time_scale=0.0)
        topo.add_site("edge-site", tier="edge")
        topo.add_site("cloud-site", tier="cloud")
        topo.connect("edge-site", "cloud-site", LAN)
        state = {"calls": 0}

        def moody_producer(context):
            state["calls"] += 1
            if state["calls"] == 1:
                raise RuntimeError("cold start")
            return np.ones((5, 2))

        edge, cloud = running_pilots
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=moody_producer,
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=4, max_duration=30.0),
            placement=CostBasedPlacement(),
            topology=topo,
        )
        result = pipeline.run()
        assert result.completed


class TestConsumerRatios:
    def test_more_consumers_than_partitions(self, running_pilots):
        # Extra consumers idle (no partition assigned) but must not hang
        # the run or steal messages.
        pipeline = build(
            running_pilots, num_devices=1, num_consumers=3, messages_per_device=6
        )
        result = pipeline.run()
        assert result.completed
        assert result.report.messages == 6

    def test_single_consumer_many_partitions(self, running_pilots):
        pipeline = build(
            running_pilots, num_devices=2, num_consumers=1, messages_per_device=5
        )
        result = pipeline.run()
        assert result.completed
        assert result.report.messages == 10
        partitions = {t.partition for t in pipeline.collector.traces(complete_only=True)}
        assert partitions == {0, 1}


class TestResultBuffer:
    def test_keep_results_bounds_memory(self, running_pilots):
        pipeline = build(
            running_pilots, messages_per_device=12, keep_results=4
        )
        result = pipeline.run()
        assert result.completed
        assert len(result.results) == 4  # only the last 4 retained

    def test_custom_topic_name(self, running_pilots):
        pipeline = build(running_pilots, topic="my-sensors")
        result = pipeline.run()
        assert result.completed
        assert "my-sensors" in result.broker_stats["topics"]


class TestRunIdPropagation:
    def test_message_ids_carry_run_id(self, running_pilots):
        pipeline = build(running_pilots)
        pipeline.run()
        for trace in pipeline.collector.traces():
            assert trace.message_id.startswith(pipeline.run_id)

    def test_explicit_run_id(self, running_pilots):
        edge, cloud = running_pilots
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=10, features=2, clusters=2),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=2),
            run_id="run-custom-001",
        )
        result = pipeline.run()
        assert result.run_id == "run-custom-001"
