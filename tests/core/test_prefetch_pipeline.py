"""Pipeline-level wiring of the prefetch/long-poll knobs."""

import pytest

from repro.core import (
    EdgeToCloudPipeline,
    PipelineConfig,
    make_block_producer,
    passthrough_processor,
)
from repro.util.validation import ValidationError


def _run(running_pilots, **cfg_kw):
    edge, cloud = running_pilots
    pipeline = EdgeToCloudPipeline(
        pilot_edge=edge,
        pilot_cloud_processing=cloud,
        produce_function_handler=make_block_producer(points=20, features=4, clusters=3),
        process_cloud_function_handler=passthrough_processor,
        config=PipelineConfig(
            num_devices=2, messages_per_device=12, max_duration=60.0, **cfg_kw
        ),
    )
    return pipeline, pipeline.run()


class TestPrefetchPipeline:
    def test_run_with_prefetch_enabled_completes(self, running_pilots):
        pipeline, result = _run(
            running_pilots, fetch_prefetch_batches=2, fetch_max_wait_ms=50.0
        )
        assert result.completed
        assert result.report.messages == 24
        counters = pipeline.collector.counters()
        assert counters.get("prefetch_hits", 0) == 24
        assert "fetches_in_flight" in counters

    def test_prefetch_off_has_no_prefetch_counters(self, running_pilots):
        pipeline, result = _run(running_pilots)
        assert result.completed
        assert "prefetch_hits" not in pipeline.collector.counters()

    def test_config_validates_knobs(self):
        with pytest.raises(ValidationError):
            PipelineConfig(max_in_flight_requests=0)
        with pytest.raises(ValidationError):
            PipelineConfig(fetch_min_bytes=0)
        with pytest.raises(ValidationError):
            PipelineConfig(fetch_prefetch_batches=-1)
        with pytest.raises(ValidationError):
            PipelineConfig(fetch_max_buffer_bytes=0)
