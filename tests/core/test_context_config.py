"""Tests for the function context and pipeline config."""

import pytest

from repro.core import FunctionContext, PipelineConfig
from repro.params import ParameterClient, ParameterServer
from repro.util.validation import ValidationError


class TestFunctionContext:
    def test_behaves_like_dict(self):
        ctx = FunctionContext.build("run-1", user_context={"threshold": 0.5})
        assert ctx["threshold"] == 0.5
        assert isinstance(ctx, dict)

    def test_typed_accessors(self):
        ctx = FunctionContext.build("run-1", site="lrz", device_id="d0", partition=2)
        assert ctx.run_id == "run-1"
        assert ctx.site == "lrz"
        assert ctx.device_id == "d0"
        assert ctx.partition == 2

    def test_params_accessor(self):
        server = ParameterServer()
        client = ParameterClient(server)
        ctx = FunctionContext.build("run-1", params=client)
        assert ctx.params is client

    def test_params_absent(self):
        assert FunctionContext.build("run-1").params is None

    def test_for_device_copies(self):
        base = FunctionContext.build("run-1", user_context={"a": 1})
        dev = base.for_device("d3", 3, "edge")
        assert dev.device_id == "d3"
        assert dev.partition == 3
        assert dev["a"] == 1
        assert base.device_id == ""  # original untouched

    def test_user_items_excludes_framework_keys(self):
        ctx = FunctionContext.build("run-1", user_context={"a": 1, "b": 2})
        assert ctx.user_items() == {"a": 1, "b": 2}


class TestPipelineConfig:
    def test_defaults_match_paper(self):
        cfg = PipelineConfig()
        assert cfg.messages_per_device == 512  # "We send 512 messages per run"
        assert cfg.num_devices == 1             # one partition per edge device

    def test_total_messages(self):
        cfg = PipelineConfig(num_devices=4, messages_per_device=128)
        assert cfg.total_messages == 512

    def test_consumers_default_to_partitions(self):
        # "we keep the ratio of partitions constant between Kafka and Dask"
        cfg = PipelineConfig(num_devices=4)
        assert cfg.effective_consumers == 4

    def test_explicit_consumers(self):
        cfg = PipelineConfig(num_devices=4, num_consumers=2)
        assert cfg.effective_consumers == 2

    def test_invalid_values(self):
        with pytest.raises(ValidationError):
            PipelineConfig(num_devices=0)
        with pytest.raises(ValidationError):
            PipelineConfig(messages_per_device=0)
        with pytest.raises(ValidationError):
            PipelineConfig(topic="")
        with pytest.raises(ValidationError):
            PipelineConfig(poll_timeout=0)

    def test_frozen(self):
        cfg = PipelineConfig()
        with pytest.raises(AttributeError):
            cfg.num_devices = 5
