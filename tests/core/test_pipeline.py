"""Tests for the EdgeToCloudPipeline (live execution)."""

import numpy as np
import pytest

from repro.core import (
    EdgeCentricPlacement,
    EdgeToCloudPipeline,
    HybridPlacement,
    PipelineConfig,
    make_block_producer,
    make_compression_edge_processor,
    make_model_processor,
    passthrough_processor,
)
from repro.ml import StreamingKMeans
from repro.util.validation import ValidationError


def small_config(**kw):
    defaults = dict(num_devices=2, messages_per_device=8, max_duration=60.0)
    defaults.update(kw)
    return PipelineConfig(**defaults)


def make_pipeline(running_pilots, **kw):
    edge, cloud = running_pilots
    defaults = dict(
        pilot_edge=edge,
        pilot_cloud_processing=cloud,
        produce_function_handler=make_block_producer(points=50, features=8, clusters=5),
        process_cloud_function_handler=passthrough_processor,
        config=small_config(),
    )
    defaults.update(kw)
    return EdgeToCloudPipeline(**defaults)


class TestValidation:
    def test_requires_pilot_types(self, running_pilots):
        edge, cloud = running_pilots
        with pytest.raises(ValidationError):
            EdgeToCloudPipeline(
                pilot_edge="not-a-pilot",
                pilot_cloud_processing=cloud,
                produce_function_handler=lambda c: None,
                process_cloud_function_handler=lambda c, d: None,
            )

    def test_requires_callables(self, running_pilots):
        edge, cloud = running_pilots
        with pytest.raises(ValidationError):
            EdgeToCloudPipeline(
                pilot_edge=edge,
                pilot_cloud_processing=cloud,
                produce_function_handler=None,
                process_cloud_function_handler=lambda c, d: None,
            )

    def test_requires_running_pilots(self, pilot_service, running_pilots):
        from repro.pilot import PilotDescription

        edge, cloud = running_pilots
        stale = pilot_service.submit_pilot(PilotDescription())
        stale.wait(timeout=5)
        stale.cancel()
        pipeline = make_pipeline((stale, cloud))
        with pytest.raises(ValidationError, match="RUNNING"):
            pipeline.run()

    def test_double_run_rejected(self, running_pilots):
        pipeline = make_pipeline(running_pilots)
        pipeline.run()
        with pytest.raises(ValidationError):
            pipeline.run()


class TestBaselineRun:
    def test_processes_all_messages(self, running_pilots):
        pipeline = make_pipeline(running_pilots)
        result = pipeline.run()
        assert result.completed
        assert result.report.messages == 16
        assert result.errors == []

    def test_results_collected(self, running_pilots):
        pipeline = make_pipeline(running_pilots)
        result = pipeline.run()
        assert len(result.results) == 16
        assert all(r["points"] == 50 for r in result.results)

    def test_traces_have_all_stages(self, running_pilots):
        pipeline = make_pipeline(running_pilots)
        pipeline.run()
        traces = pipeline.collector.traces(complete_only=True)
        assert len(traces) == 16
        for t in traces:
            for stage in ("produce", "broker_in", "consume", "process_start", "process_end"):
                assert t.has(stage), stage

    def test_one_partition_per_device(self, running_pilots):
        pipeline = make_pipeline(running_pilots)
        pipeline.run()
        topic = pipeline.broker.topic(pipeline.config.topic)
        assert topic.num_partitions == 2
        for p in range(2):
            assert topic.partition(p).total_appended == 8

    def test_broker_stats_in_result(self, running_pilots):
        result = make_pipeline(running_pilots).run()
        stats = result.broker_stats["topics"]["pilot-edge-data"]
        assert stats["records_in"] == 16

    def test_model_processing(self, running_pilots):
        pipeline = make_pipeline(
            running_pilots,
            process_cloud_function_handler=make_model_processor(StreamingKMeans),
        )
        result = pipeline.run()
        assert result.completed
        assert any(r["max_score"] > 0 for r in result.results)


class TestNetworkEmulation:
    def test_links_charged(self, running_pilots):
        from repro.netem import LAN, ContinuumTopology

        topo = ContinuumTopology(time_scale=0.0)
        topo.add_site("edge-site", tier="edge")
        topo.add_site("cloud-site", tier="cloud")
        topo.connect("edge-site", "cloud-site", LAN)
        pipeline = make_pipeline(running_pilots, topology=topo)
        result = pipeline.run()
        assert result.completed
        link = topo.direct_link("edge-site", "cloud-site")
        assert link.transfers >= 16

    def test_lossy_link_drops_counted(self, running_pilots):
        from repro.netem import ContinuumTopology, LinkProfile

        lossy = LinkProfile("lossy", 0.0, 0.0, 10_000.0, 10_000.0, loss_probability=1.0)
        topo = ContinuumTopology(time_scale=0.0)
        topo.add_site("edge-site", tier="edge")
        topo.add_site("cloud-site", tier="cloud")
        topo.connect("edge-site", "cloud-site", lossy)
        pipeline = make_pipeline(
            running_pilots,
            topology=topo,
            config=small_config(messages_per_device=4, max_duration=5.0),
        )
        result = pipeline.run()
        # Every uplink transfer drops: nothing reaches the broker.
        assert pipeline.collector.counter("messages_dropped") == 8
        assert result.report.messages == 0


class TestPlacements:
    def test_hybrid_compresses_before_transfer(self, running_pilots):
        pipeline = make_pipeline(
            running_pilots,
            process_edge_function_handler=make_compression_edge_processor(factor=5),
            placement=HybridPlacement(),
        )
        result = pipeline.run()
        assert result.completed
        # Compressed blocks: 10 rows instead of 50.
        assert all(r["points"] == 10 for r in result.results)

    def test_edge_centric_processes_on_device(self, running_pilots):
        pipeline = make_pipeline(running_pilots, placement=EdgeCentricPlacement())
        result = pipeline.run()
        assert result.completed
        assert result.placement.processing_tier == "edge"
        # Processing happened at the edge site.
        traces = pipeline.collector.traces(complete_only=True)
        assert all(t.timings["process_end"].site == "edge-site" for t in traces)


class TestRuntimeDynamism:
    def test_replace_cloud_function_mid_run(self, running_pilots):
        pipeline = make_pipeline(
            running_pilots,
            config=small_config(messages_per_device=40, produce_interval=0.005),
        )
        handle = pipeline.run(wait=False)
        assert handle.wait_for_processed(5, timeout=30)

        def tagged(context=None, data=None):
            out = passthrough_processor(context, data)
            out["tagged"] = True
            return out

        pipeline.replace_cloud_function(tagged)
        result = handle.join()
        assert result.completed
        tagged_count = sum(1 for r in result.results if r.get("tagged"))
        assert 0 < tagged_count < 80

    def test_replace_publishes_event(self, running_pilots):
        pipeline = make_pipeline(running_pilots)
        pipeline.run()
        pipeline.replace_cloud_function(passthrough_processor)
        from repro.core.events import FUNCTION_REPLACED

        assert len(pipeline.events.history(FUNCTION_REPLACED)) == 1

    def test_scale_consumers_mid_run(self, running_pilots):
        pipeline = make_pipeline(
            running_pilots,
            config=small_config(messages_per_device=40, num_consumers=1,
                                produce_interval=0.002),
        )
        handle = pipeline.run(wait=False)
        assert handle.wait_for_processed(3, timeout=30)
        pipeline.scale_consumers(2)
        result = handle.join()
        assert result.completed
        assert result.report.messages == 80

    def test_scale_before_run_rejected(self, running_pilots):
        pipeline = make_pipeline(running_pilots)
        with pytest.raises(ValidationError):
            pipeline.scale_consumers(1)

    def test_abort_stops_early(self, running_pilots):
        pipeline = make_pipeline(
            running_pilots,
            config=small_config(messages_per_device=500, produce_interval=0.01),
        )
        handle = pipeline.run(wait=False)
        handle.wait_for_processed(2, timeout=30)
        handle.abort()
        result = handle.join()
        assert result.report.messages < 1000


class TestParameterSharing:
    def test_weights_published_during_run(self, running_pilots):
        pipeline = make_pipeline(
            running_pilots,
            process_cloud_function_handler=make_model_processor(
                StreamingKMeans, share_key="model"
            ),
        )
        result = pipeline.run()
        assert result.completed
        keys = pipeline.parameter_server.keys()
        assert any(k.endswith("/model") for k in keys)


class TestInjectedBroker:
    def test_pilot_managed_broker_used(self, running_pilots, pilot_service):
        from repro.pilot import PilotDescription
        from repro.pilot.frameworks import ManagedBroker

        edge, cloud = running_pilots
        broker_pilot = pilot_service.submit_pilot(
            PilotDescription(resource="cloud", site="cloud-site",
                             instance_type="lrz.medium")
        )
        assert broker_pilot.wait(timeout=10)
        managed = ManagedBroker(broker_pilot)
        pipeline = make_pipeline(
            running_pilots,
            pilot_cloud_broker=broker_pilot,
            broker=managed.service,
        )
        result = pipeline.run()
        assert result.completed
        assert pipeline.broker is managed._broker
        # The managed broker carries the run's topic and data.
        assert managed.service.topic("pilot-edge-data").total_appended == 16
