"""Tests for placement policies."""

import pytest

from repro.core import (
    CloudCentricPlacement,
    CostBasedPlacement,
    EdgeCentricPlacement,
    HybridPlacement,
)
from repro.netem import LAN, TRANSATLANTIC, ContinuumTopology
from repro.util.validation import ValidationError


@pytest.fixture
def topo():
    t = ContinuumTopology(time_scale=0.0)
    t.add_site("edge", tier="edge")
    t.add_site("cloud", tier="cloud")
    t.connect("edge", "cloud", TRANSATLANTIC)
    return t


@pytest.fixture
def lan_topo():
    t = ContinuumTopology(time_scale=0.0)
    t.add_site("edge", tier="edge")
    t.add_site("cloud", tier="cloud")
    t.connect("edge", "cloud", LAN)
    return t


class TestStaticPolicies:
    def test_cloud_centric(self):
        d = CloudCentricPlacement().decide(1000, "edge", "cloud")
        assert d.processing_tier == "cloud"
        assert not d.edge_preprocess

    def test_edge_centric(self):
        d = EdgeCentricPlacement().decide(1000, "edge", "cloud")
        assert d.processing_tier == "edge"
        assert d.edge_preprocess

    def test_hybrid(self):
        d = HybridPlacement().decide(1000, "edge", "cloud")
        assert d.processing_tier == "cloud"
        assert d.edge_preprocess


class TestCostBasedPlacement:
    def test_requires_topology(self):
        with pytest.raises(ValidationError):
            CostBasedPlacement().decide(1000, "edge", "cloud", topology=None)

    def test_cloud_wins_on_fast_link_slow_edge(self, lan_topo):
        d = CostBasedPlacement().decide(
            2_560_000,
            "edge",
            "cloud",
            topology=lan_topo,
            edge_compute_s=1.0,       # weak edge device
            cloud_compute_s=0.01,
        )
        assert d.processing_tier == "cloud"
        assert not d.edge_preprocess

    def test_edge_wins_on_slow_link_cheap_compute(self, topo):
        d = CostBasedPlacement().decide(
            2_560_000,                 # 2.6 MB over 80 Mbit/s = ~260 ms
            "edge",
            "cloud",
            topology=topo,
            edge_compute_s=0.02,       # k-means is cheap enough for the edge
            cloud_compute_s=0.02,
        )
        assert d.processing_tier == "edge"

    def test_hybrid_wins_with_good_compression(self, topo):
        policy = CostBasedPlacement(edge_preprocess_s=0.005)
        d = policy.decide(
            2_560_000,
            "edge",
            "cloud",
            topology=topo,
            edge_compute_s=5.0,         # heavy model can't run on device
            cloud_compute_s=0.05,
            compression_ratio=0.1,      # compression shrinks transfer 10x
        )
        assert d.processing_tier == "cloud"
        assert d.edge_preprocess

    def test_rationale_mentions_candidates(self, topo):
        d = CostBasedPlacement().decide(
            1000, "edge", "cloud", topology=topo, edge_compute_s=0.001
        )
        assert "cloud-centric" in d.rationale
        assert "hybrid" in d.rationale
        assert "edge-centric" in d.rationale

    def test_estimated_cost_positive(self, topo):
        d = CostBasedPlacement().decide(
            1_000_000, "edge", "cloud", topology=topo,
            edge_compute_s=10.0, cloud_compute_s=0.1,
        )
        assert d.estimated_cost_s > 0
