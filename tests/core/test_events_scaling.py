"""Tests for the event bus and autoscaler."""

import pytest

from repro.core import AutoScaler, EventBus, ScalingPolicy
from repro.core.events import LOAD_NORMAL, LOAD_PEAK


class TestEventBus:
    def test_publish_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", lambda e: seen.append(e.payload["v"]))
        bus.publish("a", v=1)
        bus.publish("b", v=2)  # not subscribed
        assert seen == [1]

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", lambda e: seen.append(e.type))
        bus.publish("x")
        bus.publish("y")
        assert seen == ["x", "y"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("a", lambda e: seen.append(1))
        bus.publish("a")
        unsub()
        bus.publish("a")
        assert seen == [1]

    def test_handler_errors_counted_and_isolated(self):
        bus = EventBus()
        bus.subscribe("a", lambda e: 1 / 0)
        seen = []
        bus.subscribe("a", lambda e: seen.append(1))
        bus.publish("a")
        assert bus.handler_errors == 1
        assert seen == [1]

    def test_history(self):
        bus = EventBus()
        bus.publish("a", x=1)
        bus.publish("b")
        bus.publish("a", x=2)
        assert len(bus.history()) == 3
        assert [e.payload["x"] for e in bus.history("a")] == [1, 2]

    def test_events_have_identity(self):
        bus = EventBus()
        e1 = bus.publish("a")
        e2 = bus.publish("a")
        assert e1.event_id != e2.event_id
        assert e2.timestamp >= e1.timestamp


class TestScalingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScalingPolicy(min_consumers=5, max_consumers=2)
        with pytest.raises(ValueError):
            ScalingPolicy(scale_up_lag=5, scale_down_lag=10)


class TestAutoScaler:
    def make(self, lag_values, policy=None):
        lags = iter(lag_values)
        state = {"scaled": []}
        scaler = AutoScaler(
            lag_fn=lambda: next(lags),
            scale_fn=lambda d: state["scaled"].append(d),
            policy=policy
            or ScalingPolicy(min_consumers=1, max_consumers=4, scale_up_lag=10,
                             scale_down_lag=2, cooldown=0.0),
        )
        return scaler, state

    def test_scales_up_on_lag(self):
        scaler, state = self.make([50])
        assert scaler.evaluate(now=100.0) == 1
        assert state["scaled"] == [1]
        assert scaler.current_consumers == 2

    def test_respects_max(self):
        scaler, state = self.make([50] * 10)
        for i in range(10):
            scaler.evaluate(now=100.0 + i)
        assert scaler.current_consumers == 4

    def test_scales_down_advisory(self):
        scaler, state = self.make([50, 0])
        scaler.evaluate(now=1.0)
        assert scaler.evaluate(now=2.0) == -1
        assert scaler.current_consumers == 1
        # Scale-down does not call scale_fn (advisory only).
        assert state["scaled"] == [1]

    def test_respects_min(self):
        scaler, _ = self.make([0, 0])
        assert scaler.evaluate(now=1.0) == 0
        assert scaler.current_consumers == 1

    def test_idle_band_no_action(self):
        scaler, state = self.make([5])  # between down(2) and up(10)
        assert scaler.evaluate(now=1.0) == 0
        assert state["scaled"] == []

    def test_cooldown_blocks_consecutive_actions(self):
        lags = iter([50, 50, 50])
        scaled = []
        scaler = AutoScaler(
            lag_fn=lambda: next(lags),
            scale_fn=scaled.append,
            policy=ScalingPolicy(max_consumers=8, scale_up_lag=10,
                                 scale_down_lag=2, cooldown=10.0),
        )
        assert scaler.evaluate(now=100.0) == 1
        assert scaler.evaluate(now=105.0) == 0  # inside cooldown
        assert scaler.evaluate(now=111.0) == 1  # cooldown passed

    def test_events_published(self):
        bus = EventBus()
        lags = iter([50, 0])
        scaler = AutoScaler(
            lag_fn=lambda: next(lags),
            scale_fn=lambda d: None,
            policy=ScalingPolicy(max_consumers=4, scale_up_lag=10,
                                 scale_down_lag=2, cooldown=0.0),
            event_bus=bus,
        )
        scaler.evaluate(now=1.0)
        scaler.evaluate(now=2.0)
        assert len(bus.history(LOAD_PEAK)) == 1
        assert len(bus.history(LOAD_NORMAL)) == 1

    def test_actions_log(self):
        scaler, _ = self.make([50])
        scaler.evaluate(now=7.0)
        assert scaler.actions == [(7.0, 1, 50)]

    def test_background_loop_runs(self):
        import time

        counter = {"n": 0}

        def lag():
            counter["n"] += 1
            return 0

        scaler = AutoScaler(lag_fn=lag, scale_fn=lambda d: None, interval=0.01)
        scaler.start()
        with pytest.raises(RuntimeError):
            scaler.start()  # double start rejected
        time.sleep(0.08)
        scaler.stop()
        assert counter["n"] >= 2
