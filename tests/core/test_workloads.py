"""Tests for the prebuilt FaaS workload functions."""

import numpy as np
import pytest

from repro.core import (
    FunctionContext,
    make_block_producer,
    make_compression_edge_processor,
    make_model_processor,
    passthrough_processor,
)
from repro.ml import StreamingKMeans


class TestBlockProducer:
    def test_produces_blocks(self):
        produce = make_block_producer(points=50, features=8, clusters=5)
        block = produce({})
        assert block.shape == (50, 8)

    def test_devices_get_independent_streams(self):
        produce = make_block_producer(points=30, features=4, clusters=3)
        ctx_a = FunctionContext.build("r", device_id="device-a")
        ctx_b = FunctionContext.build("r", device_id="device-b")
        assert not np.array_equal(produce(ctx_a), produce(ctx_b))

    def test_device_stream_is_stateful(self):
        produce = make_block_producer(points=30, features=4, clusters=3)
        ctx = FunctionContext.build("r", device_id="d0")
        assert not np.array_equal(produce(ctx), produce(ctx))

    def test_none_context_defaults(self):
        produce = make_block_producer(points=10, features=2, clusters=2)
        assert produce(None).shape == (10, 2)


class TestPassthroughProcessor:
    def test_returns_summary(self, small_block):
        out = passthrough_processor({}, small_block)
        assert out["points"] == 100
        assert out["features"] == 8
        assert "mean_norm" in out


class TestModelProcessor:
    def test_scores_after_first_block(self, small_block):
        process = make_model_processor(StreamingKMeans)
        first = process({}, small_block)
        assert first["outliers"] == 0  # unfitted on first block: no scores
        second = process({}, small_block)
        assert second["model"] == "StreamingKMeans"
        assert second["max_score"] > 0

    def test_model_state_persists_in_closure(self, small_block):
        process = make_model_processor(StreamingKMeans)
        process({}, small_block)
        process({}, small_block)
        # Two processors are independent.
        other = make_model_processor(StreamingKMeans)
        out = other({}, small_block)
        assert out["outliers"] == 0  # fresh model, first block again

    def test_weights_shared_via_parameter_service(self, small_block, param_server):
        from repro.params import ParameterClient

        client = ParameterClient(param_server)
        process = make_model_processor(StreamingKMeans, share_key="model/kmeans")
        ctx = FunctionContext.build("r", params=client)
        process(ctx, small_block)
        entry = param_server.get("model/kmeans")
        assert "cluster_centers" in entry.value

    def test_no_sharing_without_key(self, small_block, param_server):
        from repro.params import ParameterClient

        client = ParameterClient(param_server)
        process = make_model_processor(StreamingKMeans)
        process(FunctionContext.build("r", params=client), small_block)
        assert param_server.keys() == []


class TestCompressionProcessor:
    def test_reduces_rows_by_factor(self, small_block):
        compress = make_compression_edge_processor(factor=4)
        out = compress({}, small_block)
        assert out.shape == (25, 8)

    def test_mean_pooling_values(self):
        compress = make_compression_edge_processor(factor=2)
        block = np.array([[0.0], [2.0], [4.0], [6.0]])
        np.testing.assert_array_equal(compress({}, block), [[1.0], [5.0]])

    def test_compression_ratio_attribute(self):
        compress = make_compression_edge_processor(factor=5)
        assert compress.compression_ratio == pytest.approx(0.2)

    def test_small_blocks_pass_through(self):
        compress = make_compression_edge_processor(factor=10)
        block = np.ones((3, 2))
        out = compress({}, block)
        assert out.shape[0] >= 1

    def test_invalid_factor(self):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            make_compression_edge_processor(factor=0)
