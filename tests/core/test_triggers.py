"""Tests for event-driven task triggers."""

import threading
import time

import pytest

from repro.broker import Broker, Producer
from repro.compute import ResourceSpec
from repro.core.triggers import DataTrigger
from repro.util.validation import ValidationError


@pytest.fixture
def topic_broker():
    broker = Broker()
    broker.create_topic("events", 2)
    return broker


class TestDataTrigger:
    def test_fires_on_arrival(self, topic_broker, small_cluster):
        seen = []
        lock = threading.Lock()

        def handler(records):
            with lock:
                seen.extend(r.value for r in records)

        with DataTrigger(topic_broker, "events", small_cluster, handler,
                         poll_timeout=0.02) as trigger:
            producer = Producer(topic_broker)
            for i in range(5):
                producer.send("events", bytes([i]), partition=i % 2)
            assert trigger.wait_for_invocations(1, timeout=10)
            deadline = time.monotonic() + 10
            while len(seen) < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert sorted(seen) == [bytes([i]) for i in range(5)]
        assert trigger.records_dispatched == 5

    def test_no_arrivals_no_invocations(self, topic_broker, small_cluster):
        with DataTrigger(topic_broker, "events", small_cluster,
                         lambda r: None, poll_timeout=0.02) as trigger:
            time.sleep(0.08)
        assert trigger.invocations == 0

    def test_handler_runs_on_cluster(self, topic_broker, small_cluster):
        thread_names = []

        def handler(records):
            thread_names.append(threading.current_thread().name)

        with DataTrigger(topic_broker, "events", small_cluster, handler,
                         poll_timeout=0.02) as trigger:
            Producer(topic_broker).send("events", b"x", partition=0)
            trigger.wait_for_invocations(1, timeout=10)
            for f in trigger.pending_futures():
                f.result(timeout=10)
        assert thread_names
        assert all("test-cluster" in name for name in thread_names)

    def test_batching_respected(self, topic_broker, small_cluster):
        batch_sizes = []
        lock = threading.Lock()

        def handler(records):
            with lock:
                batch_sizes.append(len(records))

        producer = Producer(topic_broker)
        for i in range(10):
            producer.send("events", b"x", partition=0)
        with DataTrigger(topic_broker, "events", small_cluster, handler,
                         batch_size=4, poll_timeout=0.02) as trigger:
            deadline = time.monotonic() + 10
            while sum(batch_sizes) < 10 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert sum(batch_sizes) == 10
        assert max(batch_sizes) <= 4

    def test_handler_errors_surfaced_in_futures(self, topic_broker, small_cluster):
        def bad_handler(records):
            raise RuntimeError("handler exploded")

        with DataTrigger(topic_broker, "events", small_cluster, bad_handler,
                         poll_timeout=0.02) as trigger:
            Producer(topic_broker).send("events", b"x", partition=0)
            trigger.wait_for_invocations(1, timeout=10)
        futures = trigger.pending_futures()
        assert futures
        from repro.compute import TaskError

        with pytest.raises(TaskError):
            futures[0].result(timeout=10)

    def test_unknown_topic_rejected(self, topic_broker, small_cluster):
        trigger = DataTrigger(topic_broker, "missing", small_cluster, lambda r: None)
        from repro.broker import UnknownTopicError

        with pytest.raises(UnknownTopicError):
            trigger.start()

    def test_double_start_rejected(self, topic_broker, small_cluster):
        trigger = DataTrigger(topic_broker, "events", small_cluster, lambda r: None)
        trigger.start()
        try:
            with pytest.raises(RuntimeError):
                trigger.start()
        finally:
            trigger.stop()

    def test_invalid_handler(self, topic_broker, small_cluster):
        with pytest.raises(ValidationError):
            DataTrigger(topic_broker, "events", small_cluster, handler=None)

    def test_two_triggers_both_observe(self, topic_broker, small_cluster):
        counts = {"a": 0, "b": 0}
        lock = threading.Lock()

        def make_handler(tag):
            def handler(records):
                with lock:
                    counts[tag] += len(records)
            return handler

        t1 = DataTrigger(topic_broker, "events", small_cluster,
                         make_handler("a"), poll_timeout=0.02).start()
        t2 = DataTrigger(topic_broker, "events", small_cluster,
                         make_handler("b"), poll_timeout=0.02).start()
        try:
            producer = Producer(topic_broker)
            for i in range(4):
                producer.send("events", b"x", partition=i % 2)
            deadline = time.monotonic() + 10
            while (counts["a"] < 4 or counts["b"] < 4) and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            t1.stop()
            t2.stop()
        # Independent consumer groups: each trigger saw every record.
        assert counts == {"a": 4, "b": 4}
