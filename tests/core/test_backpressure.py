"""Tests for producer backpressure."""

import time

import pytest

from repro.core import (
    EdgeToCloudPipeline,
    PipelineConfig,
    make_block_producer,
    passthrough_processor,
)


def slow_processor(context=None, data=None):
    time.sleep(0.02)
    return passthrough_processor(context, data)


class TestBackpressure:
    def test_bounded_inflight(self, running_pilots):
        edge, cloud = running_pilots
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=20, features=4, clusters=2),
            process_cloud_function_handler=slow_processor,
            config=PipelineConfig(
                num_devices=1,
                messages_per_device=20,
                max_inflight=3,
                max_duration=60.0,
            ),
        )
        handle = pipeline.run(wait=False)
        # Sample the in-flight level while the run progresses.
        max_seen = 0
        while not handle.done:
            inflight = pipeline.produced_count - pipeline.processed_count
            max_seen = max(max_seen, inflight)
            time.sleep(0.002)
        result = handle.join()
        assert result.completed
        # Bounded by max_inflight (+1 slack: the producer's check and its
        # send are not atomic).
        assert max_seen <= 4
        assert pipeline.collector.counter("backpressure_waits") > 0

    def test_unbounded_by_default(self, running_pilots):
        edge, cloud = running_pilots
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=20, features=4, clusters=2),
            process_cloud_function_handler=slow_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=10, max_duration=60.0),
        )
        result = pipeline.run()
        assert result.completed
        assert pipeline.collector.counter("backpressure_waits") == 0

    def test_invalid_config(self):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            PipelineConfig(max_inflight=-1)
