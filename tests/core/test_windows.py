"""Tests for windowed edge operators."""

import numpy as np
import pytest

from repro.core.windows import (
    TumblingWindow,
    compose_edge_processors,
    make_aggregating_edge_processor,
    make_threshold_filter,
    make_windowed_edge_processor,
)
from repro.util.validation import ValidationError


class TestTumblingWindow:
    def test_emits_every_size_blocks(self):
        w = TumblingWindow(3)
        assert w.add(np.ones((2, 2))) is None
        assert w.add(np.ones((2, 2))) is None
        out = w.add(np.ones((2, 2)))
        assert out.shape == (6, 2)
        assert w.windows_emitted == 1

    def test_window_resets_after_emit(self):
        w = TumblingWindow(2)
        w.add(np.ones((1, 2)))
        w.add(np.ones((1, 2)))
        assert w.pending == 0
        assert w.add(np.ones((1, 2))) is None

    def test_flush_partial(self):
        w = TumblingWindow(5)
        w.add(np.ones((2, 3)))
        out = w.flush()
        assert out.shape == (2, 3)
        assert w.flush() is None

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            TumblingWindow(2).add(np.ones(3))

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            TumblingWindow(0)


class TestAggregatingProcessor:
    def test_reduces_to_stat_rows(self, small_block):
        agg = make_aggregating_edge_processor(("mean", "min", "max"))
        out = agg({}, small_block)
        assert out.shape == (3, small_block.shape[1])
        np.testing.assert_allclose(out[0], small_block.mean(axis=0))
        np.testing.assert_allclose(out[1], small_block.min(axis=0))
        np.testing.assert_allclose(out[2], small_block.max(axis=0))

    def test_unknown_stat_rejected(self):
        with pytest.raises(ValidationError, match="unknown statistic"):
            make_aggregating_edge_processor(("mode",))

    def test_empty_stats_rejected(self):
        with pytest.raises(ValidationError):
            make_aggregating_edge_processor(())

    def test_median(self):
        agg = make_aggregating_edge_processor(("median",))
        block = np.array([[1.0], [2.0], [9.0]])
        np.testing.assert_array_equal(agg({}, block), [[2.0]])


class TestThresholdFilter:
    def test_keeps_rows_above(self):
        filt = make_threshold_filter(feature=0, threshold=0.5)
        block = np.array([[0.1, 1], [0.9, 2], [0.6, 3]])
        out = filt({}, block)
        np.testing.assert_array_equal(out[:, 1], [2, 3])

    def test_keep_below(self):
        filt = make_threshold_filter(feature=0, threshold=0.5, keep_above=False)
        block = np.array([[0.1, 1], [0.9, 2]])
        out = filt({}, block)
        np.testing.assert_array_equal(out[:, 1], [1])

    def test_none_when_nothing_qualifies(self):
        filt = make_threshold_filter(feature=0, threshold=100.0)
        assert filt({}, np.zeros((5, 2))) is None

    def test_feature_out_of_range(self):
        filt = make_threshold_filter(feature=9, threshold=0.0)
        with pytest.raises(ValidationError, match="out of range"):
            filt({}, np.zeros((2, 2)))

    def test_negative_feature_rejected(self):
        with pytest.raises(ValidationError):
            make_threshold_filter(feature=-1, threshold=0.0)


class TestWindowedProcessor:
    def test_absorbs_until_window_full(self):
        proc = make_windowed_edge_processor(window_size=2)
        assert proc({}, np.ones((3, 2))) is None
        out = proc({}, np.ones((3, 2)))
        assert out.shape == (6, 2)

    def test_inner_applied_on_window(self):
        agg = make_aggregating_edge_processor(("mean",))
        proc = make_windowed_edge_processor(window_size=2, inner=agg)
        proc({}, np.full((2, 2), 1.0))
        out = proc({}, np.full((2, 2), 3.0))
        np.testing.assert_allclose(out, [[2.0, 2.0]])


class TestComposition:
    def test_chain_applies_in_order(self):
        filt = make_threshold_filter(feature=0, threshold=0.0)
        agg = make_aggregating_edge_processor(("mean",))
        chain = compose_edge_processors(filt, agg)
        block = np.array([[-1.0, 0.0], [2.0, 4.0], [4.0, 8.0]])
        out = chain({}, block)
        np.testing.assert_allclose(out, [[3.0, 6.0]])

    def test_none_short_circuits(self):
        filt = make_threshold_filter(feature=0, threshold=100.0)
        exploded = {"called": False}

        def boom(context, data):
            exploded["called"] = True
            return data

        chain = compose_edge_processors(filt, boom)
        assert chain({}, np.zeros((2, 2))) is None
        assert not exploded["called"]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValidationError):
            compose_edge_processors()


class TestPipelineIntegration:
    def test_windowed_edge_function_in_pipeline(self, running_pilots):
        from repro.core import (
            EdgeToCloudPipeline,
            HybridPlacement,
            PipelineConfig,
            make_block_producer,
            passthrough_processor,
        )

        edge, cloud = running_pilots
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=10, features=4, clusters=2),
            process_edge_function_handler=make_windowed_edge_processor(window_size=4),
            process_cloud_function_handler=passthrough_processor,
            placement=HybridPlacement(),
            config=PipelineConfig(num_devices=1, messages_per_device=8, max_duration=30.0),
        )
        result = pipeline.run()
        assert result.completed
        # 8 produced blocks -> 2 windows of 4 forwarded; 6 absorbed.
        absorbed = pipeline.collector.counter("messages_absorbed_at_edge")
        assert absorbed == 6
        assert result.report.messages == 2
        # The forwarded windows carry 4x the rows.
        assert all(r["points"] == 40 for r in result.results)
