"""Tests for the discrete-event engine."""

import pytest

from repro.sim import FifoServer, SimProcessError, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_within_equal_times(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        final = sim.run()
        assert times == [1.5, 4.0]
        assert final == 4.0

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def recur(n):
            hits.append(sim.now)
            if n > 0:
                sim.schedule(1.0, recur, n - 1)

        sim.schedule(0.0, recur, 3)
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_run_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=2.0)
        assert hits == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_callback_error_wrapped(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: 1 / 0)
        with pytest.raises(SimProcessError):
            sim.run()

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimProcessError, match="events"):
            sim.run(max_events=1000)


class TestFifoServer:
    def test_sequential_service(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1)
        done_times = []
        for _ in range(3):
            server.submit(2.0, lambda: done_times.append(sim.now))
        sim.run()
        assert done_times == [2.0, 4.0, 6.0]

    def test_parallel_capacity(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=3)
        done_times = []
        for _ in range(3):
            server.submit(2.0, lambda: done_times.append(sim.now))
        sim.run()
        assert done_times == [2.0, 2.0, 2.0]

    def test_queueing_behind_capacity(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=2)
        done_times = []
        for _ in range(4):
            server.submit(1.0, lambda: done_times.append(sim.now))
        sim.run()
        assert done_times == [1.0, 1.0, 2.0, 2.0]

    def test_stats(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1, name="s")
        server.submit(1.0)
        server.submit(1.0)  # waits 1 s
        sim.run()
        stats = server.stats()
        assert stats["jobs_served"] == 2
        assert stats["busy_seconds"] == pytest.approx(2.0)
        assert stats["mean_wait_s"] == pytest.approx(0.5)

    def test_utilization(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1)
        server.submit(3.0)
        sim.run()
        assert server.utilization(6.0) == pytest.approx(0.5)

    def test_energy_accounting(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1, power_watts=10.0)
        server.submit(5.0)
        sim.run()
        assert server.energy_joules == pytest.approx(50.0)

    def test_zero_service_time(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1)
        hits = []
        server.submit(0.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [0.0]
