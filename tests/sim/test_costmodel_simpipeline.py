"""Tests for cost calibration and the simulated pipeline."""

import numpy as np
import pytest

from repro.core import make_model_processor, passthrough_processor
from repro.ml import StreamingKMeans
from repro.netem import LAN, LOOPBACK, TRANSATLANTIC, LinkProfile
from repro.sim import (
    SimConfig,
    SimulatedPipeline,
    StageCostModel,
    calibrate_model_cost,
    calibrate_produce_cost,
)


class TestStageCostModel:
    def test_sample_within_jitter(self):
        model = StageCostModel("s", mean_s=1.0, jitter=0.1)
        rng = np.random.default_rng(0)
        for _ in range(100):
            s = model.sample(rng)
            assert 0.9 <= s <= 1.1

    def test_zero_mean_samples_zero(self):
        model = StageCostModel("s", mean_s=0.0)
        assert model.sample(np.random.default_rng(0)) == 0.0


class TestCalibration:
    def test_produce_cost_positive_and_size_dependent(self):
        small = calibrate_produce_cost(points=100, reps=2)
        large = calibrate_produce_cost(points=10_000, reps=2)
        assert 0 < small.mean_s < large.mean_s

    def test_model_cost_measures_real_function(self):
        cost = calibrate_model_cost(
            make_model_processor(StreamingKMeans), points=1000, reps=2
        )
        assert cost.mean_s > 1e-5
        assert "process_StreamingKMeans" in cost.name

    def test_passthrough_cheaper_than_model(self):
        base = calibrate_model_cost(passthrough_processor, points=1000, reps=2)
        model = calibrate_model_cost(
            make_model_processor(StreamingKMeans), points=1000, reps=2
        )
        assert base.mean_s < model.mean_s


class TestSimulatedPipeline:
    def _run(self, **kw):
        defaults = dict(
            num_devices=2,
            messages_per_device=64,
            points=1000,
            produce_cost=StageCostModel("produce", 1e-4, jitter=0.0),
            process_cost=StageCostModel("process", 1e-3, jitter=0.0),
            seed=1,
        )
        defaults.update(kw)
        return SimulatedPipeline(SimConfig(**defaults)).run()

    def test_all_messages_complete(self):
        result = self._run()
        assert result.report.messages == 128

    def test_deterministic_given_seed(self):
        r1 = self._run()
        r2 = self._run()
        assert r1.report.throughput_mb_s == pytest.approx(r2.report.throughput_mb_s)

    def test_throughput_capped_by_link_bandwidth(self):
        result = self._run(
            points=10_000,
            uplink=TRANSATLANTIC,
            messages_per_device=32,
        )
        # 60-100 Mbit/s = 7.5-12.5 MB/s: throughput must sit in/below band.
        assert result.report.throughput_mb_s < 13.0
        assert result.report.throughput_mb_s > 5.0

    def test_compute_bound_when_processing_slow(self):
        result = self._run(
            process_cost=StageCostModel("slow", 0.5, jitter=0.0),
            messages_per_device=16,
        )
        assert result.bottleneck["bottleneck"] == "processing"

    def test_more_consumers_help_compute_bound_workload(self):
        slow = StageCostModel("slow", 0.05, jitter=0.0)
        one = self._run(num_consumers=1, process_cost=slow, messages_per_device=32)
        four = self._run(num_consumers=4, process_cost=slow, messages_per_device=32)
        assert four.report.throughput_mb_s > one.report.throughput_mb_s * 2

    def test_latency_grows_with_message_size_on_slow_link(self):
        small = self._run(points=25, uplink=TRANSATLANTIC, messages_per_device=16)
        large = self._run(points=10_000, uplink=TRANSATLANTIC, messages_per_device=16)
        assert large.report.latency_mean_s > small.report.latency_mean_s

    def test_energy_accumulates(self):
        result = self._run()
        assert result.energy_joules["total_joules"] > 0
        assert result.energy_joules["cloud_joules"] > result.energy_joules["edge_joules"]

    def test_station_stats_present(self):
        result = self._run()
        assert set(result.station_stats) == {"producers", "uplink", "downlink", "consumers"}
        assert result.station_stats["consumers"]["jobs_served"] == 128

    def test_virtual_time_decoupled_from_wall_clock(self):
        import time

        t0 = time.monotonic()
        result = self._run(
            points=10_000,
            uplink=TRANSATLANTIC,
            downlink=TRANSATLANTIC,
            messages_per_device=64,
        )
        wall = time.monotonic() - t0
        assert result.virtual_duration_s > 10.0   # minutes of virtual traffic
        assert wall < 5.0                          # simulated in seconds

    def test_loopback_default_is_fast(self):
        result = self._run(uplink=LOOPBACK, downlink=LOOPBACK)
        assert result.report.throughput_mb_s > 10.0
