"""Tests for the multi-tier simulation."""

import pytest

from repro.netem import LAN, REGIONAL_WAN, TRANSATLANTIC
from repro.sim import MultiTierSimulation, StageCostModel, Tier
from repro.util.validation import ValidationError


def three_tier(reduction_at_gateway=1.0, **kw):
    tiers = [
        Tier("gateway", link=LAN, servers=2,
             process_cost=StageCostModel("pre", 1e-3, jitter=0.0),
             reduction=reduction_at_gateway, power_watts=10.0),
        Tier("regional", link=REGIONAL_WAN, servers=4,
             process_cost=StageCostModel("infer", 5e-3, jitter=0.0), power_watts=95.0),
        Tier("central", link=TRANSATLANTIC, servers=8,
             process_cost=StageCostModel("train", 2e-2, jitter=0.0), power_watts=95.0),
    ]
    defaults = dict(num_devices=4, messages_per_device=32,
                    message_bytes=256_000, seed=1)
    defaults.update(kw)
    return MultiTierSimulation(tiers, **defaults)


class TestConstruction:
    def test_requires_tiers(self):
        with pytest.raises(ValidationError):
            MultiTierSimulation([])

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            MultiTierSimulation([Tier("a"), Tier("a")])

    def test_invalid_reduction(self):
        with pytest.raises(ValidationError):
            Tier("t", reduction=1.5)

    def test_empty_tier_name(self):
        with pytest.raises(ValidationError):
            Tier("")


class TestExecution:
    def test_all_messages_traverse_all_tiers(self):
        sim = three_tier()
        result = sim.run()
        assert result.report.messages == 128
        # Every station served every message.
        for tier in ("gateway", "regional", "central"):
            assert result.tier_stats[tier]["jobs_served"] == 128

    def test_deterministic(self):
        r1 = three_tier().run()
        r2 = three_tier().run()
        assert r1.report.throughput_mb_s == pytest.approx(r2.report.throughput_mb_s)

    def test_reduction_shrinks_downstream_traffic(self):
        raw = three_tier(reduction_at_gateway=1.0).run()
        reduced = three_tier(reduction_at_gateway=0.1).run()
        # The transatlantic hop dominates; shrinking its payload 10x
        # must raise end-to-end throughput substantially.
        assert (
            reduced.report.throughput_msgs_s
            > raw.report.throughput_msgs_s * 2
        )

    def test_single_tier_matches_flat_pipeline_shape(self):
        sim = MultiTierSimulation(
            [Tier("cloud", link=TRANSATLANTIC, servers=4,
                  process_cost=StageCostModel("p", 1e-3, jitter=0.0))],
            num_devices=4,
            messages_per_device=32,
            message_bytes=2_560_000,
            seed=2,
        )
        result = sim.run()
        # Network-bound at the transatlantic bandwidth (60-100 Mbit/s).
        assert 5.0 < result.report.throughput_mb_s < 13.0

    def test_relay_tier(self):
        sim = MultiTierSimulation(
            [Tier("relay", link=LAN), Tier("sink", link=LAN,
                  process_cost=StageCostModel("p", 1e-3, jitter=0.0))],
            num_devices=2,
            messages_per_device=16,
            seed=0,
        )
        result = sim.run()
        assert result.report.messages == 32
        assert result.tier_stats["relay"]["jobs_served"] == 32

    def test_energy_per_tier(self):
        result = three_tier().run()
        assert result.energy_joules["gateway"] > 0
        assert result.energy_joules["central"] > result.energy_joules["gateway"]
        assert result.total_energy_joules == pytest.approx(
            sum(result.energy_joules.values())
        )

    def test_latency_accumulates_across_tiers(self):
        one = MultiTierSimulation(
            [Tier("only", link=LAN, process_cost=StageCostModel("p", 1e-3, jitter=0.0))],
            num_devices=1, messages_per_device=8, seed=3,
        ).run()
        three = three_tier(num_devices=1, messages_per_device=8).run()
        assert three.report.latency_mean_s > one.report.latency_mean_s
