"""Concurrency stress tests across the substrates."""

import threading

import numpy as np
import pytest

from repro.broker import Broker, Consumer, Producer, RoundRobinPartitioner
from repro.compute import Client, ComputeCluster, ResourceSpec
from repro.params import CasConflict, ParameterClient, ParameterServer


class TestBrokerUnderContention:
    def test_many_producers_many_consumers_exactly_once_per_record(self):
        broker = Broker()
        broker.create_topic("t", 8)
        n_producers, per_producer = 4, 200

        def produce(idx):
            producer = Producer(broker, partitioner=RoundRobinPartitioner())
            for i in range(per_producer):
                producer.send("t", f"{idx}:{i}".encode())

        threads = [threading.Thread(target=produce, args=(k,)) for k in range(n_producers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Drain with three standalone consumers over disjoint partitions.
        seen: list = []
        lock = threading.Lock()

        def drain(partitions):
            consumer = Consumer(broker)
            consumer.assign([("t", p) for p in partitions])
            while True:
                records = consumer.poll(max_records=128)
                if not records:
                    break
                with lock:
                    seen.extend(r.value for r in records)

        drains = [
            threading.Thread(target=drain, args=(ps,))
            for ps in ([0, 1, 2], [3, 4, 5], [6, 7])
        ]
        for t in drains:
            t.start()
        for t in drains:
            t.join()
        assert len(seen) == n_producers * per_producer
        assert len(set(seen)) == n_producers * per_producer

    def test_group_rebalance_storm_loses_nothing(self):
        """Consumers join/leave while records flow; committed-offset
        semantics guarantee every record is seen at least once."""
        broker = Broker()
        broker.create_topic("t", 4)
        producer = Producer(broker, partitioner=RoundRobinPartitioner())
        total = 400
        for i in range(total):
            producer.send("t", i.to_bytes(4, "big"))

        seen: set = set()
        lock = threading.Lock()
        stop = threading.Event()

        def churn_consumer(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                consumer = Consumer(broker, group_id="storm")
                consumer.subscribe("t")
                for _ in range(int(rng.integers(2, 6))):
                    for record in consumer.poll(max_records=32, timeout=0.02):
                        with lock:
                            seen.add(record.value)
                    consumer.commit()
                consumer.close()
                with lock:
                    if len(seen) >= total:
                        stop.set()

        threads = [threading.Thread(target=churn_consumer, args=(k,)) for k in range(3)]
        for t in threads:
            t.start()
        stop.wait(timeout=30)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert len(seen) == total


class TestParameterServerUnderContention:
    def test_hammering_cas_counter(self):
        server = ParameterServer()
        server.set("counter", 0)
        increments_per_thread = 50

        def increment_loop():
            client = ParameterClient(server)
            done = 0
            while done < increments_per_thread:
                entry = client.get("counter")
                try:
                    client.compare_and_set("counter", entry.value + 1, entry.version)
                    done += 1
                except CasConflict:
                    continue

        threads = [threading.Thread(target=increment_loop) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert server.get("counter").value == 4 * increments_per_thread

    def test_concurrent_watchers_all_wake(self):
        server = ParameterServer()
        results: list = []
        lock = threading.Lock()

        def watcher():
            entry = server.watch("key", after_version=0, timeout=10.0)
            with lock:
                results.append(entry.value)

        threads = [threading.Thread(target=watcher) for _ in range(8)]
        for t in threads:
            t.start()
        server.set("key", "broadcast")
        for t in threads:
            t.join(timeout=10)
        assert results == ["broadcast"] * 8


class TestComputeUnderContention:
    def test_burst_of_small_tasks(self):
        with ComputeCluster(n_workers=4, worker_resources=ResourceSpec(cores=2, memory_gb=2)) as cluster:
            client = Client(cluster)
            futures = client.map(lambda x: x * 3, range(500))
            results = Client.gather(futures, timeout=60)
            assert results == [x * 3 for x in range(500)]

    def test_mixed_priorities_under_load(self):
        with ComputeCluster(n_workers=1, worker_resources=ResourceSpec(cores=1, memory_gb=1)) as cluster:
            client = Client(cluster)
            order: list = []
            lock = threading.Lock()

            def record(tag):
                with lock:
                    order.append(tag)

            block = threading.Event()
            started = threading.Event()

            def gate():
                started.set()
                block.wait(5)

            client.submit(gate)  # occupy the single core
            started.wait(5)
            lows = [client.submit(record, f"low{i}") for i in range(5)]
            highs = [client.submit(record, f"high{i}", priority=10) for i in range(5)]
            block.set()
            Client.gather(lows + highs, timeout=30)
            # All high-priority tasks ran before any low-priority one.
            first_low = order.index("low0")
            assert all(order.index(f"high{i}") < first_low for i in range(5))
