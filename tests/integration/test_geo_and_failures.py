"""Integration: geographic distribution and failure injection."""

import time

import pytest

from repro import (
    ContinuumTopology,
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    TRANSATLANTIC,
    LAN,
    make_block_producer,
    passthrough_processor,
)
from repro.netem import LinkProfile


@pytest.fixture
def service():
    s = PilotComputeService(time_scale=0.0)
    yield s
    s.close()


def build_geo_topology(time_scale=0.001):
    """Paper's geo experiment: source at Jetstream (US), processing at LRZ."""
    topo = ContinuumTopology(time_scale=time_scale, seed=0)
    topo.add_site("jetstream", tier="cloud", region="us")
    topo.add_site("lrz", tier="cloud", region="eu")
    topo.connect("jetstream", "lrz", TRANSATLANTIC)
    return topo


def acquire_geo(service):
    source = service.submit_pilot(
        PilotDescription(resource="cloud", site="jetstream", instance_type="jetstream.medium")
    )
    processing = service.submit_pilot(
        PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
    )
    assert service.wait_all(timeout=15)
    return source, processing


class TestGeographicDistribution:
    def test_transatlantic_latency_visible_in_traces(self, service):
        source, processing = acquire_geo(service)
        topo = build_geo_topology(time_scale=0.001)
        pipeline = EdgeToCloudPipeline(
            pilot_edge=source,
            pilot_cloud_processing=processing,
            produce_function_handler=make_block_producer(points=100, features=16, clusters=4),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=6),
            topology=topo,
        )
        result = pipeline.run()
        assert result.completed
        # The transatlantic link carried every message (uplink) once.
        link = topo.direct_link("jetstream", "lrz")
        assert link.transfers >= 6
        assert link.bytes_moved >= 6 * 100 * 16 * 8

    def test_colocated_faster_than_transatlantic(self, service):
        """The paper's headline geo effect, in real (scaled) time."""
        results = {}
        for name, profile in (("local", LAN), ("geo", TRANSATLANTIC)):
            topo = ContinuumTopology(time_scale=0.01, seed=0)
            topo.add_site("jetstream", tier="cloud")
            topo.add_site("lrz", tier="cloud")
            topo.connect("jetstream", "lrz", profile)
            source, processing = acquire_geo(PilotComputeService(time_scale=0.0))
            pipeline = EdgeToCloudPipeline(
                pilot_edge=source,
                pilot_cloud_processing=processing,
                produce_function_handler=make_block_producer(points=500, features=32, clusters=4),
                process_cloud_function_handler=passthrough_processor,
                config=PipelineConfig(num_devices=1, messages_per_device=8),
                topology=topo,
            )
            results[name] = pipeline.run()
        assert results["local"].completed and results["geo"].completed
        assert (
            results["geo"].report.latency_mean_s
            > results["local"].report.latency_mean_s
        )


class TestFailureInjection:
    def test_worker_failure_mid_run_recovers(self, service):
        """Kill a processing worker mid-run; retries keep the run alive."""
        edge = service.submit_pilot(
            PilotDescription(resource="ssh", site="edge", nodes=1,
                             node_spec=ResourceSpec(cores=1, memory_gb=4))
        )
        cloud = service.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
        )
        assert service.wait_all(timeout=15)
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=30, features=4, clusters=2),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(
                num_devices=1, messages_per_device=60, num_consumers=2,
                produce_interval=0.002, max_duration=60.0,
            ),
        )
        handle = pipeline.run(wait=False)
        assert handle.wait_for_processed(5, timeout=30)
        # Add a replacement worker, then kill one original worker: the
        # consumer task on it is lost, but the other consumer's group
        # rebalance (on its next poll) takes over the partition.
        cloud.cluster.scale(2)
        victims = [w.worker_id for w in cloud.cluster.scheduler.workers[:1]]
        cloud.cluster.kill_worker(victims[0])
        result = handle.join()
        # All distinct messages still processed exactly once.
        assert pipeline.processed_count == 60

    def test_flaky_processing_function_retries(self, service):
        edge = service.submit_pilot(
            PilotDescription(resource="ssh", site="edge", nodes=1,
                             node_spec=ResourceSpec(cores=1, memory_gb=4))
        )
        cloud = service.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.medium")
        )
        assert service.wait_all(timeout=15)

        failures = {"remaining": 2}

        def flaky_processor(context=None, data=None):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise RuntimeError("transient model failure")
            return passthrough_processor(context, data)

        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=20, features=4, clusters=2),
            process_cloud_function_handler=flaky_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=8, max_duration=30.0),
        )
        result = pipeline.run()
        # The two failing messages abort their consumer-loop iteration;
        # errors are surfaced, not swallowed.
        assert len(result.errors) <= 2
        assert failures["remaining"] == 0


class TestLossyEnvironment:
    def test_cellular_edge_loses_some_messages_but_completes(self, service):
        edge = service.submit_pilot(
            PilotDescription(resource="ssh", site="edge", nodes=2,
                             node_spec=ResourceSpec(cores=1, memory_gb=4))
        )
        cloud = service.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.medium")
        )
        assert service.wait_all(timeout=15)
        lossy = LinkProfile("flaky-uplink", 1.0, 2.0, 1000.0, 2000.0, loss_probability=0.3)
        topo = ContinuumTopology(time_scale=0.0, seed=42)
        topo.add_site("edge", tier="edge")
        topo.add_site("lrz", tier="cloud")
        topo.connect("edge", "lrz", lossy)
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=20, features=4, clusters=2),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=2, messages_per_device=20, max_duration=30.0),
            topology=topo,
        )
        result = pipeline.run()
        dropped = pipeline.collector.counter("messages_dropped")
        assert dropped > 0
        assert result.report.messages + dropped == 40
