"""End-to-end integration: pilots + broker + compute + ML + monitoring."""

import numpy as np
import pytest

from repro import (
    CloudCentricPlacement,
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    make_model_processor,
    passthrough_processor,
)
from repro.ml import AutoEncoder, IsolationForest, StreamingKMeans


@pytest.fixture
def service():
    s = PilotComputeService(time_scale=0.0)
    yield s
    s.close()


def acquire(service, devices=2):
    edge = service.submit_pilot(
        PilotDescription(resource="ssh", site="edge", nodes=devices,
                         node_spec=ResourceSpec(cores=1, memory_gb=4))
    )
    cloud = service.submit_pilot(
        PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
    )
    assert service.wait_all(timeout=15)
    return edge, cloud


class TestFullStack:
    def test_paper_listing2_shape(self, service):
        """The full Listing-2 instantiation runs end to end."""
        edge, cloud = acquire(service)
        broker_pilot = service.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.medium")
        )
        broker_pilot.wait(timeout=10)
        result = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            pilot_cloud_broker=broker_pilot,
            produce_function_handler=make_block_producer(points=100, features=16, clusters=5),
            process_edge_function_handler=None,
            process_cloud_function_handler=passthrough_processor,
            function_context={"experiment": "listing2"},
            config=PipelineConfig(num_devices=2, messages_per_device=10),
            placement=CloudCentricPlacement(),
        ).run()
        assert result.completed
        assert result.report.messages == 20

    @pytest.mark.parametrize("model_factory", [
        StreamingKMeans,
        lambda: IsolationForest(n_estimators=10),
        lambda: AutoEncoder(epochs=1),
    ])
    def test_each_paper_model_runs_in_pipeline(self, service, model_factory):
        edge, cloud = acquire(service, devices=1)
        result = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=64, features=8, clusters=4),
            process_cloud_function_handler=make_model_processor(model_factory),
            config=PipelineConfig(num_devices=1, messages_per_device=4),
        ).run()
        assert result.completed
        assert result.report.messages == 4

    def test_four_devices_four_partitions(self, service):
        """The paper's 4-partition configuration."""
        edge, cloud = acquire(service, devices=4)
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=50, features=8, clusters=4),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=4, messages_per_device=8),
        )
        result = pipeline.run()
        assert result.completed
        topic = pipeline.broker.topic("pilot-edge-data")
        assert topic.num_partitions == 4
        # Every device filled its own partition.
        assert all(topic.partition(p).total_appended == 8 for p in range(4))

    def test_monitoring_links_all_components(self, service):
        edge, cloud = acquire(service, devices=1)
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=50, features=8, clusters=4),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=6),
        )
        result = pipeline.run()
        # Bottleneck attribution works off linked traces.
        assert result.bottleneck["bottleneck"] in ("processing", "transfer")
        assert "mean_processing_s" in result.bottleneck
        # Stage decomposition covers the full path.
        assert set(result.report.stage_means_s) == {
            "produce->broker_in",
            "broker_in->consume",
            "consume->process_start",
            "process_start->process_end",
        }

    def test_two_pipelines_share_nothing(self, service):
        """Concurrent runs are isolated (own broker/topic/params)."""
        edge, cloud = acquire(service, devices=2)
        p1 = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=20, features=4, clusters=2),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=5, num_consumers=1),
        )
        p2 = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=20, features=4, clusters=2),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(num_devices=1, messages_per_device=5, num_consumers=1),
        )
        h1 = p1.run(wait=False)
        h2 = p2.run(wait=False)
        r1 = h1.join()
        r2 = h2.join()
        assert r1.completed and r2.completed
        assert p1.broker is not p2.broker
        assert r1.run_id != r2.run_id
