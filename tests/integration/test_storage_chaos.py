"""Durable-log chaos: SIGKILLed shards recover acknowledged records
from their own segment files on disk, not just by re-syncing from peers.

Two legs:

- Single shard, no replication: the shard is killed holding acked,
  fsynced data and there is *no peer to copy from* — every record the
  respawned process serves can only have come off its disk.
- Two shards with replication: the killed shard's replacement first
  replays its segment files (observable via the storage ``stats``
  counters) and only then rejoins the ISR, so peer resync starts from
  the recovered log end instead of offset zero.
"""

import threading
import time

import pytest

from repro.broker import (
    ClusterBroker,
    ClusterBrokerSupervisor,
    Consumer,
    Producer,
    RemoteBroker,
    StorageConfig,
    shard_for_partition,
)
from repro.broker.errors import RetriableError
from repro.faults import FaultInjector

pytestmark = pytest.mark.chaos

PARTITIONS = 4
ROUNDS = 6
BATCH = 8

DURABLE = StorageConfig(fsync_acks=True, flush_ms=5.0)


def _wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _shard_stats(supervisor, shard: int) -> dict:
    host, port = supervisor.addresses[shard]
    remote = RemoteBroker(host, port)
    try:
        return remote.stats()
    finally:
        remote.close()


class TestSingleShardDiskRecovery:
    def test_acked_records_survive_sigkill_with_no_peers(self, tmp_path):
        """rf=1: after the kill, the disk is the only copy in existence."""
        total = ROUNDS * BATCH
        with ClusterBrokerSupervisor(
            num_shards=1,
            topics=[("t", 1)],
            restart=True,
            log_dir=str(tmp_path),
            storage=DURABLE,
        ) as supervisor:
            client = ClusterBroker(supervisor.bootstrap)
            producer = Producer(client, client_id="durable-producer")
            expected = []
            try:
                for round_no in range(ROUNDS):
                    values = [f"{round_no}:{i}".encode() for i in range(BATCH)]
                    # fsync_acks: once send_many returns, the batch is
                    # group-commit fsynced into the segment file.
                    producer.send_many("t", values, partition=0)
                    expected.extend(values)

                supervisor.kill_shard(0)
                assert _wait_until(lambda: supervisor.restarts == 1)

                def respawned_serving() -> bool:
                    try:
                        return (
                            _shard_stats(supervisor, 0)["topics"]["t"]["records_in"]
                            >= total
                        )
                    except (RetriableError, ConnectionError, OSError):
                        return False

                assert _wait_until(respawned_serving)

                # Every acknowledged record came back from the segment
                # files: the recovery counters prove a disk replay, and
                # the fetch proves the data is complete and ordered.
                stats = _shard_stats(supervisor, 0)
                assert stats["storage"]["recovered_records"] == total
                assert stats["storage"]["recovery_scan_bytes"] > 0
                records = client.fetch("t", 0, 0, max_records=total * 2)
                assert [bytes(r.value) for r in records] == expected
            finally:
                producer.close()
                client.close()


class TestFollowerDiskRecoveryBeforeResync:
    def test_killed_shard_recovers_from_disk_then_rejoins_isr(self, tmp_path):
        """rf=2: the respawn replays its own segments before peer resync."""
        with ClusterBrokerSupervisor(
            num_shards=2,
            topics=[("t", PARTITIONS)],
            restart=True,
            replication_factor=2,
            log_dir=str(tmp_path),
            storage=DURABLE,
        ) as supervisor:
            doomed = shard_for_partition("t", 0, 2)

            consumer = Consumer(bootstrap=supervisor.bootstrap)
            consumer.assign([("t", p) for p in range(PARTITIONS)])
            consumed: list[bytes] = []
            stop_polling = threading.Event()

            def poll_loop() -> None:
                while not stop_polling.is_set():
                    try:
                        records = consumer.poll(max_records=32, timeout=0.25)
                    except (RetriableError, ConnectionError, OSError):
                        time.sleep(0.05)
                        continue
                    consumed.extend(bytes(r.value) for r in records)

            poller = threading.Thread(target=poll_loop, daemon=True)
            poller.start()

            injector = FaultInjector(seed=23)
            producer_broker = ClusterBroker(supervisor.bootstrap)
            producer_broker.fault_injector = injector
            producer = Producer(
                producer_broker,
                client_id="storage-chaos-producer",
                acks="all",
                retries=30,
                retry_backoff_ms=25.0,
            )
            # Two rounds land (acked, fsynced, replicated) before the
            # kill fires on round three's first append to partition 0 —
            # the doomed shard dies holding durable data.
            injector.call_after(
                lambda: supervisor.kill_shard(doomed),
                n=2 * PARTITIONS + 1,
                op="append_batch",
            )

            expected = set()
            try:
                for round_no in range(ROUNDS):
                    for partition in range(PARTITIONS):
                        values = [
                            f"{partition}:{round_no}:{i}".encode()
                            for i in range(BATCH)
                        ]
                        producer.send_many("t", values, partition=partition)
                        expected.update(values)

                assert injector.fired.get("call") == 1
                assert _wait_until(lambda: len(consumed) >= len(expected))
            finally:
                stop_polling.set()
                poller.join(timeout=10)
                producer.close()
                consumer.close()

            # Zero acked loss, zero duplicates, across the kill.
            assert set(consumed) == expected
            assert len(consumed) == len(expected)
            assert supervisor.restarts == 1

            # The respawned shard's boot replayed its own segment files:
            # at least the two fully-acked pre-kill rounds were on its
            # disk (as leader for half the partitions and follower for
            # the rest), so recovery — which runs when the worker opens
            # its topics, before it receives the cluster map and rejoins
            # — restored real records rather than starting empty.
            stats = _shard_stats(supervisor, doomed)
            assert stats["storage"]["recovered_records"] >= 2 * PARTITIONS * BATCH

            # And it rejoined the ISR fully caught up: resync only had
            # to ship what landed after the kill.
            status_client = ClusterBroker(supervisor.bootstrap)
            try:

                def fully_replicated() -> bool:
                    parts = status_client.replication_status()["partitions"]
                    return len(parts) == PARTITIONS and all(
                        part["isr"] == [0, 1]
                        and all(f["lag"] == 0 for f in part["followers"])
                        and not part["under_replicated"]
                        for part in parts
                    )

                assert _wait_until(fully_replicated), (
                    status_client.replication_status()
                )
                host, port = supervisor.addresses[doomed]
                follower = RemoteBroker(host, port)
                try:
                    for partition in range(PARTITIONS):
                        ack = follower.replica_ack("t", partition)
                        assert ack["log_end"] == ROUNDS * BATCH
                finally:
                    follower.close()
            finally:
                status_client.close()
                producer_broker.close()
