"""Chaos test for the sharded broker: a shard process is SIGKILLed at a
deterministic point in the client op stream, the supervisor respawns it
on its original port, and clients refresh metadata and re-route — every
record is delivered (at-least-once) with broker-side idempotent dedup
suppressing the replays, so the consumed set is exactly the produced set.

The kill is triggered by a ``call`` fault-injector rule counted in
append ops, not a wall-clock timer, so each run replays identically. It
fires on the *first* append routed at the doomed shard: the shard dies
with an empty log, which is the loss-free scenario — in-memory state on
a killed shard is gone (replication is a roadmap item), so records that
landed before a crash are out of scope here.
"""

import threading
import time

import pytest

from repro.broker import (
    ClusterBroker,
    ClusterBrokerSupervisor,
    ClusterMetadata,
    Consumer,
    Producer,
    shard_for_partition,
)
from repro.broker.errors import RetriableError
from repro.faults import FaultInjector

pytestmark = pytest.mark.chaos

PARTITIONS = 4
BATCHES = 5
BATCH = 8


class TestShardKillMidStream:
    def test_kill_and_respawn_delivers_every_record_once(self):
        with ClusterBrokerSupervisor(
            num_shards=2, topics=[("t", PARTITIONS)], restart=True
        ) as supervisor:
            doomed = 1
            safe_parts = [
                p for p in range(PARTITIONS)
                if shard_for_partition("t", p, 2) != doomed
            ]
            doomed_parts = [
                p for p in range(PARTITIONS) if p not in safe_parts
            ]
            assert safe_parts and doomed_parts

            # Consumer first, so its fetches are in flight (some parked
            # on the doomed shard) when the kill lands.
            consumer = Consumer(bootstrap=supervisor.bootstrap)
            consumer.assign([("t", p) for p in range(PARTITIONS)])
            consumed: list[bytes] = []
            stop_polling = threading.Event()

            def poll_loop() -> None:
                while not stop_polling.is_set():
                    try:
                        records = consumer.poll(max_records=32, timeout=0.25)
                    except (RetriableError, ConnectionError, OSError):
                        # The shard died under this fetch; back off and
                        # let the client re-route after the respawn.
                        time.sleep(0.05)
                        continue
                    consumed.extend(r.value for r in records)

            poller = threading.Thread(target=poll_loop, daemon=True)
            poller.start()

            injector = FaultInjector(seed=7)
            # The producer's client boots on a deliberately stale map
            # (shard order reversed, older epoch), so its very first
            # append is misrouted, bounced with NotOwnerError, and
            # forces the refresh-metadata + re-route round trip before
            # any chaos starts.
            stale = ClusterMetadata(
                epoch=0, shards=tuple(reversed(supervisor.addresses))
            )
            producer_broker = ClusterBroker(
                supervisor.bootstrap, metadata=stale
            )
            producer_broker.fault_injector = injector
            producer = Producer(
                producer_broker,
                client_id="chaos-producer",
                retries=20,
                retry_backoff_ms=25.0,
            )
            # The producer sends the safe shard's batches first. Wire
            # append ops: #1 is the misroute, #2 its re-routed retry,
            # then one per remaining safe batch — so op n below is the
            # first append aimed at the doomed shard, and the kill fires
            # just before it is framed. The doomed shard dies with an
            # empty log and the append itself fails over to the
            # respawned process.
            injector.call_after(
                lambda: supervisor.kill_shard(doomed),
                n=len(safe_parts) * BATCHES + 2,
                op="append_batch",
            )

            expected = set()
            try:
                for partition in safe_parts + doomed_parts:
                    for batch in range(BATCHES):
                        values = [
                            f"{partition}:{batch}:{i}".encode()
                            for i in range(BATCH)
                        ]
                        expected.update(values)
                        producer.send_many("t", values, partition=partition)

                assert injector.fired.get("call") == 1
                deadline = time.monotonic() + 30.0
                while (
                    len(consumed) < len(expected)
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
            finally:
                stop_polling.set()
                poller.join(timeout=10)
                producer_stats = producer_broker.stats()
                refreshes = producer_broker.metadata_refreshes
                producer.close()
                producer_broker.close()
                consumer.close()

            # 100% at-least-once delivery, replays deduplicated: the
            # consumed multiset is exactly the produced set.
            assert len(consumed) == len(expected), (
                f"consumed {len(consumed)}/{len(expected)} records"
            )
            assert set(consumed) == expected
            # The chaos actually happened and the clients rode it out.
            assert supervisor.restarts == 1
            assert supervisor.epoch == 2
            assert refreshes >= 1
            assert producer_stats["epoch"] >= 1
