"""Chaos test: random faults during a live pipeline run.

Injects a mix of faults mid-run — worker kills (after adding spares),
function replacement, consumer scaling — and asserts the accounting
invariants hold: the run terminates, every message is either processed,
dropped, or absorbed, and nothing is double-counted.
"""

import time

import numpy as np
import pytest

from repro import (
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    passthrough_processor,
)


@pytest.fixture
def service():
    s = PilotComputeService(time_scale=0.0)
    yield s
    s.close()


def test_chaos_run_accounting_invariants(service):
    rng = np.random.default_rng(7)
    edge = service.submit_pilot(
        PilotDescription(resource="ssh", site="edge", nodes=2,
                         node_spec=ResourceSpec(cores=1, memory_gb=4))
    )
    cloud = service.submit_pilot(
        PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
    )
    assert service.wait_all(timeout=15)

    total = 120
    pipeline = EdgeToCloudPipeline(
        pilot_edge=edge,
        pilot_cloud_processing=cloud,
        produce_function_handler=make_block_producer(points=40, features=8, clusters=4),
        process_cloud_function_handler=passthrough_processor,
        config=PipelineConfig(
            num_devices=2,
            messages_per_device=total // 2,
            num_consumers=2,
            produce_interval=0.003,
            max_duration=120.0,
        ),
    )
    handle = pipeline.run(wait=False)
    assert handle.wait_for_processed(5, timeout=60)

    # Chaos sequence: interleave faults while the stream runs.
    actions = ["kill_worker", "swap_fn", "scale", "kill_worker"]
    for action in actions:
        if handle.done:
            break
        if action == "kill_worker":
            # Add a spare first so capacity never reaches zero.
            cloud.cluster.scale(cloud.cluster.n_workers + 1)
            victims = [w.worker_id for w in cloud.cluster.scheduler.workers]
            cloud.cluster.kill_worker(victims[int(rng.integers(len(victims) - 1))])
        elif action == "swap_fn":
            pipeline.replace_cloud_function(passthrough_processor)
        elif action == "scale":
            try:
                pipeline.scale_consumers(1)
            except Exception:
                pass  # racing completion is fine
        time.sleep(0.05)

    result = handle.join()

    # Invariants: the run terminated and accounting is exact.
    processed = pipeline.processed_count
    dropped = pipeline.collector.counter("messages_dropped")
    absorbed = pipeline.collector.counter("messages_absorbed_at_edge")
    assert processed + dropped + absorbed >= total * 0.95, (
        f"lost messages: processed={processed} dropped={dropped} absorbed={absorbed}"
    )
    # No double counting: distinct processed ids never exceed the total.
    assert processed <= total
    # Complete traces correspond to actually-processed messages.
    assert result.report.messages <= processed
