"""Integration: tracing + telemetry across a two-tier remote-broker pipeline.

The acceptance bar from the observability work: running the edge-to-cloud
pipeline over a RemoteBroker with tracing enabled must yield, for at
least 95% of delivered messages, a single trace whose spans cover the
producer site, the broker, and the consumer site — and the telemetry
sampler's consumer-lag series must return to zero by the end of the run.
"""

import json
import socket

import pytest

from repro import (
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    passthrough_processor,
)
from repro.broker import Broker
from repro.broker.remote import BrokerServer, RemoteBroker, _recv_frame, _send_frame
from repro.monitoring import MetricsRegistry, TelemetrySampler, Tracer


@pytest.fixture
def service():
    s = PilotComputeService(time_scale=0.0)
    yield s
    s.close()


def acquire(service, devices=2):
    edge = service.submit_pilot(
        PilotDescription(resource="ssh", site="edge", nodes=devices,
                         node_spec=ResourceSpec(cores=1, memory_gb=4))
    )
    cloud = service.submit_pilot(
        PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
    )
    assert service.wait_all(timeout=15)
    return edge, cloud


class TestTracedRemotePipeline:
    def test_single_trace_spans_edge_broker_cloud(self, service):
        edge, cloud = acquire(service)
        tracer = Tracer("pipeline", sample_rate=1.0)
        registry = MetricsRegistry()
        sampler = TelemetrySampler(interval_s=0.05, registry=registry)
        core = Broker(name="core", tracer=tracer)
        with BrokerServer(broker=core, tracer=tracer) as server:
            with RemoteBroker(server.host, server.port, tracer=tracer) as remote:
                result = EdgeToCloudPipeline(
                    pilot_edge=edge,
                    pilot_cloud_processing=cloud,
                    produce_function_handler=make_block_producer(
                        points=30, features=4, clusters=2
                    ),
                    process_cloud_function_handler=passthrough_processor,
                    config=PipelineConfig(num_devices=2, messages_per_device=10),
                    broker=remote,
                    registry=registry,
                    tracer=tracer,
                    sampler=sampler,
                ).run()
        assert result.completed
        delivered = result.report.messages
        assert delivered == 20

        # Reconstruct every trace rooted at a producer send and check the
        # span tree touches all three tiers of the continuum.
        full = 0
        for trace_id in tracer.trace_ids():
            tree = tracer.span_tree(trace_id)
            if tree is None or tree["span"].name != "producer.send":
                continue  # rpc.* wire traces are accounted separately
            sites = {tree["span"].site}
            stack = list(tree["children"])
            while stack:
                node = stack.pop()
                sites.add(node["span"].site)
                stack.extend(node["children"])
            if {"edge", "core", "lrz"} <= sites:
                full += 1
        assert full >= 0.95 * delivered, f"{full}/{delivered} full traces"

        # The sampler tracked consumer lag over the wire and the curve
        # ends at zero: everything produced was consumed and committed.
        lag_series = [
            name for name in sampler.names() if name.startswith("consumer_lag.")
        ]
        assert lag_series, sampler.names()
        for name in lag_series:
            assert sampler.series(name)[-1][1] == 0.0

        # End-to-end latency flowed into the shared registry.
        assert registry.histogram("pipeline_e2e_latency_s").count == delivered

    def test_sampled_out_traces_skip_downstream_hops(self, service):
        """sample_rate=0 means no trace headers, no spans, same delivery."""
        edge, cloud = acquire(service, devices=1)
        tracer = Tracer("pipeline", sample_rate=0.0)
        core = Broker(name="core", tracer=tracer)
        with BrokerServer(broker=core, tracer=tracer) as server:
            with RemoteBroker(server.host, server.port) as remote:
                result = EdgeToCloudPipeline(
                    pilot_edge=edge,
                    pilot_cloud_processing=cloud,
                    produce_function_handler=make_block_producer(
                        points=20, features=4, clusters=2
                    ),
                    process_cloud_function_handler=passthrough_processor,
                    config=PipelineConfig(num_devices=1, messages_per_device=5),
                    broker=remote,
                    tracer=tracer,
                ).run()
        assert result.completed
        assert result.report.messages == 5
        assert tracer.spans() == []
        assert tracer.stats()["traces_sampled_out"] >= 5


class TestOldFrameCompatibility:
    def test_frame_without_trace_field_still_dispatches(self):
        """Pre-tracing clients send frames with no "trace" key; a traced
        server must serve them unchanged (and record no server span)."""
        tracer = Tracer("server")
        core = Broker(name="core", tracer=tracer)
        with BrokerServer(broker=core, tracer=tracer) as server:
            with socket.create_connection((server.host, server.port)) as sock:
                _send_frame(
                    sock,
                    {"op": "create_topic", "topic": "t", "num_partitions": 1,
                     "cid": 1},
                )
                response, blobs = _recv_frame(sock)
        assert response["ok"], response
        assert response["cid"] == 1
        assert core.topic("t").num_partitions == 1
        # No frame-level context: the server must not invent a span.
        assert all(not s.name.startswith("server.") for s in tracer.spans())

    def test_traced_client_fields_ignored_by_payload_shape(self):
        """A "trace" frame field is popped before dispatch: op handlers
        never see it, so old and new clients share one wire schema."""
        tracer = Tracer("server")
        core = Broker(name="core", tracer=tracer)
        with BrokerServer(broker=core, tracer=tracer) as server:
            root = tracer.start_trace("client.op", site="edge")
            with socket.create_connection((server.host, server.port)) as sock:
                _send_frame(
                    sock,
                    {"op": "create_topic", "topic": "t", "num_partitions": 2,
                     "cid": 7, "trace": root.context},
                )
                response, _ = _recv_frame(sock)
            root.finish()
        assert response["ok"], response
        assert core.topic("t").num_partitions == 2
        server_spans = [s for s in tracer.spans() if s.name == "server.create_topic"]
        assert len(server_spans) == 1
        assert server_spans[0].trace_id == root.trace_id
        assert server_spans[0].parent_id == root.span_id
