"""Failover chaos: the leader of an actively-produced partition is
SIGKILLed mid-stream and **no acknowledged record is lost**.

This is the replication counterpart to ``test_cluster_chaos.py``: there
the doomed shard dies with an empty log (loss-free by construction);
here it dies *holding acknowledged data*, and the data survives because
``acks="all"`` only acks once every in-sync replica holds the records.
The supervisor's controller then elects the most-caught-up surviving
replica as the new leader, clients re-route, and the respawned process
rejoins as a follower and re-syncs from zero.

The kill is triggered by a ``call`` fault-injector rule counted in
append ops, not a wall-clock timer, so each run replays identically.
"""

import threading
import time

import pytest

from repro.broker import (
    ClusterBroker,
    ClusterBrokerSupervisor,
    Consumer,
    Producer,
    RemoteBroker,
    shard_for_partition,
)
from repro.broker.errors import BrokerError, RetriableError
from repro.faults import FaultInjector

pytestmark = pytest.mark.chaos

PARTITIONS = 4
ROUNDS = 6
BATCH = 8


def _wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestLeaderKillMidStream:
    def test_no_acked_record_lost_and_killed_shard_rejoins(self):
        with ClusterBrokerSupervisor(
            num_shards=2,
            topics=[("t", PARTITIONS)],
            restart=True,
            replication_factor=2,
        ) as supervisor:
            # Kill the leader of partition 0 — the partition the kill op
            # itself is aimed at, so the shard dies with several
            # acknowledged batches in its log.
            doomed = shard_for_partition("t", 0, 2)
            survivor = 1 - doomed

            consumer = Consumer(bootstrap=supervisor.bootstrap)
            consumer.assign([("t", p) for p in range(PARTITIONS)])
            consumed: list[bytes] = []
            stop_polling = threading.Event()

            def poll_loop() -> None:
                while not stop_polling.is_set():
                    try:
                        records = consumer.poll(max_records=32, timeout=0.25)
                    except (RetriableError, ConnectionError, OSError):
                        time.sleep(0.05)
                        continue
                    consumed.extend(r.value for r in records)

            poller = threading.Thread(target=poll_loop, daemon=True)
            poller.start()

            injector = FaultInjector(seed=11)
            producer_broker = ClusterBroker(supervisor.bootstrap)
            producer_broker.fault_injector = injector
            producer = Producer(
                producer_broker,
                client_id="failover-producer",
                acks="all",
                retries=30,
                retry_backoff_ms=25.0,
            )
            # Two full rounds land (and fully replicate — acks="all")
            # first; the kill fires on the first append of round three,
            # which targets partition 0 and therefore the doomed leader.
            injector.call_after(
                lambda: supervisor.kill_shard(doomed),
                n=2 * PARTITIONS + 1,
                op="append_batch",
            )

            expected = set()
            try:
                for round_no in range(ROUNDS):
                    for partition in range(PARTITIONS):
                        values = [
                            f"{partition}:{round_no}:{i}".encode()
                            for i in range(BATCH)
                        ]
                        # acks="all" means: once send_many returns, every
                        # value in `values` is on every in-sync replica.
                        producer.send_many("t", values, partition=partition)
                        expected.update(values)

                assert injector.fired.get("call") == 1
                assert _wait_until(lambda: len(consumed) >= len(expected))
            finally:
                stop_polling.set()
                poller.join(timeout=10)
                refreshes = producer_broker.metadata_refreshes
                producer.close()
                consumer.close()

            # Zero loss, zero duplicates: every acknowledged record was
            # consumed exactly once (idempotent dedup kills the replays).
            assert set(consumed) == expected
            assert len(consumed) == len(expected), (
                f"consumed {len(consumed)} records for {len(expected)} acked"
            )

            # The failover actually happened: one election round (epoch
            # bump) then one respawn (second bump).
            assert supervisor.restarts == 1
            assert supervisor.elections >= 1
            assert supervisor.epoch == 3
            assert refreshes >= 1
            # Every partition the dead shard led moved to the survivor.
            for partition in range(PARTITIONS):
                if shard_for_partition("t", partition, 2) == doomed:
                    assert supervisor.partition_leader("t", partition) == survivor

            # The respawned shard rejoined as a follower and re-synced:
            # full ISR, zero lag, everywhere.
            status_client = ClusterBroker(supervisor.bootstrap)
            try:

                def fully_replicated() -> bool:
                    parts = status_client.replication_status()["partitions"]
                    return len(parts) == PARTITIONS and all(
                        part["isr"] == [0, 1]
                        and all(f["lag"] == 0 for f in part["followers"])
                        and not part["under_replicated"]
                        for part in parts
                    )

                assert _wait_until(fully_replicated), (
                    status_client.replication_status()
                )
                # And its copy really holds every record: per-partition
                # log ends on the respawned follower match production.
                host, port = supervisor.addresses[doomed]
                follower = RemoteBroker(host, port)
                try:
                    for partition in range(PARTITIONS):
                        ack = follower.replica_ack("t", partition)
                        assert ack["log_end"] == ROUNDS * BATCH
                finally:
                    follower.close()
            finally:
                status_client.close()
                producer_broker.close()


class TestGroupCommitFailover:
    def test_commit_survives_coordinator_shard_death(self):
        """Group-affine routing under failover (satellite coverage).

        Group state is *not* replicated (only partition data is), so a
        coordinator crash surfaces as a retriable error; the client
        refreshes metadata and the retried commit lands on the respawned
        coordinator with the full offset value — nothing is silently
        dropped or half-applied.
        """
        group = "failover-group"
        with ClusterBrokerSupervisor(
            num_shards=2,
            topics=[("t", PARTITIONS)],
            restart=True,
            replication_factor=2,
        ) as supervisor:
            from repro.broker.metadata import coordinator_shard

            coordinator = coordinator_shard(group, 2)
            # max_attempts=1 so the death is *observable* as an error
            # instead of being absorbed by the client's retry loop.
            client = ClusterBroker(supervisor.bootstrap, max_attempts=1)
            try:
                client.commit_offset(group, "t", 0, 5)
                assert client.committed_offset(group, "t", 0) == 5

                supervisor.kill_shard(coordinator)
                with pytest.raises((RetriableError, ConnectionError, OSError)):
                    client.commit_offset(group, "t", 0, 9)

                # Retry until the respawned coordinator takes the commit.
                deadline = time.monotonic() + 30.0
                while True:
                    try:
                        client.commit_offset(group, "t", 0, 9)
                        break
                    except (BrokerError, ConnectionError, OSError):
                        if time.monotonic() >= deadline:
                            raise
                        time.sleep(0.05)
                assert client.committed_offset(group, "t", 0) == 9
                assert client.metadata_refreshes >= 1
                assert supervisor.restarts == 1
            finally:
                client.close()
