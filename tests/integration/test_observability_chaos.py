"""Observability chaos: SIGKILL a leader shard mid-stream and
reconstruct the incident purely from exported artifacts.

The cluster runs with full telemetry (per-shard registries + tracers on,
journals always on). A fault-injector rule kills the leader of an
actively-produced partition; the supervisor elects a survivor and
respawns the dead process. Afterwards the test drains everything through
the observability plane, writes the artifacts an operator would export
(``events.jsonl``, ``spans.json``, merged Prometheus exposition), throws
the live objects away, and asserts the incident reads back from the
*files* alone:

* the journal contains ``leader_elected`` then ``shard_respawned``,
  epoch-stamped in that order,
* a sampled produce trace stitches leader append → follower replication
  hops across processes,
* the merged exposition still carries every shard's series.

A second test covers :meth:`TelemetrySampler.watch_cluster` across the
same kill/respawn: ``shards_up`` dips and recovers, the dead shard's
series has a gap, and connection refusals never crash the sampler loop.
"""

import threading
import time

import pytest

from repro.broker import (
    ClusterBroker,
    ClusterBrokerSupervisor,
    Producer,
    shard_for_partition,
)
from repro.broker.errors import BrokerError, RetriableError
from repro.faults import FaultInjector
from repro.monitoring import TelemetrySampler, Tracer, serve_exposition
from repro.monitoring.cluster import (
    ClusterEventCollector,
    ClusterMetricsAggregator,
    ClusterTraceCollector,
    stitch_spans,
)
from repro.monitoring.events import merge_timeline, read_jsonl

pytestmark = pytest.mark.chaos

PARTITIONS = 4
ROUNDS = 6
BATCH = 8


def _wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestIncidentReconstruction:
    def test_leader_kill_reads_back_from_artifacts(self, tmp_path):
        log_root = tmp_path / "logs"
        with ClusterBrokerSupervisor(
            num_shards=2,
            topics=[("t", PARTITIONS)],
            restart=True,
            replication_factor=2,
            log_dir=str(log_root),
            telemetry=True,
        ) as supervisor:
            doomed = shard_for_partition("t", 0, 2)

            injector = FaultInjector(seed=7)
            broker = ClusterBroker(supervisor.bootstrap)
            broker.fault_injector = injector
            client_tracer = Tracer(service="producer-client")
            producer = Producer(
                broker,
                client_id="obs-producer",
                acks="all",
                retries=30,
                retry_backoff_ms=25.0,
                tracer=client_tracer,
                trace_site="client",
            )
            # Two fully-replicated rounds land first; the kill fires on
            # the first append of round three, aimed at partition 0 and
            # therefore at the doomed leader.
            injector.call_after(
                lambda: supervisor.kill_shard(doomed),
                n=2 * PARTITIONS + 1,
                op="append_batch",
            )

            collector = ClusterEventCollector(
                cluster=broker, journals=[supervisor.events]
            )
            traces = ClusterTraceCollector(
                cluster=broker, tracers=[client_tracer]
            )
            aggregator = ClusterMetricsAggregator(broker)
            try:
                for round_no in range(ROUNDS):
                    for partition in range(PARTITIONS):
                        values = [
                            f"{partition}:{round_no}:{i}".encode()
                            for i in range(BATCH)
                        ]
                        producer.send_many("t", values, partition=partition)
                assert injector.fired.get("call") == 1
                assert _wait_until(lambda: supervisor.restarts == 1)
                # Let the respawned shard finish boot recovery and the
                # collectors drain it (new boot token → full re-drain).
                assert _wait_until(
                    lambda: any(
                        e.type == "recovery_completed" for e in collector.poll()
                    ) or any(
                        e.type == "recovery_completed" for e in collector.events()
                    )
                )
                collector.poll()
                traces.poll()
                aggregator.scrape()
            finally:
                producer.close()

            # -- export the artifacts, then reason ONLY from the files.
            events_path = tmp_path / "events.jsonl"
            spans_path = tmp_path / "spans.json"
            prom_path = tmp_path / "cluster_metrics.prom"
            assert collector.write_jsonl(events_path) > 0
            assert traces.write_json(spans_path) > 0
            prom_path.write_text(aggregator.to_prometheus())
            broker.close()

        timeline = merge_timeline(read_jsonl(events_path))
        by_type = {}
        for event in timeline:
            by_type.setdefault(event.type, []).append(event)

        # The incident story, epoch-stamped and correctly ordered.
        assert "shard_died" in by_type
        elected = by_type["leader_elected"]
        respawned = by_type["shard_respawned"]
        assert elected and respawned
        assert all(e.fields["epoch"] >= 1 for e in elected)
        assert respawned[0].fields["shard"] == doomed
        assert respawned[0].fields["epoch"] >= 2
        order = [e.type for e in timeline if e.origin == "supervisor"]
        assert order.index("shard_died") < order.index("leader_elected")
        assert order.index("leader_elected") < order.index("shard_respawned")
        # The fresh process journalled its boot recovery and ISR rejoin.
        assert any(
            e.type == "recovery_completed" and e.origin == f"shard-{doomed}"
            for e in timeline
        )

        # A sampled produce trace spans processes: the client's send, the
        # leader's append, and the replication hop share one trace id.
        import json

        trees = stitch_spans(json.loads(spans_path.read_text()))
        cross_process = [
            tree for tree in trees.values()
            if {"producer.send", "broker.append"} <= _names(tree)
            and ({"replica.append"} & _names(tree) or {"replication.ack"} & _names(tree))
        ]
        assert cross_process, (
            f"no stitched produce trace crossed the replication hop; "
            f"got trees with names {[sorted(_names(t)) for t in list(trees.values())[:5]]}"
        )

        # The merged exposition carried both shards' series.
        prom = prom_path.read_text()
        assert 'shard="0"' in prom and 'shard="1"' in prom
        assert "repro_broker_records_in" in prom


def _names(node) -> set:
    out = {node["span"].name}
    for child in node["children"]:
        out |= _names(child)
    return out


class TestSamplerAcrossRespawn:
    def test_watch_cluster_survives_shard_kill(self):
        with ClusterBrokerSupervisor(
            num_shards=2, topics=[("t", 2)], restart=True, telemetry=True
        ) as supervisor:
            broker = ClusterBroker(supervisor.bootstrap)
            sampler = TelemetrySampler(interval_s=0.05)
            sampler.watch_cluster(broker)
            try:
                sampler.sample_now()
                assert sampler.latest("cluster.shards_up") == 2.0

                doomed = 1
                # The monitor holds the supervisor lock for the whole
                # respawn, so holding it here pins the cluster in its
                # half-dead state — the downtime window the sampler must
                # ride out is deterministic, not a race against a
                # sub-100ms respawn.
                with supervisor._lock:
                    supervisor.kill_shard(doomed)
                    for _ in range(3):
                        # Connection refusals are swallowed by the
                        # scrape: the dead shard's series just stops
                        # while every healthy series keeps flowing.
                        values = sampler.sample_now()
                        assert values["cluster.shards_up"] == 1.0
                        assert (
                            f"cluster.shard{doomed}.connections_active"
                            not in values
                        )
                        assert "cluster.shard0.connections_active" in values

                assert _wait_until(
                    lambda: sampler.sample_now().get("cluster.shards_up") == 2.0
                )
                # Dip-and-recover is visible in the retained series, and
                # the dead shard's own series has a matching gap.
                ups = [v for _, v in sampler.series("cluster.shards_up")]
                assert 1.0 in ups and ups[0] == 2.0 and ups[-1] == 2.0
                shard_series = sampler.series(
                    f"cluster.shard{doomed}.connections_active"
                )
                up_series = sampler.series("cluster.shards_up")
                down_ts = {t for t, v in up_series if v == 1.0}
                assert down_ts.isdisjoint(t for t, _ in shard_series)
                assert sampler.source_errors == 0
            finally:
                broker.close()


class TestExpositionEndpoint:
    def test_bound_port_and_charset(self):
        from urllib.request import urlopen

        from repro.monitoring import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("records_in").inc(3)
        server = serve_exposition(registry, port=0)
        try:
            assert server.port == server.server_address[1] > 0
            assert server.url.endswith(f":{server.port}/metrics")
            with urlopen(server.url) as response:
                content_type = response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert "charset=utf-8" in content_type
            assert "repro_records_in 3" in body
        finally:
            server.shutdown()

    def test_serves_cluster_aggregator_merged_view(self):
        from urllib.request import urlopen

        with ClusterBrokerSupervisor(
            num_shards=2, topics=[("t", 2)], telemetry=True
        ) as supervisor:
            broker = ClusterBroker(supervisor.bootstrap)
            try:
                for i in range(20):
                    broker.append("t", i % 2, b"v%d" % i)
                aggregator = ClusterMetricsAggregator(broker)
                aggregator.scrape()
                server = serve_exposition(aggregator, port=0)
                try:
                    with urlopen(server.url) as response:
                        body = response.read().decode("utf-8")
                    assert "repro_cluster_shards_scraped 2" in body
                    assert "repro_broker_records_in 20" in body
                finally:
                    server.shutdown()
            finally:
                broker.close()
