"""Chaos tests for the delivery/failure-handling layer (PR 3).

Every scenario uses *scripted* fault plans (seeded injectors, one-shot
socket kills) rather than background randomness, so each run replays
identically: a retry storm that must not duplicate offsets, a consumer
crash that must hand partitions over within one session timeout, a
server connection killed mid-fetch that must reconnect-and-resume, and
a full pipeline over a lossy edge uplink that must deliver every
message.
"""

import threading
import time

import pytest

from repro import (
    CELLULAR_EDGE,
    ContinuumTopology,
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    passthrough_processor,
)
from repro.broker import Broker, Consumer, Producer
from repro.broker.errors import BrokerTimeoutError, RetriableError
from repro.broker.remote import BrokerServer, RemoteBroker
from repro.faults import FaultInjector, FaultyBroker

pytestmark = pytest.mark.chaos


@pytest.fixture
def service():
    s = PilotComputeService(time_scale=0.0)
    yield s
    s.close()


class TestRetryStorm:
    def test_retry_storm_no_duplicate_offsets(self):
        """Heavy injected loss + retries: the log stays duplicate-free."""
        broker = Broker()
        broker.create_topic("t", 1)
        injector = FaultInjector(seed=42)
        # Half of all appends fail, for the whole run.
        injector.drop_next(10_000, op="append_many", probability=0.5)
        producer = Producer(
            FaultyBroker(broker, injector),
            client_id="stormy",
            retries=50,
            retry_backoff_ms=0.0,
        )
        for batch in range(25):
            producer.send_many(
                "t", [f"{batch}:{i}".encode() for i in range(8)], partition=0
            )
        assert injector.fired.get("drop", 0) > 0, "plan never fired"
        consumer = Consumer(broker)
        consumer.assign([("t", 0)])
        values = [r.value for r in consumer.poll(max_records=10_000)]
        assert len(values) == 200
        assert len(set(values)) == 200, "retry storm duplicated records"
        assert broker.latest_offset("t", 0) == 200


class TestConsumerCrash:
    def test_crash_reassigns_within_one_session_timeout(self):
        """A consumer that stops polling loses its partitions to the
        survivor within ~one session timeout, and every record is still
        consumed exactly once across the group."""
        session_ms = 80.0
        broker = Broker()
        broker.create_topic("t", 4)
        producer = Producer(broker)
        for i in range(40):
            producer.send("t", f"pre-{i}".encode(), partition=i % 4)

        survivor = Consumer(broker, group_id="g", session_timeout_ms=session_ms)
        survivor.subscribe("t")
        victim = Consumer(broker, group_id="g", session_timeout_ms=session_ms)
        victim.subscribe("t")
        seen = {r.value for r in survivor.poll(max_records=1000, timeout=0.5)}
        seen.update(r.value for r in victim.poll(max_records=1000, timeout=0.5))
        # The victim crashes now: no leave(), no further heartbeats.
        crash = time.monotonic()
        deadline = crash + 5.0
        reassigned_at = None
        while time.monotonic() < deadline:
            seen.update(r.value for r in survivor.poll(max_records=1000, timeout=0.0))
            if reassigned_at is None and len(survivor.assignment) == 4:
                reassigned_at = time.monotonic()
            if len(seen) == 40 and reassigned_at is not None:
                break
            time.sleep(0.005)
        assert reassigned_at is not None, "survivor never inherited the partitions"
        # Detection needs one session timeout; give scheduling slack.
        assert reassigned_at - crash < (session_ms / 1000.0) * 5
        assert len(seen) == 40, f"lost records after crash: {40 - len(seen)} missing"
        assert broker.coordinator.members_evicted == 1


class TestServerKill:
    def test_mid_fetch_socket_kill_reconnects_and_resumes(self):
        """A connection killed under an in-flight op is re-dialed and the
        idempotent op replayed — the caller never sees the failure."""
        with BrokerServer() as server:
            remote = RemoteBroker(server.host, server.port)
            remote.create_topic("t", 1)
            remote.append("t", 0, b"before")
            injector = FaultInjector()
            injector.kill_socket_once(op="fetch_batch")
            remote.fault_injector = injector
            records = remote.fetch("t", 0, 0)  # socket dies under this op
            assert [r.value for r in records] == [b"before"]
            assert remote.reconnects == 1
            # The healed connection keeps working.
            remote.append("t", 0, b"after")
            assert [r.value for r in remote.fetch("t", 0, 1)] == [b"after"]
            remote.close()

    def test_nonidempotent_append_fails_fast_instead_of_replaying(self):
        """A plain (non-idempotent) append must NOT be blindly replayed:
        the first transport failure surfaces as a retriable error."""
        with BrokerServer() as server:
            remote = RemoteBroker(server.host, server.port)
            remote.create_topic("t", 1)
            injector = FaultInjector()
            injector.kill_socket_once(op="append")
            remote.fault_injector = injector
            with pytest.raises(RetriableError):
                remote.append("t", 0, b"x")
            # Nothing landed twice and the connection healed.
            remote.append("t", 0, b"y")
            assert remote.latest_offset("t", 0) in (1, 2)
            remote.close()

    def test_dead_server_times_out_instead_of_hanging(self):
        """A server that accepts but never answers must yield a timeout
        error within the op deadline — not an eternal blocking recv."""
        silent = None
        listener = None
        try:
            import socket as socket_mod

            listener = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            host, port = listener.getsockname()
            accepted = []

            def accept_and_stall():
                conn, _ = listener.accept()
                accepted.append(conn)  # hold it open, never respond

            silent = threading.Thread(target=accept_and_stall, daemon=True)
            silent.start()
            remote = RemoteBroker(host, port, op_timeout=0.2, max_attempts=1)
            start = time.monotonic()
            with pytest.raises(BrokerTimeoutError):
                remote.latest_offset("t", 0)
            assert time.monotonic() - start < 5.0
            remote.close()
        finally:
            if listener is not None:
                listener.close()


class TestLossyPipeline:
    def test_cellular_edge_pipeline_zero_loss_with_retries(self, service):
        """End-to-end: a lossy CELLULAR_EDGE uplink plus delivery retries
        processes every produced message exactly once — no drops."""
        edge = service.submit_pilot(
            PilotDescription(
                resource="ssh",
                site="edge",
                nodes=2,
                node_spec=ResourceSpec(cores=1, memory_gb=4),
            )
        )
        cloud = service.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
        )
        assert service.wait_all(timeout=15)

        topo = ContinuumTopology(time_scale=0.0, seed=3)
        topo.add_site("edge", tier="edge")
        topo.add_site("lrz", tier="cloud")
        topo.connect("edge", "lrz", CELLULAR_EDGE)  # 1% loss
        # Add scripted drops on top of the profile's random loss so the
        # retry path definitely fires even on a lucky seed.
        injector = FaultInjector(seed=11).drop_next(5, op="transfer")
        topo.direct_link("edge", "lrz").injector = injector

        total = 120
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=40, features=8, clusters=4),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(
                num_devices=2,
                messages_per_device=total // 2,
                num_consumers=2,
                producer_retries=8,
                retry_backoff_ms=0.0,
                session_timeout_ms=5_000.0,
                max_duration=120.0,
            ),
            topology=topo,
        )
        result = pipeline.run()
        assert result.completed, result.errors
        collector = pipeline.collector
        assert collector.counter("messages_dropped") == 0, "retries must erase loss"
        # Every message has a complete end-to-end trace: actually
        # processed, not merely accounted for.
        assert result.report.messages == total
        assert collector.counter("produce_retries") > 0, "loss never exercised retries"
        link = topo.direct_link("edge", "lrz")
        assert link.losses > 0, "the lossy link never dropped anything"

    def test_lossy_pipeline_without_retries_still_accounts_drops(self, service):
        """Regression: retries off keeps the existing QoS-0 contract —
        drops are counted, the run completes."""
        edge = service.submit_pilot(
            PilotDescription(
                resource="ssh",
                site="edge",
                nodes=1,
                node_spec=ResourceSpec(cores=1, memory_gb=4),
            )
        )
        cloud = service.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
        )
        assert service.wait_all(timeout=15)
        topo = ContinuumTopology(time_scale=0.0, seed=5)
        topo.add_site("edge", tier="edge")
        topo.add_site("lrz", tier="cloud")
        topo.connect("edge", "lrz", CELLULAR_EDGE)
        injector = FaultInjector(seed=2).drop_next(3, op="transfer")
        topo.direct_link("edge", "lrz").injector = injector

        total = 60
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=40, features=8, clusters=4),
            process_cloud_function_handler=passthrough_processor,
            config=PipelineConfig(
                num_devices=1, messages_per_device=total, max_duration=60.0
            ),
            topology=topo,
        )
        result = pipeline.run()
        assert result.completed, result.errors
        dropped = pipeline.collector.counter("messages_dropped")
        assert dropped >= 3  # at least the scripted drops
        assert result.report.messages + dropped == total
