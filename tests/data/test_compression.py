"""Tests for lossless wire compression."""

import numpy as np
import pytest

from repro.data import decode_block, encode_block
from repro.data.serde import MAGIC, MAGIC_COMPRESSED, SerdeError


class TestCompressedFrames:
    def test_roundtrip_exact(self, small_block):
        frame = encode_block(small_block, compress=True)
        np.testing.assert_array_equal(decode_block(frame), small_block)

    def test_magic_differs(self, small_block):
        assert encode_block(small_block)[:4] == MAGIC
        assert encode_block(small_block, compress=True)[:4] == MAGIC_COMPRESSED

    def test_compressible_data_shrinks(self):
        block = np.zeros((1000, 32))
        raw = encode_block(block)
        compressed = encode_block(block, compress=True)
        assert len(compressed) < len(raw) / 10

    def test_incompressible_data_roundtrips(self, rng):
        block = rng.normal(size=(100, 16))  # random doubles barely compress
        frame = encode_block(block, compress=True)
        np.testing.assert_array_equal(decode_block(frame), block)

    def test_mixed_frames_decode_transparently(self, small_block):
        frames = [
            encode_block(small_block),
            encode_block(small_block, compress=True),
        ]
        for frame in frames:
            np.testing.assert_array_equal(decode_block(frame), small_block)

    def test_corrupt_compressed_payload(self, small_block):
        frame = bytearray(encode_block(small_block, compress=True))
        frame[-1] ^= 0xFF
        with pytest.raises(SerdeError):
            decode_block(bytes(frame))

    def test_crc_covers_uncompressed_content(self, small_block):
        # Flip a header CRC bit: decompression succeeds, CRC must fail.
        frame = bytearray(encode_block(small_block, compress=True))
        frame[12] ^= 0x01
        with pytest.raises(SerdeError, match="CRC"):
            decode_block(bytes(frame))

    def test_levels(self, small_block):
        for level in (1, 6, 9):
            frame = encode_block(small_block, compress=True, level=level)
            np.testing.assert_array_equal(decode_block(frame), small_block)


class TestBlockSerdeCompression:
    def test_serde_flag(self, small_block):
        from repro.broker import BlockSerde

        serde = BlockSerde(compress=True)
        payload = serde.serialize(small_block)
        assert payload[:4] == MAGIC_COMPRESSED
        np.testing.assert_array_equal(serde.deserialize(payload), small_block)


class TestPipelineWireCompression:
    def test_compress_wire_reduces_link_bytes(self, running_pilots):
        from repro.core import (
            EdgeToCloudPipeline,
            PipelineConfig,
            passthrough_processor,
        )
        from repro.netem import LAN, ContinuumTopology

        def produce_compressible(context):
            # Low-entropy sensor data (quantised values) compresses well.
            rng = np.random.default_rng(0)
            return np.round(rng.normal(size=(200, 8)), 1)

        sizes = {}
        for compress in (False, True):
            topo = ContinuumTopology(time_scale=0.0)
            topo.add_site("edge-site", tier="edge")
            topo.add_site("cloud-site", tier="cloud")
            topo.connect("edge-site", "cloud-site", LAN)
            edge, cloud = running_pilots
            pipeline = EdgeToCloudPipeline(
                pilot_edge=edge,
                pilot_cloud_processing=cloud,
                produce_function_handler=produce_compressible,
                process_cloud_function_handler=passthrough_processor,
                config=PipelineConfig(
                    num_devices=1, messages_per_device=4, compress_wire=compress,
                    topic=f"wire-{compress}",
                ),
                topology=topo,
            )
            result = pipeline.run()
            assert result.completed
            sizes[compress] = topo.direct_link("edge-site", "cloud-site").bytes_moved
        assert sizes[True] < sizes[False] / 2
