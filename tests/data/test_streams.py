"""Tests for stream sources."""

import numpy as np
import pytest

from repro.data import BlockStream, PoissonArrivals, ReplayStream
from repro.data.generator import DataBlockGenerator, GeneratorConfig
from repro.util.validation import ValidationError


class TestBlockStream:
    def test_emits_exactly_count_blocks(self):
        stream = BlockStream(count=5, points=10, features=4, clusters=5)
        blocks = list(stream)
        assert len(blocks) == 5
        assert stream.exhausted

    def test_next_after_exhaustion_raises(self):
        stream = BlockStream(count=1, points=10, features=4, clusters=5)
        stream.next()
        with pytest.raises(StopIteration):
            stream.next()

    def test_emitted_counter(self):
        stream = BlockStream(count=3, points=10, features=4, clusters=5)
        stream.next()
        assert stream.emitted == 1

    def test_explicit_generator(self):
        gen = DataBlockGenerator(GeneratorConfig(points=20, features=2, clusters=5))
        stream = BlockStream(generator=gen, count=2)
        assert stream.next().shape == (20, 2)

    def test_interval_is_stored_not_slept(self):
        import time

        stream = BlockStream(count=3, interval=10.0, points=5, features=2, clusters=3)
        t0 = time.monotonic()
        list(stream)
        assert time.monotonic() - t0 < 1.0
        assert stream.interval == 10.0

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            BlockStream(count=0)


class TestReplayStream:
    def test_replays_in_order(self):
        blocks = [np.full((2, 2), i) for i in range(3)]
        stream = ReplayStream(blocks)
        out = list(stream)
        for i, b in enumerate(out):
            assert (b == i).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplayStream([])

    def test_exhaustion(self):
        stream = ReplayStream([np.zeros((1, 1))])
        stream.next()
        assert stream.exhausted
        with pytest.raises(StopIteration):
            stream.next()


class TestPoissonArrivals:
    def test_mean_interval_matches_rate(self):
        arrivals = PoissonArrivals(rate=10.0, seed=0)
        intervals = arrivals.intervals(20_000)
        assert intervals.mean() == pytest.approx(0.1, rel=0.05)

    def test_rate_update(self):
        arrivals = PoissonArrivals(rate=1.0)
        arrivals.rate = 5.0
        assert arrivals.rate == 5.0

    def test_invalid_rate(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(rate=0.0)
        arrivals = PoissonArrivals(rate=1.0)
        with pytest.raises(ValidationError):
            arrivals.rate = -1.0

    def test_next_interval_positive(self):
        arrivals = PoissonArrivals(rate=2.0, seed=1)
        assert all(arrivals.next_interval() > 0 for _ in range(100))

    def test_deterministic_with_seed(self):
        a = PoissonArrivals(rate=3.0, seed=7).intervals(10)
        b = PoissonArrivals(rate=3.0, seed=7).intervals(10)
        np.testing.assert_array_equal(a, b)
