"""Tests for the Mini-App data generator."""

import numpy as np
import pytest

from repro.data import DataBlockGenerator, GeneratorConfig
from repro.util.validation import ValidationError


class TestGeneratorConfig:
    def test_defaults_match_paper(self):
        cfg = GeneratorConfig()
        assert cfg.features == 32
        assert cfg.clusters == 25

    def test_rejects_zero_points(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(points=0)

    def test_rejects_excess_outlier_fraction(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(outlier_fraction=0.6)

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(points=10, clusters=20)


class TestDataBlockGenerator:
    def test_block_shape(self):
        gen = DataBlockGenerator(GeneratorConfig(points=100, features=8))
        assert gen.next_block().shape == (100, 8)

    def test_deterministic_given_seed(self):
        a = DataBlockGenerator(GeneratorConfig(seed=5, points=50)).next_block()
        b = DataBlockGenerator(GeneratorConfig(seed=5, points=50)).next_block()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = DataBlockGenerator(GeneratorConfig(seed=1, points=50)).next_block()
        b = DataBlockGenerator(GeneratorConfig(seed=2, points=50)).next_block()
        assert not np.array_equal(a, b)

    def test_blocks_vary_within_stream(self):
        gen = DataBlockGenerator(GeneratorConfig(points=50))
        assert not np.array_equal(gen.next_block(), gen.next_block())

    def test_labels_mark_outliers(self):
        gen = DataBlockGenerator(
            GeneratorConfig(points=1000, outlier_fraction=0.1, seed=3)
        )
        block, labels = gen.next_block(with_labels=True)
        assert labels.sum() == 100
        # Outliers lie on a far shell: their norms should dominate.
        out_norms = np.linalg.norm(block[labels == 1], axis=1)
        in_norms = np.linalg.norm(block[labels == 0], axis=1)
        assert out_norms.min() > np.percentile(in_norms, 99)

    def test_zero_outlier_fraction(self):
        gen = DataBlockGenerator(GeneratorConfig(points=64, outlier_fraction=0.0))
        block, labels = gen.next_block(with_labels=True)
        assert labels.sum() == 0
        assert block.shape[0] == 64

    def test_centers_are_read_only(self):
        gen = DataBlockGenerator(GeneratorConfig(points=50))
        with pytest.raises(ValueError):
            gen.centers[0, 0] = 99.0

    def test_blocks_produced_counter(self):
        gen = DataBlockGenerator(GeneratorConfig(points=30))
        list(gen.blocks(3))
        assert gen.blocks_produced == 3

    def test_keyword_overrides(self):
        gen = DataBlockGenerator(points=10, features=4, clusters=5)
        assert gen.next_block().shape == (10, 4)

    def test_config_and_overrides_conflict(self):
        with pytest.raises(ValidationError):
            DataBlockGenerator(GeneratorConfig(), points=10)

    def test_message_size_matches_paper_framing(self):
        # 10,000 points x 32 features x 8 B = 2.56 MB (+16 B header).
        gen = DataBlockGenerator(GeneratorConfig(points=10_000, features=32))
        assert gen.message_size_bytes() == 16 + 10_000 * 32 * 8

    def test_blocks_are_c_contiguous(self):
        gen = DataBlockGenerator(GeneratorConfig(points=40))
        assert gen.next_block().flags["C_CONTIGUOUS"]
