"""Tests for the block wire format."""

import numpy as np
import pytest

from repro.data import (
    BYTES_PER_VALUE,
    HEADER_SIZE,
    decode_block,
    decode_block_many,
    encode_block,
    encoded_size,
    split_rows,
    stack_blocks,
)
from repro.data.serde import MAGIC, SerdeError


class TestEncode:
    def test_roundtrip(self, small_block):
        decoded = decode_block(encode_block(small_block))
        np.testing.assert_array_equal(decoded, small_block)

    def test_encoded_size_formula(self):
        frame = encode_block(np.zeros((25, 32)))
        assert len(frame) == encoded_size(25, 32)
        assert len(frame) == HEADER_SIZE + 25 * 32 * BYTES_PER_VALUE

    def test_paper_message_sizes(self):
        # Paper: 25 points -> ~7 KB, 10,000 points -> ~2.6 MB.
        assert encoded_size(25, 32) == pytest.approx(7e3, rel=0.3)
        assert encoded_size(10_000, 32) == pytest.approx(2.6e6, rel=0.05)

    def test_magic_prefix(self):
        assert encode_block(np.zeros((1, 1)))[:4] == MAGIC

    def test_non_2d_rejected(self):
        with pytest.raises(SerdeError):
            encode_block(np.zeros(5))

    def test_accepts_int_arrays(self):
        block = np.arange(6).reshape(2, 3)
        decoded = decode_block(encode_block(block))
        np.testing.assert_array_equal(decoded, block.astype(float))


class TestDecode:
    def test_truncated_frame(self):
        with pytest.raises(SerdeError, match="too short"):
            decode_block(b"PEB1")

    def test_bad_magic(self, small_block):
        frame = bytearray(encode_block(small_block))
        frame[:4] = b"XXXX"
        with pytest.raises(SerdeError, match="bad magic"):
            decode_block(bytes(frame))

    def test_corrupt_payload_detected_by_crc(self, small_block):
        frame = bytearray(encode_block(small_block))
        frame[-1] ^= 0xFF
        with pytest.raises(SerdeError, match="CRC"):
            decode_block(bytes(frame))

    def test_length_mismatch(self, small_block):
        frame = encode_block(small_block)
        with pytest.raises(SerdeError, match="length"):
            decode_block(frame + b"extra")

    def test_decoded_is_readonly_view_by_default(self, small_block):
        decoded = decode_block(encode_block(small_block))
        with pytest.raises(ValueError):
            decoded[0, 0] = 42.0  # zero-copy views must not be writable

    def test_decoded_view_shares_frame_memory(self, small_block):
        frame = encode_block(small_block)
        decoded = decode_block(frame)
        expected = np.frombuffer(frame[16:], dtype=np.float64).reshape(decoded.shape)
        np.testing.assert_array_equal(decoded, expected)
        assert not decoded.flags.owndata  # view over the frame, not a copy

    def test_decoded_copy_is_writable(self, small_block):
        decoded = decode_block(encode_block(small_block), copy=True)
        decoded[0, 0] = 42.0  # must not raise
        assert decoded[0, 0] == 42.0

    def test_compressed_decode_honours_copy_flag(self, small_block):
        frame = encode_block(small_block, compress=True)
        view = decode_block(frame)
        with pytest.raises(ValueError):
            view[0, 0] = 1.0
        writable = decode_block(frame, copy=True)
        writable[0, 0] = 1.0

    def test_preserves_shape(self):
        block = np.random.default_rng(0).normal(size=(7, 13))
        assert decode_block(encode_block(block)).shape == (7, 13)

    def test_preserves_exact_float_values(self):
        block = np.array([[1e-300, 1e300, -0.0, np.pi]])
        decoded = decode_block(encode_block(block))
        np.testing.assert_array_equal(decoded, block)


class TestBatchSerde:
    def test_decode_block_many_roundtrip(self, rng):
        blocks = [rng.normal(size=(n, 4)) for n in (3, 7, 1)]
        frames = [encode_block(b) for b in blocks]
        decoded = decode_block_many(frames)
        assert len(decoded) == 3
        for got, want in zip(decoded, blocks):
            np.testing.assert_array_equal(got, want)

    def test_decode_block_many_corrupt_frame_raises(self, small_block):
        frames = [encode_block(small_block), b"garbage"]
        with pytest.raises(SerdeError):
            decode_block_many(frames)

    def test_verify_false_skips_crc(self, small_block):
        frame = bytearray(encode_block(small_block))
        frame[-1] ^= 0xFF  # flip a payload byte; header stays intact
        frame = bytes(frame)
        with pytest.raises(SerdeError, match="CRC"):
            decode_block(frame)
        decoded = decode_block(frame, verify=False)  # trusted transport
        assert decoded.shape == small_block.shape

    def test_verify_still_checks_structure(self):
        with pytest.raises(SerdeError):
            decode_block(b"PEB1....", verify=False)

    def test_stack_blocks_offsets_and_values(self, rng):
        blocks = [rng.normal(size=(n, 5)) for n in (2, 4, 3)]
        stacked, offsets = stack_blocks(blocks)
        assert stacked.shape == (9, 5)
        np.testing.assert_array_equal(offsets, [0, 2, 6, 9])
        np.testing.assert_array_equal(stacked, np.concatenate(blocks))

    def test_stack_single_block_is_no_copy(self, small_block):
        stacked, offsets = stack_blocks([small_block])
        assert stacked is small_block or np.shares_memory(stacked, small_block)
        np.testing.assert_array_equal(offsets, [0, small_block.shape[0]])

    def test_stack_rejects_mismatched_features(self):
        with pytest.raises(SerdeError):
            stack_blocks([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_stack_rejects_empty_and_non_2d(self):
        with pytest.raises(SerdeError):
            stack_blocks([])
        with pytest.raises(SerdeError):
            stack_blocks([np.zeros(3)])

    def test_split_rows_roundtrip(self, rng):
        blocks = [rng.normal(size=(n, 2)) for n in (1, 5, 2)]
        stacked, offsets = stack_blocks(blocks)
        parts = split_rows(stacked, offsets)
        assert len(parts) == 3
        for got, want in zip(parts, blocks):
            np.testing.assert_array_equal(got, want)
            assert np.shares_memory(got, stacked)  # zero-copy row slices

    def test_split_rows_on_scores_vector(self, rng):
        blocks = [rng.normal(size=(n, 3)) for n in (4, 2)]
        stacked, offsets = stack_blocks(blocks)
        scores = stacked.sum(axis=1)
        parts = split_rows(scores, offsets)
        assert [len(p) for p in parts] == [4, 2]
