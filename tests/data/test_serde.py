"""Tests for the block wire format."""

import numpy as np
import pytest

from repro.data import BYTES_PER_VALUE, HEADER_SIZE, decode_block, encode_block, encoded_size
from repro.data.serde import MAGIC, SerdeError


class TestEncode:
    def test_roundtrip(self, small_block):
        decoded = decode_block(encode_block(small_block))
        np.testing.assert_array_equal(decoded, small_block)

    def test_encoded_size_formula(self):
        frame = encode_block(np.zeros((25, 32)))
        assert len(frame) == encoded_size(25, 32)
        assert len(frame) == HEADER_SIZE + 25 * 32 * BYTES_PER_VALUE

    def test_paper_message_sizes(self):
        # Paper: 25 points -> ~7 KB, 10,000 points -> ~2.6 MB.
        assert encoded_size(25, 32) == pytest.approx(7e3, rel=0.3)
        assert encoded_size(10_000, 32) == pytest.approx(2.6e6, rel=0.05)

    def test_magic_prefix(self):
        assert encode_block(np.zeros((1, 1)))[:4] == MAGIC

    def test_non_2d_rejected(self):
        with pytest.raises(SerdeError):
            encode_block(np.zeros(5))

    def test_accepts_int_arrays(self):
        block = np.arange(6).reshape(2, 3)
        decoded = decode_block(encode_block(block))
        np.testing.assert_array_equal(decoded, block.astype(float))


class TestDecode:
    def test_truncated_frame(self):
        with pytest.raises(SerdeError, match="too short"):
            decode_block(b"PEB1")

    def test_bad_magic(self, small_block):
        frame = bytearray(encode_block(small_block))
        frame[:4] = b"XXXX"
        with pytest.raises(SerdeError, match="bad magic"):
            decode_block(bytes(frame))

    def test_corrupt_payload_detected_by_crc(self, small_block):
        frame = bytearray(encode_block(small_block))
        frame[-1] ^= 0xFF
        with pytest.raises(SerdeError, match="CRC"):
            decode_block(bytes(frame))

    def test_length_mismatch(self, small_block):
        frame = encode_block(small_block)
        with pytest.raises(SerdeError, match="length"):
            decode_block(frame + b"extra")

    def test_decoded_is_readonly_view_by_default(self, small_block):
        decoded = decode_block(encode_block(small_block))
        with pytest.raises(ValueError):
            decoded[0, 0] = 42.0  # zero-copy views must not be writable

    def test_decoded_view_shares_frame_memory(self, small_block):
        frame = encode_block(small_block)
        decoded = decode_block(frame)
        expected = np.frombuffer(frame[16:], dtype=np.float64).reshape(decoded.shape)
        np.testing.assert_array_equal(decoded, expected)
        assert not decoded.flags.owndata  # view over the frame, not a copy

    def test_decoded_copy_is_writable(self, small_block):
        decoded = decode_block(encode_block(small_block), copy=True)
        decoded[0, 0] = 42.0  # must not raise
        assert decoded[0, 0] == 42.0

    def test_compressed_decode_honours_copy_flag(self, small_block):
        frame = encode_block(small_block, compress=True)
        view = decode_block(frame)
        with pytest.raises(ValueError):
            view[0, 0] = 1.0
        writable = decode_block(frame, copy=True)
        writable[0, 0] = 1.0

    def test_preserves_shape(self):
        block = np.random.default_rng(0).normal(size=(7, 13))
        assert decode_block(encode_block(block)).shape == (7, 13)

    def test_preserves_exact_float_values(self):
        block = np.array([[1e-300, 1e300, -0.0, np.pi]])
        decoded = decode_block(encode_block(block))
        np.testing.assert_array_equal(decoded, block)
