"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_baseline_defaults(self):
        args = build_parser().parse_args(["baseline"])
        assert args.points == 1000
        assert args.devices == 2

    def test_model_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model", "--model", "svm"])

    def test_geo_link_choices(self):
        args = build_parser().parse_args(["geo", "--link", "lan"])
        assert args.link == "lan"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["geo", "--link", "warp"])


class TestInfo:
    def test_info_lists_plugins(self, capsys):
        assert main(["info"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert "ssh" in out["resource_plugins"]
        assert "kafka" in out["broker_plugins"]
        assert out["instance_catalog"]["lrz.large"]["cores"] == 10


class TestRuns:
    def test_baseline_run(self, capsys):
        rc = main(
            ["baseline", "--points", "50", "--devices", "1", "--messages", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "completed=True" in out
        assert "MB/s=" in out

    def test_model_run_json(self, capsys):
        rc = main(
            ["model", "--model", "kmeans", "--points", "50",
             "--devices", "1", "--messages", "3", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] is True
        assert payload["messages"] == 3

    def test_geo_run(self, capsys):
        rc = main(
            ["geo", "--model", "baseline", "--points", "100",
             "--devices", "2", "--messages", "8", "--link", "lan", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"] == 16
        assert "virtual_duration_s" in payload
        assert payload["bottleneck"] in ("processing", "transfer")
