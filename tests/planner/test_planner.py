"""Tests for the objective-driven resource planner."""

import pytest

from repro.netem import LAN, TRANSATLANTIC, ContinuumTopology
from repro.planner import (
    ApplicationObjective,
    InfeasibleObjective,
    ResourcePlanner,
    WorkloadProfile,
    validate_plan,
)
from repro.util.validation import ValidationError


def make_topology(profile):
    topo = ContinuumTopology(time_scale=0.0, seed=0)
    topo.add_site("edge", tier="edge")
    topo.add_site("cloud", tier="cloud")
    topo.connect("edge", "cloud", profile)
    return topo


@pytest.fixture
def lan_planner():
    return ResourcePlanner(make_topology(LAN), "edge", "cloud")


@pytest.fixture
def geo_planner():
    return ResourcePlanner(make_topology(TRANSATLANTIC), "edge", "cloud")


def light_workload(**kw):
    defaults = dict(points=1000, rate_msgs_s=20.0, num_devices=4,
                    process_cost_s=0.02, compression_ratio=0.25)
    defaults.update(kw)
    return WorkloadProfile(**defaults)


class TestWorkloadProfile:
    def test_demand_arithmetic(self):
        w = light_workload()
        assert w.message_bytes == 16 + 1000 * 32 * 8
        assert w.demand_mb_s == pytest.approx(20 * w.message_bytes / 1e6)
        assert w.required_cloud_cores == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValidationError):
            WorkloadProfile(rate_msgs_s=0)
        with pytest.raises(ValidationError):
            WorkloadProfile(compression_ratio=0.0)


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ApplicationObjective(prefer="vibes")
        with pytest.raises(ValidationError):
            ApplicationObjective(max_latency_s=-1)


class TestPlanning:
    def test_cost_prefers_edge_when_devices_keep_up(self, lan_planner):
        # The devices are already paid for ($0.01/h each); if they can
        # absorb the load, the cost-optimal plan skips the cloud.
        plan = lan_planner.plan(light_workload(), ApplicationObjective(prefer="cost"))
        assert plan.placement == "edge"
        assert plan.cloud_pilot is None
        assert plan.est_cost_per_hour == pytest.approx(0.04)

    def test_cost_falls_back_to_cloud_when_devices_saturate(self, lan_planner):
        # 0.05 s/msg x 8 slowdown = 0.4 s on-device; 5 msgs/s/device
        # needs 2 cores per 1-core device -> edge infeasible -> cloud.
        w = light_workload(process_cost_s=0.05)
        plan = lan_planner.plan(w, ApplicationObjective(prefer="cost"))
        assert plan.placement in ("cloud", "hybrid")
        assert plan.cloud_pilot is not None

    def test_cheapest_instance_chosen(self, lan_planner):
        # 1 core needed: one lrz.medium (4 cores, $0.20) suffices and
        # beats one lrz.large ($0.48).
        w = light_workload(process_cost_s=0.05)
        plan = lan_planner.plan(w, ApplicationObjective(prefer="cost"))
        assert plan.instance.name == "lrz.medium"
        assert plan.cloud_pilot.nodes == 1

    def test_heavy_compute_needs_more_nodes(self, lan_planner):
        heavy = light_workload(process_cost_s=0.5, rate_msgs_s=40.0)  # 20 cores
        plan = lan_planner.plan(heavy, ApplicationObjective(prefer="cost"))
        total_cores = plan.cloud_pilot.nodes * plan.instance.spec.cores
        assert total_cores >= 20

    def test_transatlantic_raw_infeasible_hybrid_chosen(self, geo_planner):
        # 20 msgs/s x 256 KB = 5.1 MB/s raw < 10 MB/s link: feasible raw.
        # Crank the rate so raw exceeds the link but compressed fits.
        w = light_workload(rate_msgs_s=60.0)  # 15.4 MB/s raw, 3.8 compressed
        plan = geo_planner.plan(w, ApplicationObjective(prefer="cost"))
        assert plan.placement in ("hybrid", "edge")

    def test_latency_preference_picks_edge_over_wan(self, geo_planner):
        w = light_workload(rate_msgs_s=4.0, process_cost_s=0.01, edge_slowdown=4.0)
        plan = geo_planner.plan(w, ApplicationObjective(prefer="latency"))
        # On-device processing (40 ms) beats a 75 ms one-way hop.
        assert plan.placement == "edge"

    def test_energy_preference_picks_edge_when_feasible(self, geo_planner):
        w = light_workload(rate_msgs_s=4.0, process_cost_s=0.01)
        plan = geo_planner.plan(w, ApplicationObjective(prefer="energy"))
        assert plan.placement == "edge"

    def test_cost_ceiling_filters_plans(self, lan_planner):
        w = light_workload(process_cost_s=0.5, rate_msgs_s=40.0)  # 20 cores
        with pytest.raises(InfeasibleObjective):
            lan_planner.plan(
                w,
                ApplicationObjective(max_cost_per_hour=0.05, prefer="cost",
                                     max_latency_s=0.5),
            )

    def test_latency_ceiling(self, geo_planner):
        # A 1 ms ceiling is impossible over a 150 ms RTT link AND on a
        # slow device.
        w = light_workload(process_cost_s=0.05)
        with pytest.raises(InfeasibleObjective):
            geo_planner.plan(w, ApplicationObjective(max_latency_s=0.001))

    def test_overwhelming_rate_infeasible(self, geo_planner):
        w = light_workload(rate_msgs_s=5000.0, process_cost_s=0.1, edge_slowdown=100.0,
                           compression_ratio=0.99)
        with pytest.raises(InfeasibleObjective):
            geo_planner.plan(w, ApplicationObjective())

    def test_plan_descriptions_are_submittable(self, lan_planner, pilot_service):
        # Force a cloud plan so both pilot descriptions exist.
        w = light_workload(process_cost_s=0.05)
        plan = lan_planner.plan(w, ApplicationObjective(prefer="cost"))
        assert plan.cloud_pilot is not None
        edge = pilot_service.submit_pilot(plan.edge_pilot)
        cloud = pilot_service.submit_pilot(plan.cloud_pilot)
        assert pilot_service.wait_all(timeout=10)
        assert edge.cluster.n_workers == 4
        assert cloud.cluster.worker_resources.cores == plan.instance.spec.cores

    def test_describe_human_readable(self, lan_planner):
        plan = lan_planner.plan(light_workload(), ApplicationObjective())
        text = plan.describe()
        assert "msgs/s" in text and "$" in text


class TestValidatePlan:
    def test_cloud_plan_validates_in_sim(self, lan_planner):
        w = light_workload()
        plan = lan_planner.plan(w, ApplicationObjective(prefer="cost"))
        ok, result = validate_plan(plan, w, link_profile=LAN, messages_per_device=32)
        assert ok, result.report.row()

    def test_edge_plan_validates_in_sim(self, geo_planner):
        w = light_workload(rate_msgs_s=4.0, process_cost_s=0.01)
        plan = geo_planner.plan(w, ApplicationObjective(prefer="energy"))
        assert plan.placement == "edge"
        ok, result = validate_plan(plan, w, messages_per_device=32)
        assert ok, result.report.row()

    def test_undersized_plan_fails_validation(self, lan_planner):
        w = light_workload(rate_msgs_s=200.0, process_cost_s=0.1)  # 20 cores
        plan = lan_planner.plan(w, ApplicationObjective(prefer="cost"))
        # Sabotage: strip the plan to one consumer.
        plan.consumers = 1
        ok, result = validate_plan(plan, w, link_profile=LAN, messages_per_device=32)
        assert not ok
