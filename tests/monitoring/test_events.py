"""Unit tests for the control-plane event journal."""

import json

import pytest

from repro.monitoring.events import (
    EVENT_TYPES,
    Event,
    EventJournal,
    merge_timeline,
    read_jsonl,
)


class TestEventJournal:
    def test_emit_assigns_monotonic_seq(self):
        journal = EventJournal(origin="sup")
        first = journal.emit("shard_started", shard=0)
        second = journal.emit("shard_died", shard=0)
        assert (first.seq, second.seq) == (1, 2)
        assert journal.next_seq == 3
        assert [e.type for e in journal.events()] == ["shard_started", "shard_died"]

    def test_unknown_event_type_raises(self):
        journal = EventJournal()
        with pytest.raises(ValueError, match="unknown event type"):
            journal.emit("made_up_event")

    def test_every_declared_type_is_emittable(self):
        journal = EventJournal()
        for event_type in EVENT_TYPES:
            journal.emit(event_type)
        assert len(journal) == len(EVENT_TYPES)

    def test_events_since_returns_only_the_delta(self):
        journal = EventJournal(origin="shard-0")
        for shard in range(5):
            journal.emit("shard_started", shard=shard)
        cursor = journal.events()[2].seq
        delta = journal.events_since(cursor)
        assert [e.fields["shard"] for e in delta] == [3, 4]
        assert journal.events_since(journal.events()[-1].seq) == []

    def test_ring_bound_drops_oldest(self):
        journal = EventJournal(maxlen=3)
        for shard in range(6):
            journal.emit("shard_started", shard=shard)
        kept = journal.events()
        assert len(kept) == 3
        # Sequence numbers keep counting even as old events fall off.
        assert [e.seq for e in kept] == [4, 5, 6]

    def test_boot_token_differs_per_instance(self):
        assert EventJournal().boot != EventJournal().boot

    def test_event_dict_round_trip(self):
        journal = EventJournal(origin="shard-1")
        original = journal.emit("leader_elected", topic="t", partition=0, epoch=2)
        restored = Event.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored == original

    def test_format_mentions_type_origin_and_fields(self):
        journal = EventJournal(origin="sup")
        line = journal.emit("isr_evict", follower=1, topic="t").format()
        assert "isr_evict" in line
        assert "[sup:1]" in line
        assert "follower=1" in line

    def test_jsonl_round_trip_via_file(self, tmp_path):
        journal = EventJournal(origin="shard-0")
        journal.emit("recovery_completed", topic="t", partition=0, records=7)
        journal.emit("flush_stall", topic="t", partition=0, duration_ms=300.0)
        path = tmp_path / "events.jsonl"
        assert journal.write_jsonl(path) == 2
        assert read_jsonl(path) == journal.events()


class TestMergeTimeline:
    def test_orders_by_wall_clock_then_origin_seq(self):
        a = Event(seq=1, ts=10.0, type="shard_died", origin="sup")
        b = Event(seq=1, ts=5.0, type="shard_started", origin="shard-0")
        c = Event(seq=2, ts=10.0, type="shard_respawned", origin="sup")
        merged = merge_timeline([a, c], [b])
        assert merged == [b, a, c]

    def test_accepts_journals_dicts_and_events(self):
        journal = EventJournal(origin="sup")
        journal.emit("shard_started", shard=0)
        as_dict = {"seq": 1, "ts": 0.0, "type": "isr_join", "origin": "shard-1"}
        merged = merge_timeline(journal, [as_dict])
        assert [e.type for e in merged] == ["isr_join", "shard_started"]
        assert all(isinstance(e, Event) for e in merged)

    def test_same_origin_never_reorders_on_ts_tie(self):
        first = Event(seq=1, ts=7.0, type="isr_evict", origin="shard-0")
        second = Event(seq=2, ts=7.0, type="isr_join", origin="shard-0")
        assert merge_timeline([second, first]) == [first, second]
