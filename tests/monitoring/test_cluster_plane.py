"""Unit tests for the cluster observability plane: snapshot merging,
the federated aggregator, the event collector's boot-aware cursors, and
cross-process span stitching — all against fake in-memory clusters, so
the merge/cursor/stitch logic is exercised without process spawning."""

from repro.monitoring.cluster import (
    ClusterEventCollector,
    ClusterMetricsAggregator,
    ClusterTraceCollector,
    format_span_tree,
    merge_histogram_snapshots,
    merge_metric_snapshots,
    render_dashboard,
    stitch_spans,
)
from repro.monitoring.events import EventJournal
from repro.monitoring.instruments import Histogram, MetricsRegistry
from repro.monitoring.tracing import Span, Tracer


def _hist_snapshot(values):
    hist = Histogram("h")
    for v in values:
        hist.observe(v)
    return hist.snapshot()


class TestHistogramMerge:
    def test_merge_is_elementwise_and_count_exact(self):
        a = _hist_snapshot([0.001, 0.002, 0.004])
        b = _hist_snapshot([0.008, 0.016])
        merged = merge_histogram_snapshots(a, b)
        assert merged["count"] == 5
        assert merged["sum"] == a["sum"] + b["sum"]
        assert merged["buckets"] == [x + y for x, y in zip(a["buckets"], b["buckets"])]
        assert merged["min"] == 0.001
        assert merged["max"] == 0.016

    def test_merged_percentiles_match_single_histogram(self):
        values = [0.001 * (i + 1) for i in range(100)]
        one = _hist_snapshot(values)
        merged = merge_histogram_snapshots(
            _hist_snapshot(values[:50]), _hist_snapshot(values[50:])
        )
        for q in ("p50", "p95", "p99"):
            assert abs(merged[q] - one[q]) < 1e-9

    def test_bounds_mismatch_is_flagged_not_fabricated(self):
        a = _hist_snapshot([0.001, 0.002])
        small = Histogram("s", base=1e-3, nbuckets=4)
        small.observe(0.002)
        merged = merge_histogram_snapshots(a, small.snapshot())
        assert merged["bounds_mismatch"] is True
        assert merged["count"] == 2  # larger-count snapshot won


class TestMergeMetricSnapshots:
    def _snap(self, shard, counters=None, gauges=None):
        return {
            "shard": shard,
            "enabled": True,
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": {},
        }

    def test_counters_sum_gauges_keep_shard_key(self):
        merged = merge_metric_snapshots({
            0: self._snap(0, counters={"records_in": 10}, gauges={"depth": 3}),
            1: self._snap(1, counters={"records_in": 5}, gauges={"depth": 7}),
        })
        assert merged["counters"]["records_in"] == 15
        assert merged["gauges"]["depth"] == {0: 3, 1: 7}
        assert merged["shards"] == [0, 1]

    def test_unreachable_and_disabled_shards_are_skipped(self):
        merged = merge_metric_snapshots({
            0: self._snap(0, counters={"records_in": 1}),
            1: None,
            2: {"shard": 2, "enabled": False},
        })
        assert merged["shards"] == [0]
        assert merged["counters"]["records_in"] == 1


class _FakeCluster:
    """Duck-typed ClusterBroker: serves canned shard payloads."""

    def __init__(self, shards):
        self.shards = shards  # {index: (journal, registry, tracer)}

    def metrics_snapshots(self):
        out = {}
        for index, (journal, registry, tracer) in self.shards.items():
            if registry is None:
                out[index] = None
                continue
            snap = registry.snapshot()
            snap.update(shard=index, enabled=True)
            out[index] = snap
        return out

    def shard_events(self, index, since=0):
        journal = self.shards[index][0]
        if journal is None:
            return None
        return {
            "shard": index,
            "boot": journal.boot,
            "next_seq": journal.next_seq,
            "events": [e.to_dict() for e in journal.events_since(since)],
        }

    def events_snapshots(self, cursors=None):
        cursors = cursors or {}
        return {
            index: self.shard_events(index, cursors.get(index, 0))
            for index in self.shards
        }

    def shard_spans(self, index, since=0):
        journal, _, tracer = self.shards[index]
        if tracer is None:
            return None
        spans = tracer.spans()
        return {
            "shard": index,
            "boot": journal.boot,
            "next": len(spans),
            "spans": [s.to_dict() for s in spans[since:]],
        }

    def span_snapshots(self, cursors=None):
        cursors = cursors or {}
        return {
            index: self.shard_spans(index, cursors.get(index, 0))
            for index in self.shards
        }


def _shard(origin):
    journal = EventJournal(origin=origin)
    registry = MetricsRegistry()
    tracer = Tracer(service=origin)
    return journal, registry, tracer


class TestClusterMetricsAggregator:
    def test_scrape_merges_and_counts_shards(self):
        s0, s1 = _shard("shard-0"), _shard("shard-1")
        s0[1].counter("records_in").inc(4)
        s1[1].counter("records_in").inc(6)
        agg = ClusterMetricsAggregator(_FakeCluster({0: s0, 1: s1}))
        merged = agg.scrape()
        assert merged["counters"]["records_in"] == 10
        assert agg.merged() == merged
        assert agg.last_scrape_s >= 0.0

    def test_local_registry_rides_along_as_pseudo_shard(self):
        s0 = _shard("shard-0")
        local = MetricsRegistry()
        local.gauge("client.in_flight").set(3)
        agg = ClusterMetricsAggregator(_FakeCluster({0: s0}), registry=local)
        merged = agg.scrape()
        assert merged["gauges"]["client.in_flight"] == {"local": 3.0}
        assert "local" in merged["shards"]

    def test_prometheus_export_labels_gauges_by_shard(self):
        s0, s1 = _shard("shard-0"), _shard("shard-1")
        s0[1].gauge("pending").set(1)
        s1[1].gauge("pending").set(2)
        s0[1].counter("flushes").inc(5)
        s0[1].histogram("lat").observe(0.003)
        agg = ClusterMetricsAggregator(_FakeCluster({0: s0, 1: s1}))
        agg.scrape()
        text = agg.to_prometheus()
        assert 'repro_pending{shard="0"} 1' in text
        assert 'repro_pending{shard="1"} 2' in text
        assert "repro_flushes 5" in text
        assert "repro_lat_count 1" in text
        assert "repro_cluster_shards_scraped 2" in text

    def test_sample_flattens_for_the_sampler(self):
        s0 = _shard("shard-0")
        s0[1].counter("records_in").inc(7)
        s0[1].gauge("depth").set(9)
        agg = ClusterMetricsAggregator(_FakeCluster({0: s0}))
        flat = agg.sample()
        assert flat["cluster.records_in"] == 7
        assert flat["cluster.depth.max"] == 9
        assert flat["cluster.shards_scraped"] == 1.0


class TestClusterEventCollector:
    def test_poll_is_incremental(self):
        s0 = _shard("shard-0")
        cluster = _FakeCluster({0: s0})
        collector = ClusterEventCollector(cluster=cluster)
        s0[0].emit("shard_started", shard=0)
        assert [e.type for e in collector.poll()] == ["shard_started"]
        assert collector.poll() == []
        s0[0].emit("isr_join", follower=1)
        assert [e.type for e in collector.poll()] == ["isr_join"]
        assert [e.type for e in collector.events()] == ["shard_started", "isr_join"]

    def test_boot_change_triggers_full_redrain(self):
        s0 = _shard("shard-0")
        cluster = _FakeCluster({0: s0})
        collector = ClusterEventCollector(cluster=cluster)
        s0[0].emit("shard_started", shard=0)
        collector.poll()
        # Respawn: a fresh journal restarts seq at 1 with a new boot
        # token. A seq-only cursor would skip the first event.
        fresh = EventJournal(origin="shard-0")
        cluster.shards[0] = (fresh, s0[1], s0[2])
        fresh.emit("recovery_completed", topic="t", partition=0)
        assert [e.type for e in collector.poll()] == ["recovery_completed"]

    def test_local_journals_merge_into_the_timeline(self):
        supervisor = EventJournal(origin="supervisor")
        collector = ClusterEventCollector(journals=[supervisor])
        supervisor.emit("shard_died", shard=1)
        supervisor.emit("leader_elected", topic="t", partition=0)
        assert [e.type for e in collector.poll()] == [
            "shard_died", "leader_elected",
        ]
        assert collector.timeline()[0].endswith("shard_died shard=1")

    def test_write_jsonl_round_trips(self, tmp_path):
        supervisor = EventJournal(origin="supervisor")
        supervisor.emit("shard_respawned", shard=1, epoch=3)
        collector = ClusterEventCollector(journals=[supervisor])
        collector.poll()
        path = tmp_path / "events.jsonl"
        assert collector.write_jsonl(path) == 1
        from repro.monitoring.events import read_jsonl

        assert read_jsonl(path)[0].fields == {"shard": 1, "epoch": 3}


class TestTraceStitching:
    def _span(self, trace, span_id, parent, name, site, start=0.0, end=1.0):
        s = Span(None, trace, span_id, parent, name, site=site, start=start)
        s.end = end
        return s

    def test_cross_process_tree_reassembles(self):
        pool = [
            self._span("t1", "a", "", "produce", "client", 0.0, 5.0).to_dict(),
            self._span("t1", "b", "a", "broker.append", "shard-0", 1.0, 2.0).to_dict(),
            self._span("t1", "c", "a", "replica.append", "shard-1", 2.0, 3.0).to_dict(),
        ]
        trees = stitch_spans(pool)
        root = trees["t1"]
        assert root["span"].name == "produce"
        children = sorted(n["span"].name for n in root["children"])
        assert children == ["broker.append", "replica.append"]
        rendering = "\n".join(format_span_tree(root))
        assert "broker.append [shard-0]" in rendering
        assert rendering.splitlines()[0].startswith("produce [client]")

    def test_rootless_trace_survives(self):
        pool = [
            self._span("t2", "b", "gone", "broker.append", "shard-0").to_dict(),
            self._span("t2", "c", "gone", "replica.append", "shard-1").to_dict(),
        ]
        trees = stitch_spans(pool)
        assert "t2" in trees  # the dead-leader trace is the interesting one

    def test_collector_polls_remote_and_local_tracers(self):
        s0 = _shard("shard-0")
        with s0[2].start_trace("broker.append", site="shard-0"):
            pass
        local = Tracer(service="client")
        with local.start_trace("produce", site="client"):
            pass
        collector = ClusterTraceCollector(
            cluster=_FakeCluster({0: s0}), tracers=[local]
        )
        names = sorted(s["name"] for s in collector.poll())
        assert names == ["broker.append", "produce"]
        assert collector.poll() == []  # cursors advanced


class TestRenderDashboard:
    def test_renders_all_sections(self):
        s0 = _shard("shard-0")
        s0[1].counter("broker.records_in").inc(100)
        s0[1].gauge("replication.hwm_lag.t.0").set(2)
        s0[1].histogram("storage.fsync_latency_seconds").observe(0.002)
        agg = ClusterMetricsAggregator(_FakeCluster({0: s0}))
        merged = agg.scrape()
        journal = EventJournal(origin="sup")
        journal.emit("leader_elected", topic="t", partition=0, epoch=2)
        panel = render_dashboard(
            merged,
            shard_info={0: {"epoch": 1, "connections_open": 2, "requests_total": 9}},
            events=journal.events(),
            rate_history=[10.0, 50.0, 100.0],
            scrape_s=0.004,
        )
        assert "shards up: 1" in panel
        assert "broker.records_in" in panel
        assert "replication.hwm_lag.t.0" in panel
        assert "storage.fsync_latency_seconds" in panel
        assert "leader_elected" in panel
        assert "rec/s" in panel
