"""Tests for the background telemetry sampler and the /metrics endpoint."""

import json
import time
import urllib.request

import pytest

from repro.broker import Broker, Consumer, Producer
from repro.monitoring import MetricsRegistry, TelemetrySampler, serve_exposition
from repro.monitoring.export import series_from_jsonl


class TestSources:
    def test_sample_now_collects_all_sources(self):
        sampler = TelemetrySampler()
        sampler.add_source("a", lambda: {"x": 1})
        sampler.add_source("b", lambda: {"y": 2.5})
        values = sampler.sample_now()
        assert values == {"x": 1, "y": 2.5}
        assert sampler.names() == ["x", "y"]
        assert sampler.latest("y") == 2.5

    def test_failing_source_does_not_kill_round(self):
        sampler = TelemetrySampler()

        def bad():
            raise RuntimeError("component died")

        sampler.add_source("bad", bad)
        sampler.add_source("good", lambda: {"x": 1})
        values = sampler.sample_now()
        assert values == {"x": 1}
        assert sampler.source_errors == 1

    def test_series_accumulates_in_time_order(self):
        sampler = TelemetrySampler()
        level = {"v": 0}
        sampler.add_source("s", lambda: {"x": level["v"]})
        for v in (1, 5, 2):
            level["v"] = v
            sampler.sample_now()
        points = sampler.series("x")
        assert [p[1] for p in points] == [1.0, 5.0, 2.0]
        assert points == sorted(points)

    def test_retention_bound(self):
        sampler = TelemetrySampler(max_samples=3)
        sampler.add_source("s", lambda: {"x": 1})
        for _ in range(10):
            sampler.sample_now()
        assert len(sampler.series("x")) == 3

    def test_registry_mirrors_latest_value(self):
        reg = MetricsRegistry()
        sampler = TelemetrySampler(registry=reg)
        sampler.add_source("s", lambda: {"depth": 7})
        sampler.sample_now()
        assert reg.gauge("depth").value == 7.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySampler(interval_s=0)
        with pytest.raises(ValueError):
            TelemetrySampler(max_samples=0)


class TestWatchBroker:
    def test_broker_gauges_and_lag(self):
        broker = Broker(name="b")
        broker.create_topic("t", num_partitions=2)
        Producer(broker).send_many("t", [b"xx"] * 6, partition=0)
        consumer = Consumer(broker, group_id="g")
        consumer.subscribe("t")
        sampler = TelemetrySampler()
        sampler.watch_broker(broker)
        values = sampler.sample_now()
        assert values["broker.log_depth.t.0"] == 6
        assert values["broker.end_offset.t.0"] == 6
        assert values["broker.log_bytes.t.0"] == 12
        assert values["group.members.g"] == 1
        # nothing committed yet: the whole log is lag
        assert values["consumer_lag.g.t.0"] == 6
        got = []
        while len(got) < 6:
            got.extend(consumer.poll(max_records=10, timeout=1.0))
        consumer.commit()
        assert sampler.sample_now()["consumer_lag.g.t.0"] == 0
        consumer.close()

    def test_lag_series_survives_group_shutdown(self):
        """A closed group keeps its lag series: the curve ends at 0."""
        broker = Broker(name="b")
        broker.create_topic("t", num_partitions=1)
        Producer(broker).send_many("t", [b"x"] * 4, partition=0)
        consumer = Consumer(broker, group_id="g")
        consumer.subscribe("t")
        sampler = TelemetrySampler()
        sampler.watch_broker(broker)
        sampler.sample_now()  # group alive, lag = 4
        while len(consumer.poll(max_records=10, timeout=1.0)) == 0:
            pass
        consumer.commit()
        consumer.close()  # group now empty/deleted
        values = sampler.sample_now()
        assert values["consumer_lag.g.t.0"] == 0
        points = sampler.series("consumer_lag.g.t.0")
        assert points[0][1] == 4.0
        assert points[-1][1] == 0.0

    def test_first_sample_after_shutdown_still_sees_group(self):
        """Committed offsets reveal groups the sampler never saw alive."""
        broker = Broker(name="b")
        broker.create_topic("t", num_partitions=1)
        Producer(broker).send_many("t", [b"x"] * 3, partition=0)
        consumer = Consumer(broker, group_id="g")
        consumer.subscribe("t")
        while len(consumer.poll(max_records=10, timeout=1.0)) == 0:
            pass
        consumer.commit()
        consumer.close()
        sampler = TelemetrySampler()
        sampler.watch_broker(broker)  # first sample happens after close
        assert sampler.sample_now()["consumer_lag.g.t.0"] == 0


class TestWatchServer:
    def test_server_gauges_reach_metrics_endpoint(self):
        from repro.broker.remote import BrokerServer, RemoteBroker

        broker = Broker(name="edge")
        with BrokerServer(broker) as srv:
            with RemoteBroker(srv.host, srv.port) as remote:
                remote.create_topic("t", 1)
                reg = MetricsRegistry()
                sampler = TelemetrySampler(registry=reg)
                sampler.watch_server(srv)
                values = sampler.sample_now()
                assert values["server.edge.connections_active"] == 1
                assert values["server.edge.parked_fetches"] == 0
                assert values["server.edge.reactor_loop_lag_s"] >= 0.0
                assert values["server.edge.requests_served"] >= 1
                http = serve_exposition(reg)
                try:
                    host, port = http.server_address[:2]
                    body = urllib.request.urlopen(
                        f"http://{host}:{port}/metrics", timeout=5
                    ).read().decode()
                    assert "repro_server_edge_connections_active 1" in body
                    assert "repro_server_edge_parked_fetches 0" in body
                finally:
                    http.shutdown()

    def test_threaded_server_subset_sampled(self):
        from repro.broker.remote import RemoteBroker, ThreadedBrokerServer

        with ThreadedBrokerServer(Broker(name="base")) as srv:
            with RemoteBroker(srv.host, srv.port) as remote:
                remote.list_topics()
                sampler = TelemetrySampler()
                sampler.watch_server(srv)
                values = sampler.sample_now()
                assert values["server.base.requests_served"] >= 1
                # The threaded baseline has no reactor gauges — the
                # sampler just records the subset it exposes.
                assert "server.base.connections_active" not in values


class TestWatchCluster:
    def test_shard_labeled_series_and_fleet_gauges(self):
        class FakeCluster:
            """Shape of ClusterBroker.shard_metrics(): one shard (index
            1) is unreachable this round, so it has no entry."""

            num_shards = 3

            def shard_metrics(self):
                return {
                    0: {
                        "connections_active": 2,
                        "parked_fetches": 1,
                        "reactor_loop_lag_s": 0.001,
                        "requests_served": 7,
                    },
                    2: {"connections_active": 1, "requests_served": 3},
                }

        reg = MetricsRegistry()
        sampler = TelemetrySampler(registry=reg)
        sampler.watch_cluster(FakeCluster())
        values = sampler.sample_now()
        assert values["cluster.shard0.connections_active"] == 2.0
        assert values["cluster.shard0.parked_fetches"] == 1.0
        assert values["cluster.shard0.reactor_loop_lag_s"] == 0.001
        assert values["cluster.shard2.requests_served"] == 3.0
        # The dead shard leaves a gap, not zeros, and the fleet gauges
        # record the level drop alongside it.
        assert not any(k.startswith("cluster.shard1.") for k in values)
        assert values["cluster.shards_up"] == 2.0
        assert values["cluster.shards_total"] == 3.0
        # Mirrored into the registry so /metrics covers every shard.
        text = reg.to_prometheus()
        assert "repro_cluster_shard0_connections_active 2" in text
        assert "repro_cluster_shard2_requests_served 3" in text
        assert "repro_cluster_shards_up 2" in text
        assert "repro_cluster_shards_total 3" in text

    def test_replicated_cluster_reports_isr_and_lag_gauges(self):
        class FakeReplicatedCluster:
            num_shards = 2

            def shard_metrics(self):
                return {
                    0: {"connections_active": 1},
                    1: {"connections_active": 1},
                }

            def replication_status(self):
                return {
                    "replication_factor": 2,
                    "partitions": [
                        {
                            "topic": "t", "partition": 0, "leader": 0,
                            "isr": [0, 1], "under_replicated": False,
                            "followers": [
                                {"shard": 1, "acked": 7, "lag": 0,
                                 "in_isr": True},
                            ],
                        },
                        {
                            "topic": "t", "partition": 1, "leader": 1,
                            "isr": [1], "under_replicated": True,
                            "followers": [
                                {"shard": 0, "acked": 2, "lag": 5,
                                 "in_isr": False},
                            ],
                        },
                    ],
                }

        reg = MetricsRegistry()
        sampler = TelemetrySampler(registry=reg)
        sampler.watch_cluster(FakeReplicatedCluster())
        values = sampler.sample_now()
        assert values["cluster.isr_size.t.0"] == 2.0
        assert values["cluster.isr_size.t.1"] == 1.0
        assert values["cluster.replica_lag.t.0"] == 0.0
        assert values["cluster.replica_lag.t.1"] == 5.0
        assert values["cluster.under_replicated_partitions"] == 1.0
        # Exposed on /metrics alongside the shard gauges.
        text = reg.to_prometheus()
        assert "repro_cluster_isr_size_t_0 2" in text
        assert "repro_cluster_replica_lag_t_1 5" in text
        assert "repro_cluster_under_replicated_partitions 1" in text

    def test_unreplicated_cluster_skips_replication_gauges(self):
        class FakeCluster:
            num_shards = 1

            def shard_metrics(self):
                return {0: {"connections_active": 0}}

            def replication_status(self):
                return {"replication_factor": 1, "partitions": []}

        sampler = TelemetrySampler()
        sampler.watch_cluster(FakeCluster())
        values = sampler.sample_now()
        assert not any("isr_size" in k for k in values)
        assert "cluster.under_replicated_partitions" not in values

    def test_custom_name_prefixes_series(self):
        class FakeCluster:
            num_shards = 1

            def shard_metrics(self):
                return {0: {"connections_active": 0}}

        sampler = TelemetrySampler()
        sampler.watch_cluster(FakeCluster(), name="edge-cluster")
        values = sampler.sample_now()
        assert values["edge-cluster.shard0.connections_active"] == 0.0
        assert values["edge-cluster.shards_up"] == 1.0

    def test_live_cluster_sampled_end_to_end(self):
        from repro.broker import ClusterBroker, ClusterBrokerSupervisor

        with ClusterBrokerSupervisor(
            num_shards=2, topics=[("t", 2)]
        ) as supervisor:
            with ClusterBroker(supervisor.bootstrap) as cluster:
                sampler = TelemetrySampler()
                sampler.watch_cluster(cluster)
                values = sampler.sample_now()
                assert values["cluster.shards_up"] == 2.0
                assert values["cluster.shards_total"] == 2.0
                # The sampling call itself holds a connection to each
                # shard while its metrics are read.
                for index in (0, 1):
                    assert (
                        values[f"cluster.shard{index}.connections_active"]
                        >= 1
                    )


class TestBackgroundThread:
    def test_start_stop_takes_final_sample(self):
        sampler = TelemetrySampler(interval_s=0.02)
        calls = []
        sampler.add_source("s", lambda: calls.append(1) or {"x": len(calls)})
        sampler.start()
        assert sampler.running
        time.sleep(0.1)
        sampler.stop()
        assert not sampler.running
        rounds = sampler.sample_rounds
        assert rounds >= 2  # several periodic + one final
        time.sleep(0.06)
        assert sampler.sample_rounds == rounds  # thread really stopped

    def test_double_start_rejected(self):
        sampler = TelemetrySampler(interval_s=0.05)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        sampler.stop()

    def test_context_manager(self):
        with TelemetrySampler(interval_s=0.05) as sampler:
            assert sampler.running
        assert not sampler.running

    def test_absolute_schedule_skips_missed_ticks(self):
        # A source slower than the interval must not queue up make-up
        # rounds: the absolute schedule skips the ticks it can no longer
        # make and counts them.
        sampler = TelemetrySampler(interval_s=0.02)
        sampler.add_source("slow", lambda: time.sleep(0.07) or {"x": 1})
        sampler.start()
        time.sleep(0.3)
        sampler.stop(final_sample=False)
        assert sampler.ticks_skipped >= 1
        # Rounds ~ elapsed / source_duration, nowhere near elapsed / interval.
        assert sampler.sample_rounds <= 8

    def test_fast_sources_skip_nothing(self):
        sampler = TelemetrySampler(interval_s=0.02)
        sampler.add_source("fast", lambda: {"x": 1})
        sampler.start()
        time.sleep(0.15)
        sampler.stop(final_sample=False)
        assert sampler.sample_rounds >= 3
        assert sampler.ticks_skipped == 0


class TestJsonlExport:
    def test_jsonl_roundtrip_reconstructs_series(self):
        sampler = TelemetrySampler()
        level = {"v": 0}
        sampler.add_source("s", lambda: {"a": level["v"], "b": level["v"] * 2})
        for v in (1, 2, 3):
            level["v"] = v
            sampler.sample_now()
        text = sampler.to_jsonl()
        lines = [json.loads(l) for l in text.strip().splitlines()]
        assert len(lines) == 3
        assert all(set(l) == {"t", "values"} for l in lines)
        parsed = series_from_jsonl(text)
        assert parsed == sampler.snapshot()

    def test_write_jsonl(self, tmp_path):
        sampler = TelemetrySampler()
        sampler.add_source("s", lambda: {"x": 1})
        sampler.sample_now()
        path = tmp_path / "telemetry.jsonl"
        sampler.write_jsonl(path)
        assert series_from_jsonl(path.read_text()) == sampler.snapshot()

    def test_empty_sampler_exports_empty(self):
        assert TelemetrySampler().to_jsonl() == ""


class TestExposition:
    def test_metrics_endpoint_serves_registry(self):
        reg = MetricsRegistry()
        reg.counter("records_in").inc(5)
        server = serve_exposition(reg)
        try:
            host, port = server.server_address[:2]
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ).read().decode()
            assert "repro_records_in 5" in body
            # live: a later scrape sees updated values
            reg.counter("records_in").inc(2)
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ).read().decode()
            assert "repro_records_in 7" in body
        finally:
            server.shutdown()

    def test_unknown_path_is_404(self):
        server = serve_exposition(MetricsRegistry())
        try:
            host, port = server.server_address[:2]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=5)
        finally:
            server.shutdown()
