"""Tests for report/trace exporters."""

import csv
import json

import pytest

from repro.monitoring import MetricsCollector, ThroughputReport
from repro.monitoring.export import (
    report_rows,
    reports_csv_string,
    traces_to_json,
    write_reports_csv,
    write_traces_json,
)


@pytest.fixture
def collector():
    c = MetricsCollector("run-x")
    for i in range(4):
        start = i * 0.1
        c.stamp(f"m{i}", "produce", start, nbytes=100, partition=i % 2)
        c.stamp(f"m{i}", "broker_in", start + 0.01)
        c.stamp(f"m{i}", "dequeue", start + 0.02)
        c.stamp(f"m{i}", "consume", start + 0.03)
        c.stamp(f"m{i}", "process_start", start + 0.03)
        c.stamp(f"m{i}", "process_end", start + 0.05, nbytes=100)
    return c


@pytest.fixture
def report(collector):
    return ThroughputReport.from_collector(collector)


class TestReportRows:
    def test_labelled_rows(self, report):
        rows = report_rows([report], labels=["baseline"])
        assert rows[0]["label"] == "baseline"
        assert rows[0]["messages"] == 4

    def test_default_label_is_run_id(self, report):
        rows = report_rows([report])
        assert rows[0]["label"] == "run-x"

    def test_stage_columns(self, report):
        rows = report_rows([report])
        assert any(k.startswith("stage:") for k in rows[0])

    def test_label_count_mismatch(self, report):
        with pytest.raises(ValueError):
            report_rows([report], labels=["a", "b"])


class TestCsv:
    def test_csv_string_parses(self, report):
        text = reports_csv_string([report, report], labels=["a", "b"])
        rows = list(csv.DictReader(text.splitlines()))
        assert [r["label"] for r in rows] == ["a", "b"]

    def test_write_csv_file(self, report, tmp_path):
        path = write_reports_csv(tmp_path / "out.csv", [report])
        rows = list(csv.DictReader(path.read_text().splitlines()))
        assert len(rows) == 1
        assert float(rows[0]["MB/s"]) > 0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_reports_csv(tmp_path / "out.csv", [])


class TestTraceJson:
    def test_json_shape(self, collector):
        payload = json.loads(traces_to_json(collector))
        assert len(payload["traces"]) == 4
        trace = payload["traces"][0]
        assert trace["run_id"] == "run-x"
        assert "produce" in trace["timings"]
        assert trace["end_to_end_latency_s"] == pytest.approx(0.05)

    def test_incomplete_traces_filtered(self, collector):
        collector.stamp("dangling", "produce", 99.0)
        payload = json.loads(traces_to_json(collector, complete_only=True))
        assert len(payload["traces"]) == 4
        payload_all = json.loads(traces_to_json(collector, complete_only=False))
        assert len(payload_all["traces"]) == 5

    def test_write_file(self, collector, tmp_path):
        path = write_traces_json(tmp_path / "traces.json", collector)
        assert json.loads(path.read_text())["traces"]
