"""Tests for report/trace exporters."""

import csv
import json

import pytest

from repro.monitoring import MetricsCollector, ThroughputReport
from repro.monitoring.export import (
    report_rows,
    reports_csv_string,
    traces_to_json,
    write_reports_csv,
    write_traces_json,
)


@pytest.fixture
def collector():
    c = MetricsCollector("run-x")
    for i in range(4):
        start = i * 0.1
        c.stamp(f"m{i}", "produce", start, nbytes=100, partition=i % 2)
        c.stamp(f"m{i}", "broker_in", start + 0.01)
        c.stamp(f"m{i}", "dequeue", start + 0.02)
        c.stamp(f"m{i}", "consume", start + 0.03)
        c.stamp(f"m{i}", "process_start", start + 0.03)
        c.stamp(f"m{i}", "process_end", start + 0.05, nbytes=100)
    return c


@pytest.fixture
def report(collector):
    return ThroughputReport.from_collector(collector)


class TestReportRows:
    def test_labelled_rows(self, report):
        rows = report_rows([report], labels=["baseline"])
        assert rows[0]["label"] == "baseline"
        assert rows[0]["messages"] == 4

    def test_default_label_is_run_id(self, report):
        rows = report_rows([report])
        assert rows[0]["label"] == "run-x"

    def test_stage_columns(self, report):
        rows = report_rows([report])
        assert any(k.startswith("stage:") for k in rows[0])

    def test_label_count_mismatch(self, report):
        with pytest.raises(ValueError):
            report_rows([report], labels=["a", "b"])


class TestCsv:
    def test_csv_string_parses(self, report):
        text = reports_csv_string([report, report], labels=["a", "b"])
        rows = list(csv.DictReader(text.splitlines()))
        assert [r["label"] for r in rows] == ["a", "b"]

    def test_write_csv_file(self, report, tmp_path):
        path = write_reports_csv(tmp_path / "out.csv", [report])
        rows = list(csv.DictReader(path.read_text().splitlines()))
        assert len(rows) == 1
        assert float(rows[0]["MB/s"]) > 0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_reports_csv(tmp_path / "out.csv", [])


class TestTraceJson:
    def test_json_shape(self, collector):
        payload = json.loads(traces_to_json(collector))
        assert len(payload["traces"]) == 4
        trace = payload["traces"][0]
        assert trace["run_id"] == "run-x"
        assert "produce" in trace["timings"]
        assert trace["end_to_end_latency_s"] == pytest.approx(0.05)

    def test_incomplete_traces_filtered(self, collector):
        collector.stamp("dangling", "produce", 99.0)
        payload = json.loads(traces_to_json(collector, complete_only=True))
        assert len(payload["traces"]) == 4
        payload_all = json.loads(traces_to_json(collector, complete_only=False))
        assert len(payload_all["traces"]) == 5

    def test_write_file(self, collector, tmp_path):
        path = write_traces_json(tmp_path / "traces.json", collector)
        assert json.loads(path.read_text())["traces"]


class TestTraceJsonRoundTrip:
    def test_reparsed_dump_matches_source_collector(self, collector):
        payload = json.loads(traces_to_json(collector))
        by_id = {t["message_id"]: t for t in payload["traces"]}
        for trace in collector.traces(complete_only=True):
            dumped = by_id[trace.message_id]
            assert dumped["partition"] == trace.partition
            assert dumped["end_to_end_latency_s"] == pytest.approx(
                trace.end_to_end_latency
            )
            for stage, timing in trace.timings.items():
                assert dumped["timings"][stage]["t"] == timing.timestamp
                assert dumped["timings"][stage]["nbytes"] == timing.nbytes
                assert dumped["timings"][stage]["site"] == timing.site

    def test_csv_stage_columns_match_report(self, report):
        text = reports_csv_string([report], labels=["x"])
        row = next(iter(csv.DictReader(text.splitlines())))
        for stage, seconds in report.stage_means_s.items():
            assert float(row[f"stage:{stage}_ms"]) == pytest.approx(
                seconds * 1e3, abs=1e-3
            )


class TestSpanJsonRoundTrip:
    def _tracer(self):
        from repro.monitoring import Tracer

        tracer = Tracer("svc")
        root = tracer.start_trace("produce", site="edge", start=1.0)
        child = tracer.start_span("append", parent=root, site="broker", start=1.1)
        child.set_attr("offset", 3)
        child.finish(end=1.2)
        root.finish(end=1.5)
        return tracer

    def test_spans_roundtrip(self):
        from repro.monitoring.export import spans_from_json, spans_to_json

        tracer = self._tracer()
        parsed = spans_from_json(spans_to_json(tracer))
        (trace_id,) = parsed.keys()
        assert trace_id == tracer.trace_ids()[0]
        source = {s.span_id: s for s in tracer.spans()}
        assert len(parsed[trace_id]) == len(source)
        for span in parsed[trace_id]:
            original = source[span.span_id]
            assert span.name == original.name
            assert span.site == original.site
            assert span.parent_id == original.parent_id
            assert span.start == original.start
            assert span.end == original.end
            assert span.attrs == original.attrs

    def test_dump_carries_tracer_stats(self):
        from repro.monitoring.export import spans_to_json

        payload = json.loads(spans_to_json(self._tracer()))
        assert payload["stats"]["spans_retained"] == 2

    def test_write_spans_file(self, tmp_path):
        from repro.monitoring.export import spans_from_json, write_spans_json

        tracer = self._tracer()
        path = write_spans_json(tmp_path / "spans.json", tracer)
        assert spans_from_json(path.read_text())


class TestSeriesJsonlRoundTrip:
    def test_series_roundtrip_matches_sampler(self, tmp_path):
        from repro.monitoring import TelemetrySampler
        from repro.monitoring.export import series_from_jsonl, write_series_jsonl

        sampler = TelemetrySampler()
        level = {"v": 0}
        sampler.add_source("s", lambda: {"lag": 10 - level["v"], "depth": level["v"]})
        for v in (2, 6, 10):
            level["v"] = v
            sampler.sample_now()
        path = write_series_jsonl(tmp_path / "series.jsonl", sampler)
        parsed = series_from_jsonl(path.read_text())
        assert parsed == sampler.snapshot()
        assert [p[1] for p in parsed["lag"]] == [8.0, 4.0, 0.0]
