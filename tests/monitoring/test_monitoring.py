"""Tests for traces, the collector and reports."""

import math

import pytest

from repro.monitoring import (
    MessageTrace,
    MetricsCollector,
    ThroughputReport,
    analyze_bottleneck,
    percentile,
)


class TestMessageTrace:
    def test_stamp_and_read(self):
        trace = MessageTrace("run", "m1")
        trace.stamp("produce", 10.0, nbytes=100)
        assert trace.at("produce") == 10.0
        assert trace.has("produce")
        assert not trace.has("consume")

    def test_end_to_end_latency(self):
        trace = MessageTrace("run", "m1")
        trace.stamp("produce", 10.0)
        trace.stamp("process_end", 10.5)
        assert trace.end_to_end_latency == pytest.approx(0.5)

    def test_latency_none_when_incomplete(self):
        trace = MessageTrace("run", "m1")
        trace.stamp("produce", 10.0)
        assert trace.end_to_end_latency is None
        assert not trace.complete

    def test_stage_latency(self):
        trace = MessageTrace("run", "m1")
        trace.stamp("produce", 1.0)
        trace.stamp("broker_in", 1.2)
        assert trace.stage_latency("produce", "broker_in") == pytest.approx(0.2)
        assert trace.stage_latency("produce", "consume") is None

    def test_nbytes_taken_from_first_stamped(self):
        trace = MessageTrace("run", "m1")
        trace.stamp("produce", 1.0, nbytes=128)
        trace.stamp("process_end", 2.0)
        assert trace.nbytes == 128


class TestMetricsCollector:
    def test_stamps_link_across_stages(self):
        c = MetricsCollector("run")
        c.stamp("m1", "produce", 1.0, nbytes=10)
        c.stamp("m1", "process_end", 2.0)
        trace = c.trace("m1")
        assert trace.complete
        assert trace.end_to_end_latency == 1.0

    def test_partition_recorded(self):
        c = MetricsCollector("run")
        c.stamp("m1", "produce", 1.0, partition=3)
        assert c.trace("m1").partition == 3

    def test_complete_only_filter(self):
        c = MetricsCollector("run")
        c.stamp("m1", "produce", 1.0)
        c.stamp("m2", "produce", 1.0)
        c.stamp("m2", "process_end", 2.0)
        assert len(c.traces()) == 2
        assert len(c.traces(complete_only=True)) == 1

    def test_counters(self):
        c = MetricsCollector("run")
        c.incr("dropped")
        c.incr("dropped", 2)
        assert c.counter("dropped") == 3
        assert c.counters() == {"dropped": 3}

    def test_thread_safety(self):
        import threading

        c = MetricsCollector("run")

        def stamp_many(offset):
            for i in range(500):
                c.stamp(f"m{offset}-{i}", "produce", float(i))

        threads = [threading.Thread(target=stamp_many, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(c) == 2000


class TestRecordMax:
    def test_keeps_high_watermark(self):
        c = MetricsCollector("run")
        c.record_max("fetches_in_flight", 2)
        c.record_max("fetches_in_flight", 5)
        c.record_max("fetches_in_flight", 3)
        assert c.counter("fetches_in_flight") == 5

    def test_first_negative_value_lands(self):
        # Regression: the old implementation compared against an implicit
        # 0, silently discarding a first report below zero (e.g. a clock
        # drift or balance-style gauge).
        c = MetricsCollector("run")
        c.record_max("drift", -2.5)
        assert c.counter("drift") == -2.5
        assert c.gauges() == {"drift": -2.5}
        c.record_max("drift", -4.0)
        assert c.counter("drift") == -2.5
        c.record_max("drift", -1.0)
        assert c.counter("drift") == -1.0

    def test_unreported_name_reads_zero(self):
        assert MetricsCollector("run").counter("nope") == 0.0


class TestSplitCounters:
    def test_gauges_separated_from_counters(self):
        c = MetricsCollector("run")
        c.incr("records", 3)
        c.record_max("peak_inflight", 7)
        split = c.split_counters()
        assert split == {
            "counters": {"records": 3},
            "gauges": {"peak_inflight": 7.0},
        }
        assert c.gauges() == {"peak_inflight": 7.0}

    def test_merged_view_keeps_legacy_keys(self):
        # Bench guards read both kinds from counters(); both must stay
        # visible under their old names.
        c = MetricsCollector("run")
        c.incr("records", 3)
        c.record_max("peak_inflight", 7)
        assert c.counters() == {"records": 3, "peak_inflight": 7.0}

    def test_counter_wins_name_collisions_in_merged_view(self):
        c = MetricsCollector("run")
        c.record_max("x", 99)
        c.incr("x", 1)
        assert c.counters()["x"] == 1
        assert c.counter("x") == 1
        split = c.split_counters()
        assert split["counters"]["x"] == 1
        assert split["gauges"]["x"] == 99.0


class TestRegistryForwarding:
    def _registry(self):
        from repro.monitoring import MetricsRegistry

        return MetricsRegistry()

    def test_incr_feeds_counter_instrument(self):
        reg = self._registry()
        c = MetricsCollector("run", registry=reg)
        c.incr("dropped", 2)
        c.incr("dropped")
        assert reg.counter("dropped").value == 3

    def test_negative_incr_skips_monotonic_instrument(self):
        reg = self._registry()
        c = MetricsCollector("run", registry=reg)
        c.incr("adjustment", -1)
        assert c.counter("adjustment") == -1  # collector keeps it
        assert reg.counter("adjustment").value == 0  # instrument stays monotonic

    def test_record_max_feeds_gauge_instrument(self):
        reg = self._registry()
        c = MetricsCollector("run", registry=reg)
        c.record_max("peak", 4)
        c.record_max("peak", 2)
        assert reg.gauge("peak").value == 4.0

    def test_process_end_stamps_feed_latency_histogram(self):
        reg = self._registry()
        c = MetricsCollector("run", registry=reg)
        c.stamp("m1", "produce", 1.0)
        c.stamp("m1", "process_end", 1.5)
        c.stamp_many(["m2", "m3"], "produce", 2.0)
        c.stamp_many(["m2", "m3"], "process_end", 2.25)
        hist = reg.histogram("pipeline_e2e_latency_s")
        assert hist.count == 3
        assert hist.sum == pytest.approx(1.0)

    def test_no_registry_is_default(self):
        c = MetricsCollector("run")
        c.stamp("m1", "produce", 1.0)
        c.stamp("m1", "process_end", 1.5)  # must not touch any registry
        assert c.trace("m1").complete


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))


class TestThroughputReport:
    def _collector_with_messages(self, n=10, latency=0.1, nbytes=1000, gap=0.01):
        c = MetricsCollector("run")
        for i in range(n):
            start = i * gap
            c.stamp(f"m{i}", "produce", start, nbytes=nbytes)
            c.stamp(f"m{i}", "broker_in", start + latency * 0.2)
            c.stamp(f"m{i}", "consume", start + latency * 0.5)
            c.stamp(f"m{i}", "process_start", start + latency * 0.6)
            c.stamp(f"m{i}", "process_end", start + latency)
        return c

    def test_counts_and_throughput(self):
        c = self._collector_with_messages(n=10, latency=0.1, nbytes=1000, gap=0.01)
        report = ThroughputReport.from_collector(c)
        assert report.messages == 10
        assert report.total_bytes == 10_000
        # Duration: first produce (0) to last process_end (0.09 + 0.1).
        assert report.duration_s == pytest.approx(0.19)
        assert report.throughput_msgs_s == pytest.approx(10 / 0.19, rel=1e-6)

    def test_latency_stats(self):
        c = self._collector_with_messages(latency=0.2)
        report = ThroughputReport.from_collector(c)
        assert report.latency_mean_s == pytest.approx(0.2)
        assert report.latency_p50_s == pytest.approx(0.2)

    def test_stage_means(self):
        c = self._collector_with_messages(latency=0.1)
        report = ThroughputReport.from_collector(c)
        assert report.stage_means_s["produce->broker_in"] == pytest.approx(0.02)
        assert report.stage_means_s["process_start->process_end"] == pytest.approx(0.04)

    def test_empty_collector(self):
        report = ThroughputReport.from_collector(MetricsCollector("run"))
        assert report.messages == 0
        assert math.isnan(report.latency_mean_s)

    def test_explicit_duration(self):
        c = self._collector_with_messages(n=10)
        report = ThroughputReport.from_collector(c, duration_s=2.0)
        assert report.throughput_msgs_s == 5.0

    def test_row_is_flat(self):
        c = self._collector_with_messages()
        row = ThroughputReport.from_collector(c).row()
        assert set(row) >= {"messages", "MB/s", "lat_mean_ms"}


class TestBottleneckAnalysis:
    def test_processing_bound(self):
        c = MetricsCollector("run")
        for i in range(5):
            c.stamp(f"m{i}", "produce", i * 1.0)
            c.stamp(f"m{i}", "broker_in", i * 1.0 + 0.01)
            c.stamp(f"m{i}", "dequeue", i * 1.0 + 0.015)
            c.stamp(f"m{i}", "consume", i * 1.0 + 0.02)
            c.stamp(f"m{i}", "process_start", i * 1.0 + 0.02)
            c.stamp(f"m{i}", "process_end", i * 1.0 + 1.0)
        result = analyze_bottleneck(c)
        assert result["bottleneck"] == "processing"

    def test_transfer_bound(self):
        c = MetricsCollector("run")
        for i in range(5):
            c.stamp(f"m{i}", "produce", i * 1.0)
            c.stamp(f"m{i}", "broker_in", i * 1.0 + 0.5)   # slow uplink
            c.stamp(f"m{i}", "dequeue", i * 1.0 + 0.5)
            c.stamp(f"m{i}", "consume", i * 1.0 + 0.9)     # slow downlink
            c.stamp(f"m{i}", "process_start", i * 1.0 + 0.9)
            c.stamp(f"m{i}", "process_end", i * 1.0 + 0.95)
        result = analyze_bottleneck(c)
        assert result["bottleneck"] == "transfer"
        assert result["mean_transfer_s"] == pytest.approx(0.9)

    def test_queue_wait_blamed_on_processing(self):
        # Broker backlog (broker_in -> dequeue) caused by slow consumers
        # must attribute to processing, not transfer (Fig. 2 reasoning).
        c = MetricsCollector("run")
        for i in range(5):
            c.stamp(f"m{i}", "produce", i * 1.0)
            c.stamp(f"m{i}", "broker_in", i * 1.0 + 0.01)
            c.stamp(f"m{i}", "dequeue", i * 1.0 + 2.0)     # long queue wait
            c.stamp(f"m{i}", "consume", i * 1.0 + 2.01)
            c.stamp(f"m{i}", "process_start", i * 1.0 + 2.01)
            c.stamp(f"m{i}", "process_end", i * 1.0 + 2.5)
        result = analyze_bottleneck(c)
        assert result["bottleneck"] == "processing"
        assert result["mean_broker_queue_s"] == pytest.approx(1.99)

    def test_no_traces(self):
        assert analyze_bottleneck(MetricsCollector("run"))["bottleneck"] == "unknown"


class TestStampMany:
    def test_equivalent_to_per_message_stamps(self):
        batched = MetricsCollector("run")
        looped = MetricsCollector("run")
        ids = [f"m{i}" for i in range(8)]
        sizes = [100 * (i + 1) for i in range(8)]
        batched.stamp_many(ids, "consume", 1.5, nbytes=sizes, site="cloud", partition=3)
        for mid, nb in zip(ids, sizes):
            looped.stamp(mid, "consume", 1.5, nbytes=nb, site="cloud", partition=3)
        for mid in ids:
            b = batched.trace(mid)
            l = looped.trace(mid)
            assert b.at("consume") == l.at("consume")
            assert b.timings["consume"].nbytes == l.timings["consume"].nbytes
            assert b.timings["consume"].site == l.timings["consume"].site
            assert b.partition == l.partition == 3

    def test_scalar_nbytes_broadcasts(self):
        c = MetricsCollector("run")
        c.stamp_many(["a", "b"], "dequeue", 2.0, nbytes=64)
        assert c.trace("a").timings["dequeue"].nbytes == 64
        assert c.trace("b").timings["dequeue"].nbytes == 64

    def test_misaligned_sequence_rejected(self):
        c = MetricsCollector("run")
        with pytest.raises(ValueError):
            c.stamp_many(["a", "b", "c"], "dequeue", 2.0, nbytes=[1, 2])
        with pytest.raises(ValueError):
            c.stamp_many(["a", "b"], "dequeue", 2.0, partition=[0])

    def test_empty_batch_is_noop(self):
        c = MetricsCollector("run")
        c.stamp_many([], "dequeue", 1.0)
        assert len(c) == 0

    def test_concurrent_stamp_many_hammer(self):
        import threading

        c = MetricsCollector("run")
        stages = ["dequeue", "consume", "process_start", "process_end"]
        n_threads, per_thread, batch = 4, 50, 16

        def hammer(k):
            stage = stages[k]
            for i in range(per_thread):
                ids = [f"m{i}-{j}" for j in range(batch)]
                c.stamp_many(ids, stage, float(i), nbytes=list(range(batch)))
                c.incr(f"batches_{stage}")

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All threads hammered the SAME id set on different stages: every
        # trace must exist exactly once and carry all four stamps.
        assert len(c) == per_thread * batch
        for i in range(per_thread):
            for j in range(batch):
                trace = c.trace(f"m{i}-{j}")
                assert all(trace.has(s) for s in stages)
                assert trace.timings["consume"].nbytes == j
        for stage in stages:
            assert c.counters()[f"batches_{stage}"] == per_thread
