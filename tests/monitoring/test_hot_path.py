"""Tests for the telemetry hot-path primitives added for the reactor PR:
batched span recording, batched histogram observation, lazy span attrs,
and the lock-free sampled-out counter."""

import threading

from repro.monitoring import MetricsRegistry, Tracer
from repro.monitoring.instruments import Histogram


class TestRecordHops:
    def test_records_leaf_spans_with_shared_shape(self):
        tracer = Tracer("svc")
        root = tracer.start_trace("root")
        hops = [
            (root.context, {"offset": 0}),
            (root.context, {"offset": 1}),
            (root.context, None),
        ]
        tracer.record_hops("broker.append", hops, site="b1", start=1.0, end=2.0)
        spans = tracer.spans(root.trace_id)
        leaves = [s for s in spans if s.name == "broker.append"]
        assert len(leaves) == 3
        for leaf in leaves:
            assert leaf.parent_id == root.span_id
            assert leaf.site == "b1"
            assert (leaf.start, leaf.end) == (1.0, 2.0)
        assert [s.attrs.get("offset") for s in leaves][:2] == [0, 1]
        assert leaves[2].attrs == {}

    def test_unparsable_contexts_skipped(self):
        tracer = Tracer("svc")
        tracer.record_hops(
            "hop",
            [(None, None), ("", None), ("nocolon", None), (":", None), ("a:", None)],
        )
        assert tracer.spans() == []

    def test_span_ids_unique(self):
        tracer = Tracer("svc")
        tracer.record_hops("hop", [("t:p", None)] * 50)
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == 50

    def test_retention_cap_counts_drops(self):
        tracer = Tracer("svc", max_spans=5)
        tracer.record_hops("hop", [("t:p", None)] * 8)
        assert len(tracer.spans()) == 5
        assert tracer.stats()["spans_dropped"] == 3
        tracer.record_hops("hop", [("t:p", None)] * 2)
        assert tracer.stats()["spans_dropped"] == 5

    def test_roundtrips_through_dict(self):
        tracer = Tracer("svc")
        tracer.record_hops("hop", [("t:p", {"k": "v"})], start=1.0, end=1.5)
        [span] = tracer.spans()
        data = span.to_dict()
        assert data["attrs"] == {"k": "v"}
        assert data["end"] - data["start"] == 0.5
        assert span.duration == 0.5


class TestSampledOutCounter:
    def test_sampled_out_counted_without_lock(self):
        tracer = Tracer("svc", sample_rate=0.0)
        spans = [tracer.start_trace("op") for _ in range(10)]
        assert all(not s.recording for s in spans)
        assert tracer.stats()["traces_sampled_out"] == 10

    def test_clear_resets_sampled_out(self):
        tracer = Tracer("svc", sample_rate=0.0)
        tracer.start_trace("op")
        tracer.clear()
        assert tracer.stats()["traces_sampled_out"] == 0
        tracer.start_trace("op")
        assert tracer.stats()["traces_sampled_out"] == 1

    def test_threaded_increments_all_land(self):
        tracer = Tracer("svc", sample_rate=0.0)

        def spin():
            for _ in range(200):
                tracer.start_trace("op")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.stats()["traces_sampled_out"] == 800


class TestLazySpanAttrs:
    def test_attrs_lazy_until_touched(self):
        tracer = Tracer("svc")
        span = tracer.start_trace("op")
        assert span._attrs is None  # no dict allocated on the hot path
        assert span.to_dict()["attrs"] == {}
        span.set_attr("k", 1)
        assert span.attrs == {"k": 1}


class TestObserveMany:
    def test_matches_loop_of_observes(self):
        values = [1e-6, 3e-4, 0.02, 0.02, 5.0, 0.0, -1.0]
        one = Histogram("a")
        for v in values:
            one.observe(v)
        many = Histogram("b")
        many.observe_many(values)
        s1, s2 = one.snapshot(), many.snapshot()
        for key in ("count", "sum", "buckets", "p50", "p95", "p99"):
            assert s1[key] == s2[key]

    def test_empty_batch_is_a_noop(self):
        hist = Histogram("h")
        hist.observe_many([])
        assert hist.count == 0

    def test_registry_histogram_exposes_batch(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe_many([0.1, 0.2])
        assert reg.histogram("lat").count == 2
