"""Tests for typed instruments and the metrics registry."""

import threading

import pytest

from repro.monitoring import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter("records")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("records")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_concurrent_increments(self):
        c = Counter("records")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("depth")
        assert g.value == 0.0
        assert not g.reported
        g.set(7)
        assert g.value == 7.0
        assert g.reported

    def test_set_max_keeps_high_watermark(self):
        g = Gauge("peak")
        g.set_max(3)
        g.set_max(1)
        g.set_max(5)
        assert g.value == 5.0

    def test_set_max_first_negative_value_lands(self):
        # The regression the collector bug fix guards against: a first
        # report below zero must not lose to an implicit 0 baseline.
        g = Gauge("drift")
        g.set_max(-2.5)
        assert g.value == -2.5
        g.set_max(-4.0)
        assert g.value == -2.5

    def test_inc_dec(self):
        g = Gauge("inflight")
        g.inc()
        g.inc(2)
        g.dec()
        assert g.value == 2.0


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("lat")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.006)
        assert h.mean == pytest.approx(0.002)

    def test_percentiles_bracket_the_data(self):
        h = Histogram("lat")
        values = [i / 1000.0 for i in range(1, 101)]  # 1 ms .. 100 ms
        for v in values:
            h.observe(v)
        p50 = h.percentile(50)
        p99 = h.percentile(99)
        # log-bucketed estimates are exact to one growth factor
        assert 0.025 <= p50 <= 0.1
        assert p50 < p99 <= 0.1
        assert h.percentile(0) <= h.percentile(100)

    def test_bucket_edges_consistent(self):
        h = Histogram("lat", base=1.0, growth=2.0, nbuckets=4)  # 1,2,4,8
        for v in (0.5, 1.0, 1.5, 8.0, 9.0):
            h.observe(v)
        snap = h.snapshot()
        # 0.5 and 1.0 land in the first bucket; 9.0 overflows
        assert snap["buckets"][0] == 2
        assert snap["buckets"][-1] == 1
        assert sum(snap["buckets"]) == 5

    def test_empty_percentile_is_zero(self):
        assert Histogram("lat").percentile(95) == 0.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(101)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", base=0)
        with pytest.raises(ValueError):
            Histogram("lat", growth=1.0)
        with pytest.raises(ValueError):
            Histogram("lat", nbuckets=0)

    def test_snapshot_percentile_keys(self):
        h = Histogram("lat")
        h.observe(0.01)
        snap = h.snapshot()
        assert {"count", "sum", "mean", "p50", "p95", "p99"} <= set(snap)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_collect_flattens(self):
        reg = MetricsRegistry()
        reg.counter("in").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(0.5)
        snap = reg.collect()
        assert snap["in"] == 3
        assert snap["depth"] == 2
        assert snap["lat"]["count"] == 1

    def test_empty_instrument_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("")


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("records_in").inc(3)
        reg.gauge("log.depth").set(4.5)
        text = reg.to_prometheus()
        assert "# TYPE repro_records_in counter" in text
        assert "repro_records_in 3" in text
        # dots sanitized to underscores
        assert "# TYPE repro_log_depth gauge" in text
        assert "repro_log_depth 4.5" in text

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", base=1.0, growth=2.0, nbuckets=3)  # 1,2,4
        for v in (0.5, 1.5, 3.0, 99.0):
            h.observe(v)
        text = reg.to_prometheus()
        lines = [l for l in text.splitlines() if l.startswith("repro_lat_bucket")]
        # cumulative counts: le=1 -> 1, le=2 -> 2, le=4 -> 3, +Inf -> 4
        assert 'le="1"' in lines[0] and lines[0].endswith(" 1")
        assert 'le="2"' in lines[1] and lines[1].endswith(" 2")
        assert 'le="4"' in lines[2] and lines[2].endswith(" 3")
        assert 'le="+Inf"' in lines[3] and lines[3].endswith(" 4")
        assert "repro_lat_count 4" in text

    def test_custom_namespace_and_empty_registry(self):
        reg = MetricsRegistry()
        assert reg.to_prometheus() == ""
        reg.counter("x").inc()
        assert reg.to_prometheus(namespace="edge").startswith("# TYPE edge_x")
