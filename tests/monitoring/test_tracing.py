"""Tests for span-based distributed tracing."""

import threading

import pytest

from repro.monitoring import NOOP_SPAN, Span, Tracer
from repro.monitoring.tracing import TRACE_HEADER, parse_context


class TestSpanBasics:
    def test_root_span_has_no_parent(self):
        tracer = Tracer("svc")
        span = tracer.start_trace("op")
        assert span.parent_id == ""
        assert span.trace_id and span.span_id
        assert span.trace_id != span.span_id

    def test_finish_records_into_tracer(self):
        tracer = Tracer("svc")
        span = tracer.start_trace("op", start=1.0)
        assert tracer.spans() == []  # unfinished spans are not retained
        span.finish(end=2.5)
        assert [s.name for s in tracer.spans()] == ["op"]
        assert span.duration == pytest.approx(1.5)

    def test_double_finish_keeps_first_end(self):
        tracer = Tracer("svc")
        span = tracer.start_trace("op", start=1.0)
        span.finish(end=2.0)
        span.finish(end=9.0)
        assert span.end == 2.0
        assert len(tracer.spans()) == 1

    def test_context_manager_finishes_and_tags_errors(self):
        tracer = Tracer("svc")
        with pytest.raises(RuntimeError):
            with tracer.start_trace("op") as span:
                raise RuntimeError("boom")
        assert span.attrs["error"] == "RuntimeError"
        assert span.end is not None

    def test_child_span_links_to_parent(self):
        tracer = Tracer("svc")
        root = tracer.start_trace("root")
        child = tracer.start_span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_span_roundtrips_through_dict(self):
        tracer = Tracer("svc")
        span = tracer.start_span("op", site="edge", start=3.0)
        span.set_attr("offset", 7)
        span.finish(end=4.0)
        clone = Span.from_dict(span.to_dict())
        assert clone.trace_id == span.trace_id
        assert clone.span_id == span.span_id
        assert clone.name == "op"
        assert clone.site == "edge"
        assert clone.attrs == {"offset": 7}
        assert clone.duration == pytest.approx(1.0)


class TestContextPropagation:
    def test_inject_extract_roundtrip(self):
        tracer = Tracer("svc")
        span = tracer.start_trace("op")
        headers = tracer.inject(span, {"message_id": "m1"})
        assert headers[TRACE_HEADER] == span.context
        ctx = Tracer.extract(headers)
        assert parse_context(ctx) == (span.trace_id, span.span_id)

    def test_inject_into_none_creates_dict(self):
        tracer = Tracer("svc")
        span = tracer.start_trace("op")
        headers = tracer.inject(span, None)
        assert headers == {TRACE_HEADER: span.context}

    def test_child_from_context_string(self):
        tracer = Tracer("svc")
        root = tracer.start_trace("root")
        child = tracer.start_span("remote", parent=root.context, site="broker")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.site == "broker"

    def test_garbage_context_starts_new_trace(self):
        tracer = Tracer("svc")
        span = tracer.start_span("op", parent="not-a-context")
        assert span.parent_id == ""
        assert span.recording

    def test_extract_missing_or_empty(self):
        assert Tracer.extract(None) is None
        assert Tracer.extract({}) is None
        assert Tracer.extract({TRACE_HEADER: ""}) is None

    def test_parse_context_rejects_malformed(self):
        assert parse_context("nocolon") is None
        assert parse_context(":half") is None
        assert parse_context("half:") is None
        assert parse_context(123) is None


class TestSampling:
    def test_sample_rate_zero_returns_noop(self):
        tracer = Tracer("svc", sample_rate=0.0)
        span = tracer.start_trace("op")
        assert span is NOOP_SPAN
        assert not span.recording
        assert tracer.stats()["traces_sampled_out"] == 1

    def test_noop_span_children_and_inject_are_noops(self):
        tracer = Tracer("svc", sample_rate=0.0)
        root = tracer.start_trace("op")
        child = tracer.start_span("child", parent=root)
        assert child is NOOP_SPAN
        headers = {"message_id": "m1"}
        assert tracer.inject(root, headers) is headers
        assert TRACE_HEADER not in headers
        root.finish()
        assert tracer.spans() == []

    def test_partial_sampling_is_deterministic_with_seed(self):
        a = Tracer("svc", sample_rate=0.5, seed=42)
        b = Tracer("svc", sample_rate=0.5, seed=42)
        decisions_a = [a.start_trace("op") is NOOP_SPAN for _ in range(100)]
        decisions_b = [b.start_trace("op") is NOOP_SPAN for _ in range(100)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer("svc", sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer("svc", sample_rate=-0.1)


class TestRetention:
    def test_bounded_retention_counts_drops(self):
        tracer = Tracer("svc", max_spans=5)
        for _ in range(8):
            tracer.start_trace("op").finish()
        stats = tracer.stats()
        assert stats["spans_retained"] == 5
        assert stats["spans_dropped"] == 3

    def test_clear_resets(self):
        tracer = Tracer("svc", max_spans=2)
        for _ in range(4):
            tracer.start_trace("op").finish()
        tracer.clear()
        stats = tracer.stats()
        assert stats == {
            "spans_retained": 0,
            "spans_dropped": 0,
            "traces_sampled_out": 0,
        }

    def test_concurrent_recording(self):
        tracer = Tracer("svc")

        def record():
            for _ in range(200):
                tracer.start_trace("op").finish()

        threads = [threading.Thread(target=record) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.stats()["spans_retained"] == 800
        # ids must be unique even under contention
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == len(ids)


class TestSpanTree:
    def test_tree_reconstructs_hierarchy(self):
        tracer = Tracer("svc")
        root = tracer.start_trace("produce", site="edge")
        broker = tracer.start_span("append", parent=root, site="broker")
        consume = tracer.start_span("poll", parent=root, site="cloud")
        leaf = tracer.start_span("process", parent=consume, site="cloud")
        for s in (leaf, consume, broker, root):
            s.finish()
        tree = tracer.span_tree(root.trace_id)
        assert tree["span"].name == "produce"
        names = sorted(ch["span"].name for ch in tree["children"])
        assert names == ["append", "poll"]
        poll_node = next(
            ch for ch in tree["children"] if ch["span"].name == "poll"
        )
        assert [n["span"].name for n in poll_node["children"]] == ["process"]

    def test_orphans_attach_under_root(self):
        tracer = Tracer("svc")
        root = tracer.start_trace("root")
        # child of a span that was never retained (e.g. lost to retention)
        orphan = tracer.start_span(
            "orphan", parent=f"{root.trace_id}:missing-parent"
        )
        orphan.finish()
        root.finish()
        tree = tracer.span_tree(root.trace_id)
        assert [ch["span"].name for ch in tree["children"]] == ["orphan"]

    def test_missing_trace_or_root_is_none(self):
        tracer = Tracer("svc")
        assert tracer.span_tree("nope") is None
        root = tracer.start_trace("root")
        child = tracer.start_span("child", parent=root)
        child.finish()  # root never finished/retained
        assert tracer.span_tree(root.trace_id) is None

    def test_trace_ids_in_first_seen_order(self):
        tracer = Tracer("svc")
        first = tracer.start_trace("a")
        second = tracer.start_trace("b")
        first.finish()
        second.finish()
        assert tracer.trace_ids() == [first.trace_id, second.trace_id]
