"""Tests for the terminal visualisations."""

import pytest

from repro.monitoring import MetricsCollector, ThroughputReport
from repro.monitoring.ascii import (
    bar,
    render_run,
    render_stage_breakdown,
    render_throughput_timeline,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_min_and_max_mapped_to_extremes(self):
        line = sparkline([0, 10])
        assert line[0] == " "
        assert line[-1] == "█"

    def test_long_series_compressed(self):
        line = sparkline(range(1000), width=50)
        assert len(line) <= 50

    def test_monotone_series_is_nondecreasing(self):
        blocks = " ▁▂▃▄▅▆▇█"
        line = sparkline(range(20), width=20)
        levels = [blocks.index(c) for c in line]
        assert levels == sorted(levels)


class TestBar:
    def test_full_bar(self):
        assert bar(10, 10, width=4) == "████"

    def test_half_bar(self):
        assert bar(5, 10, width=4) == "██··"

    def test_overflow_clamped(self):
        assert bar(100, 10, width=4) == "████"

    def test_zero_max(self):
        assert bar(1, 0) == ""


@pytest.fixture
def collector():
    c = MetricsCollector("run")
    for i in range(20):
        start = i * 0.05
        c.stamp(f"m{i}", "produce", start, nbytes=1000)
        c.stamp(f"m{i}", "broker_in", start + 0.01)
        c.stamp(f"m{i}", "dequeue", start + 0.015)
        c.stamp(f"m{i}", "consume", start + 0.02)
        c.stamp(f"m{i}", "process_start", start + 0.02)
        c.stamp(f"m{i}", "process_end", start + 0.06)
    return c


class TestRenderers:
    def test_stage_breakdown_lines(self, collector):
        report = ThroughputReport.from_collector(collector)
        text = render_stage_breakdown(report)
        assert "produce->broker_in" in text
        assert "ms" in text

    def test_stage_breakdown_empty(self):
        report = ThroughputReport.from_collector(MetricsCollector("x"))
        assert "no stage data" in render_stage_breakdown(report)

    def test_timeline_nonempty(self, collector):
        line = render_throughput_timeline(collector)
        assert len(line) > 0

    def test_timeline_empty_collector(self):
        assert "no complete traces" in render_throughput_timeline(MetricsCollector("x"))

    def test_render_run_panel(self, collector):
        panel = render_run(collector, title="demo")
        assert "== demo ==" in panel
        assert "msgs/s" in panel
        assert "completions over time" in panel
