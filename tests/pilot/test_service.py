"""Tests for the pilot service and PilotCompute lifecycle."""

import time

import pytest

from repro.compute import Client, ResourceSpec
from repro.pilot import (
    PilotComputeService,
    PilotDescription,
    PilotState,
)


class TestSubmission:
    def test_pilot_reaches_running(self, pilot_service):
        pilot = pilot_service.submit_pilot(PilotDescription())
        assert pilot.wait(PilotState.RUNNING, timeout=10)
        assert pilot.state is PilotState.RUNNING

    def test_cluster_usable_once_running(self, pilot_service):
        pilot = pilot_service.submit_pilot(PilotDescription(nodes=2))
        pilot.wait(timeout=10)
        client = Client(pilot.cluster)
        assert client.submit(lambda: 21 * 2).result(timeout=5) == 42

    def test_cluster_before_running_raises(self, pilot_service):
        pilot = pilot_service.submit_pilot(
            PilotDescription(resource="cloud", instance_type="lrz.medium")
        )
        pilot.wait(timeout=10)
        pilot.cancel()
        with pytest.raises(RuntimeError):
            pilot.cluster

    def test_failed_acquisition_reported(self, pilot_service):
        pilot = pilot_service.submit_pilot(
            PilotDescription(resource="ssh", nodes=1000)
        )
        pilot.wait(timeout=10)
        assert pilot.state is PilotState.FAILED
        assert "edge devices" in pilot.error

    def test_state_history_records_path(self, pilot_service):
        pilot = pilot_service.submit_pilot(PilotDescription())
        pilot.wait(timeout=10)
        states = [s for s, _ in pilot.state_history]
        assert states == [PilotState.PENDING, PilotState.RUNNING]

    def test_state_change_callbacks(self, pilot_service):
        seen = []
        pilot = pilot_service.submit_pilot(PilotDescription())
        pilot.on_state_change(lambda p, s: seen.append(s))
        pilot.wait(timeout=10)
        pilot.cancel()
        assert PilotState.CANCELED in seen

    def test_emulated_delay_scaled(self):
        service = PilotComputeService(time_scale=0.01)
        try:
            t0 = time.monotonic()
            pilot = service.submit_pilot(
                PilotDescription(resource="cloud", instance_type="lrz.medium")
            )
            assert pilot.wait(timeout=10)
            elapsed = time.monotonic() - t0
            # 25 s boot delay at 1% scale ~ 0.25 s.
            assert 0.1 < elapsed < 5.0
        finally:
            service.close()


class TestCancellation:
    def test_cancel_running_pilot(self, pilot_service):
        pilot = pilot_service.submit_pilot(PilotDescription())
        pilot.wait(timeout=10)
        pilot.cancel()
        assert pilot.state is PilotState.CANCELED

    def test_cancel_is_idempotent(self, pilot_service):
        pilot = pilot_service.submit_pilot(PilotDescription())
        pilot.wait(timeout=10)
        pilot.cancel()
        pilot.cancel()

    def test_cancel_releases_backend_capacity(self, pilot_service):
        d = PilotDescription(resource="ssh", nodes=2, node_spec=ResourceSpec(cores=1, memory_gb=4))
        pilot = pilot_service.submit_pilot(d)
        pilot.wait(timeout=10)
        plugin = pilot_service.plugin("ssh")
        held = plugin.stats()["devices_held"]
        assert held == 2
        pilot.cancel()
        deadline = time.monotonic() + 5
        while plugin.stats()["devices_held"] > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert plugin.stats()["devices_held"] == 0


class TestService:
    def test_list_pilots_by_state(self, pilot_service):
        p1 = pilot_service.submit_pilot(PilotDescription())
        p2 = pilot_service.submit_pilot(PilotDescription(resource="ssh", nodes=1000))
        pilot_service.wait_all(timeout=10)
        running = pilot_service.list_pilots(PilotState.RUNNING)
        failed = pilot_service.list_pilots(PilotState.FAILED)
        assert p1 in running
        assert p2 in failed

    def test_wait_all_false_on_failure(self, pilot_service):
        pilot_service.submit_pilot(PilotDescription(resource="ssh", nodes=1000))
        assert not pilot_service.wait_all(timeout=10)

    def test_stop_pilot(self, pilot_service):
        pilot = pilot_service.submit_pilot(PilotDescription())
        pilot.wait(timeout=10)
        pilot_service.stop_pilot(pilot.pilot_id)
        assert pilot.state is PilotState.DONE

    def test_unknown_pilot_lookup(self, pilot_service):
        with pytest.raises(KeyError):
            pilot_service.pilot("ghost")

    def test_close_cancels_everything(self):
        service = PilotComputeService(time_scale=0.0)
        pilot = service.submit_pilot(PilotDescription())
        pilot.wait(timeout=10)
        service.close()
        assert pilot.state is PilotState.CANCELED

    def test_closed_service_rejects_submission(self):
        service = PilotComputeService()
        service.close()
        with pytest.raises(RuntimeError):
            service.submit_pilot(PilotDescription())

    def test_stats(self, pilot_service):
        pilot_service.submit_pilot(PilotDescription())
        pilot_service.wait_all(timeout=10)
        stats = pilot_service.stats()
        assert stats["pilots"] == 1
        assert stats["by_state"].get("running") == 1

    def test_custom_plugin_registration(self, pilot_service):
        from repro.pilot.plugins.ssh_edge import SshEdgePlugin

        custom = SshEdgePlugin(devices=1)
        pilot_service.register_plugin("ssh", custom)
        assert pilot_service.plugin("ssh") is custom
