"""Tests for pilot states and descriptions."""

import pytest

from repro.compute import ResourceSpec
from repro.pilot import InvalidTransition, PilotDescription, PilotState
from repro.pilot.states import check_transition
from repro.util.validation import ValidationError


class TestPilotState:
    def test_final_states(self):
        assert PilotState.DONE.is_final
        assert PilotState.FAILED.is_final
        assert PilotState.CANCELED.is_final
        assert not PilotState.RUNNING.is_final
        assert not PilotState.NEW.is_final

    @pytest.mark.parametrize("src,dst", [
        (PilotState.NEW, PilotState.PENDING),
        (PilotState.PENDING, PilotState.RUNNING),
        (PilotState.RUNNING, PilotState.DONE),
        (PilotState.NEW, PilotState.CANCELED),
        (PilotState.PENDING, PilotState.FAILED),
        (PilotState.RUNNING, PilotState.FAILED),
    ])
    def test_legal_transitions(self, src, dst):
        check_transition(src, dst)

    @pytest.mark.parametrize("src,dst", [
        (PilotState.NEW, PilotState.RUNNING),       # must pass PENDING
        (PilotState.RUNNING, PilotState.PENDING),    # no going back
        (PilotState.DONE, PilotState.RUNNING),       # final is final
        (PilotState.FAILED, PilotState.PENDING),
        (PilotState.CANCELED, PilotState.RUNNING),
    ])
    def test_illegal_transitions(self, src, dst):
        with pytest.raises(InvalidTransition):
            check_transition(src, dst)


class TestPilotDescription:
    def test_defaults(self):
        d = PilotDescription()
        assert d.resource == "localhost"
        assert d.nodes == 1

    def test_totals(self):
        d = PilotDescription(nodes=3, node_spec=ResourceSpec(cores=4, memory_gb=8))
        assert d.total_cores == 12
        assert d.total_memory_gb == 24

    def test_invalid_nodes(self):
        with pytest.raises(ValidationError):
            PilotDescription(nodes=0)

    def test_invalid_walltime(self):
        with pytest.raises(ValidationError):
            PilotDescription(walltime_minutes=0)

    def test_empty_resource_rejected(self):
        with pytest.raises(ValidationError):
            PilotDescription(resource="")

    def test_empty_site_rejected(self):
        with pytest.raises(ValidationError):
            PilotDescription(site="")

    def test_frozen(self):
        d = PilotDescription()
        with pytest.raises(AttributeError):
            d.nodes = 5
