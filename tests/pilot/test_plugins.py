"""Tests for the emulated resource backends."""

import pytest

from repro.compute import ResourceSpec
from repro.pilot import PilotDescription, ProvisionError
from repro.pilot.plugins.cloud_vm import DEFAULT_CATALOG, CloudVmPlugin
from repro.pilot.plugins.hpc_batch import HpcBatchPlugin
from repro.pilot.plugins.localhost import LocalhostPlugin
from repro.pilot.plugins.serverless import ServerlessPlugin
from repro.pilot.plugins.ssh_edge import RASPBERRY_PI, SshEdgePlugin
from repro.pilot.registry import available_resource_plugins, get_resource_plugin
from repro.util.validation import ValidationError


class TestRegistry:
    def test_builtins_present(self):
        assert set(available_resource_plugins()) >= {
            "localhost", "ssh", "cloud", "hpc", "serverless",
        }

    def test_lookup(self):
        assert get_resource_plugin("localhost") is LocalhostPlugin

    def test_unknown(self):
        with pytest.raises(ValidationError):
            get_resource_plugin("quantum")


class TestLocalhost:
    def test_zero_delay(self):
        plugin = LocalhostPlugin()
        assert plugin.acquisition_delay(PilotDescription()) == 0.0

    def test_builds_cluster(self):
        plugin = LocalhostPlugin()
        d = PilotDescription(nodes=2)
        cluster = plugin.build_cluster(d, "p1")
        try:
            assert cluster.n_workers == 2
        finally:
            cluster.close()


class TestSshEdge:
    def test_device_class_is_raspberry_pi(self):
        assert (RASPBERRY_PI.cores, RASPBERRY_PI.memory_gb) == (1, 4)

    def test_delay_scales_with_devices(self):
        plugin = SshEdgePlugin(devices=4, connect_delay=2.0)
        d = PilotDescription(resource="ssh", nodes=3, node_spec=RASPBERRY_PI)
        assert plugin.acquisition_delay(d) == 6.0

    def test_oversubscription_rejected(self):
        plugin = SshEdgePlugin(devices=2)
        with pytest.raises(ProvisionError, match="only 2 available"):
            plugin.acquisition_delay(PilotDescription(resource="ssh", nodes=3, node_spec=RASPBERRY_PI))

    def test_oversized_node_spec_rejected(self):
        plugin = SshEdgePlugin(devices=2)
        big = PilotDescription(resource="ssh", node_spec=ResourceSpec(cores=8, memory_gb=64))
        with pytest.raises(ProvisionError, match="edge devices offer"):
            plugin.acquisition_delay(big)

    def test_devices_claimed_and_released(self):
        plugin = SshEdgePlugin(devices=3)
        d = PilotDescription(resource="ssh", nodes=2, node_spec=RASPBERRY_PI)
        cluster = plugin.build_cluster(d, "p1")
        try:
            assert plugin.stats()["devices_free"] == 1
        finally:
            cluster.close()
        plugin.release(d, "p1")
        assert plugin.stats()["devices_free"] == 3


class TestCloudVm:
    def test_catalog_matches_paper(self):
        assert DEFAULT_CATALOG["lrz.medium"] == ResourceSpec(cores=4, memory_gb=18)
        assert DEFAULT_CATALOG["lrz.large"] == ResourceSpec(cores=10, memory_gb=44)
        assert DEFAULT_CATALOG["jetstream.medium"] == ResourceSpec(cores=6, memory_gb=16)

    def test_instance_type_resolution(self):
        plugin = CloudVmPlugin(boot_delay=0.0)
        d = PilotDescription(resource="cloud", instance_type="lrz.large")
        cluster = plugin.build_cluster(d, "p1")
        try:
            assert cluster.worker_resources.cores == 10
        finally:
            cluster.close()
        plugin.release(d, "p1")

    def test_unknown_instance_type(self):
        plugin = CloudVmPlugin()
        with pytest.raises(ProvisionError, match="unknown instance type"):
            plugin.acquisition_delay(
                PilotDescription(resource="cloud", instance_type="m5.24xlarge")
            )

    def test_quota_enforced(self):
        plugin = CloudVmPlugin(core_quota=8)
        d = PilotDescription(resource="cloud", instance_type="lrz.large")  # 10 cores
        with pytest.raises(ProvisionError, match="quota"):
            plugin.acquisition_delay(d)

    def test_quota_released(self):
        plugin = CloudVmPlugin(core_quota=10, boot_delay=0.0)
        d = PilotDescription(resource="cloud", instance_type="lrz.large")
        cluster = plugin.build_cluster(d, "p1")
        cluster.close()
        plugin.release(d, "p1")
        assert plugin.stats()["cores_in_use"] == 0
        # Quota is free again.
        plugin.acquisition_delay(d)

    def test_boot_delay_constant(self):
        plugin = CloudVmPlugin(boot_delay=30.0)
        d = PilotDescription(resource="cloud", nodes=5, instance_type="lrz.medium")
        assert plugin.acquisition_delay(d) == 30.0  # parallel boots


class TestHpcBatch:
    def test_empty_queue_only_launch_delay(self):
        plugin = HpcBatchPlugin(total_nodes=8, launch_delay=5.0)
        d = PilotDescription(resource="hpc", nodes=4)
        assert plugin.acquisition_delay(d) == 5.0

    def test_wait_when_partition_busy(self):
        plugin = HpcBatchPlugin(total_nodes=8, launch_delay=0.0, occupancy_factor=0.1)
        first = PilotDescription(resource="hpc", nodes=6, walltime_minutes=60)
        plugin.build_cluster(first, "p1").close()
        second = PilotDescription(resource="hpc", nodes=4)
        # 6 nodes held; need 2 more -> wait for p1: 60 min * 0.1 = 360 s.
        assert plugin.acquisition_delay(second) == 360.0

    def test_oversized_request(self):
        plugin = HpcBatchPlugin(total_nodes=8)
        with pytest.raises(ProvisionError, match="partition"):
            plugin.acquisition_delay(PilotDescription(resource="hpc", nodes=9))

    def test_walltime_limit(self):
        plugin = HpcBatchPlugin(max_walltime_minutes=60)
        with pytest.raises(ProvisionError, match="walltime"):
            plugin.acquisition_delay(
                PilotDescription(resource="hpc", walltime_minutes=120)
            )

    def test_release_frees_nodes(self):
        plugin = HpcBatchPlugin(total_nodes=4, launch_delay=0.0)
        d = PilotDescription(resource="hpc", nodes=4)
        plugin.build_cluster(d, "p1").close()
        plugin.release(d, "p1")
        assert plugin.stats()["nodes_in_use"] == 0


class TestServerless:
    def test_cold_start_delay(self):
        plugin = ServerlessPlugin(cold_start_delay=0.8)
        d = PilotDescription(resource="serverless", nodes=10, node_spec=ResourceSpec(cores=1, memory_gb=2))
        assert plugin.acquisition_delay(d) == 0.8

    def test_concurrency_limit(self):
        plugin = ServerlessPlugin(max_concurrency=5)
        d = PilotDescription(resource="serverless", nodes=10, node_spec=ResourceSpec(cores=1, memory_gb=2))
        with pytest.raises(ProvisionError, match="concurrency"):
            plugin.acquisition_delay(d)

    def test_slot_spec_enforced(self):
        plugin = ServerlessPlugin()
        big = PilotDescription(resource="serverless", node_spec=ResourceSpec(cores=4, memory_gb=16))
        with pytest.raises(ProvisionError, match="slots offer"):
            plugin.acquisition_delay(big)

    def test_release_restores_concurrency(self):
        plugin = ServerlessPlugin(max_concurrency=10)
        d = PilotDescription(resource="serverless", nodes=10, node_spec=ResourceSpec(cores=1, memory_gb=2))
        plugin.build_cluster(d, "p1").close()
        plugin.release(d, "p1")
        assert plugin.stats()["reserved"] == 0
