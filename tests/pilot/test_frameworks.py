"""Tests for pilot-managed frameworks."""

import pytest

from repro.broker import Broker, MqttStyleBroker
from repro.pilot import PilotDescription
from repro.pilot.frameworks import ManagedBroker, ManagedParameterServer
from repro.util.validation import ValidationError


@pytest.fixture
def running_pilot(pilot_service):
    pilot = pilot_service.submit_pilot(PilotDescription())
    assert pilot.wait(timeout=10)
    return pilot


class TestManagedBroker:
    def test_deploys_on_running_pilot(self, running_pilot):
        managed = ManagedBroker(running_pilot)
        assert managed.running
        assert isinstance(managed.service, Broker)
        assert managed.site == running_pilot.site

    def test_broker_named_after_pilot(self, running_pilot):
        managed = ManagedBroker(running_pilot)
        assert running_pilot.pilot_id in managed.service.name

    def test_mqtt_plugin(self, running_pilot):
        managed = ManagedBroker(running_pilot, plugin="mqtt")
        assert isinstance(managed._broker, MqttStyleBroker)

    def test_rejects_non_running_pilot(self, pilot_service):
        pilot = pilot_service.submit_pilot(PilotDescription())
        pilot.wait(timeout=10)
        pilot.cancel()
        with pytest.raises(ValidationError, match="state"):
            ManagedBroker(pilot)

    def test_rejects_non_pilot(self):
        with pytest.raises(ValidationError):
            ManagedBroker("not-a-pilot")

    def test_stops_with_pilot(self, running_pilot):
        managed = ManagedBroker(running_pilot)
        managed.service.create_topic("t", 1)
        running_pilot.cancel()
        assert not managed.running
        with pytest.raises(RuntimeError):
            managed.service

    def test_manual_stop(self, running_pilot):
        managed = ManagedBroker(running_pilot)
        managed.stop()
        with pytest.raises(RuntimeError):
            managed.service

    def test_stats(self, running_pilot):
        managed = ManagedBroker(running_pilot)
        stats = managed.stats()
        assert stats["framework"] == "broker"
        assert stats["running"] is True


class TestManagedParameterServer:
    def test_deploy_and_use(self, running_pilot):
        managed = ManagedParameterServer(running_pilot)
        managed.service.set("k", 1)
        assert managed.service.get("k").value == 1

    def test_stops_with_pilot(self, running_pilot):
        managed = ManagedParameterServer(running_pilot)
        running_pilot.cancel()
        with pytest.raises(RuntimeError):
            managed.service

    def test_stats(self, running_pilot):
        managed = ManagedParameterServer(running_pilot)
        managed.service.set("k", 1)
        assert managed.stats()["keys"] == 1
