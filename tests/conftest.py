"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One registered profile for the whole suite: generous deadlines so
# property tests that touch threads or numpy warm-up never flake.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.broker import Broker
from repro.compute import ComputeCluster, ResourceSpec
from repro.data import DataBlockGenerator, GeneratorConfig
from repro.params import ParameterServer
from repro.pilot import PilotComputeService


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_block(rng):
    """A 100x8 data block."""
    return rng.normal(size=(100, 8))


@pytest.fixture
def labeled_block():
    """A realistic (block, labels) pair with 5% outliers."""
    gen = DataBlockGenerator(
        GeneratorConfig(points=500, features=16, outlier_fraction=0.05, seed=9)
    )
    return gen.next_block(with_labels=True)


@pytest.fixture
def broker():
    return Broker(name="test-broker")


@pytest.fixture
def param_server():
    return ParameterServer(name="test-params")


@pytest.fixture
def small_cluster():
    cluster = ComputeCluster(
        n_workers=2, worker_resources=ResourceSpec(cores=2, memory_gb=4), name="test-cluster"
    )
    yield cluster
    cluster.close()


@pytest.fixture
def pilot_service():
    service = PilotComputeService(time_scale=0.0)
    yield service
    service.close()


@pytest.fixture
def running_pilots(pilot_service):
    """A (edge, cloud) pilot pair, both RUNNING."""
    from repro.pilot import PilotDescription

    edge = pilot_service.submit_pilot(
        PilotDescription(
            resource="ssh", site="edge-site", nodes=2, node_spec=ResourceSpec(cores=1, memory_gb=4)
        )
    )
    cloud = pilot_service.submit_pilot(
        PilotDescription(resource="cloud", site="cloud-site", instance_type="lrz.large")
    )
    assert pilot_service.wait_all(timeout=10)
    return edge, cloud
