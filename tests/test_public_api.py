"""Public-API consistency checks."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.broker",
    "repro.compute",
    "repro.core",
    "repro.data",
    "repro.ml",
    "repro.ml.nn",
    "repro.ml.federated",
    "repro.monitoring",
    "repro.netem",
    "repro.params",
    "repro.pilot",
    "repro.pilotdata",
    "repro.planner",
    "repro.sim",
    "repro.util",
    "repro.cli",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_quickstart_symbols_present(self):
        # The README quickstart must keep working.
        for name in (
            "PilotComputeService",
            "PilotDescription",
            "EdgeToCloudPipeline",
            "PipelineConfig",
            "ResourceSpec",
            "make_block_producer",
            "passthrough_processor",
        ):
            assert hasattr(repro, name)


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_declared_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_has_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


class TestDocumentationCoverage:
    def test_public_classes_have_docstrings(self):
        import inspect

        missing = []
        for module_name in SUBPACKAGES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module_name}.{name}")
        assert not missing, f"undocumented public symbols: {missing}"
