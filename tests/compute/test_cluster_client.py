"""Tests for the cluster facade and client API."""

import threading

import pytest

from repro.compute import Client, ComputeCluster, ResourceSpec, Task, TaskGraph
from repro.util.validation import ValidationError


class TestComputeCluster:
    def test_starts_requested_workers(self, small_cluster):
        assert small_cluster.n_workers == 2

    def test_scale_up(self, small_cluster):
        small_cluster.scale(4)
        assert small_cluster.n_workers == 4

    def test_scale_down(self, small_cluster):
        small_cluster.scale(1)
        assert small_cluster.n_workers == 1

    def test_scale_to_zero(self, small_cluster):
        small_cluster.scale(0)
        assert small_cluster.n_workers == 0

    def test_kill_worker_named(self, small_cluster):
        victim = small_cluster.scheduler.workers[0].worker_id
        assert small_cluster.kill_worker(victim) == victim
        assert small_cluster.n_workers == 1

    def test_kill_unknown_worker(self, small_cluster):
        with pytest.raises(ValueError):
            small_cluster.kill_worker("ghost")

    def test_closed_cluster_rejects_submission(self):
        cluster = ComputeCluster(n_workers=1)
        cluster.close()
        with pytest.raises(RuntimeError):
            cluster.submit_task(Task(fn=lambda: None))

    def test_close_is_idempotent(self):
        cluster = ComputeCluster(n_workers=1)
        cluster.close()
        cluster.close()

    def test_context_manager(self):
        with ComputeCluster(n_workers=1) as cluster:
            assert cluster.n_workers == 1
        assert cluster._closed

    def test_stats_shape(self, small_cluster):
        stats = small_cluster.stats()
        assert len(stats["workers"]) == 2
        assert "scheduler" in stats


class TestClient:
    @pytest.fixture
    def client(self, small_cluster):
        return Client(small_cluster)

    def test_submit(self, client):
        assert client.submit(lambda x: x + 1, 41).result(timeout=5) == 42

    def test_submit_with_kwargs(self, client):
        assert client.submit(lambda a, b=1: a * b, 6, b=7).result(timeout=5) == 42

    def test_map_preserves_order(self, client):
        futures = client.map(lambda x: x * 2, range(20))
        assert Client.gather(futures, timeout=10) == [x * 2 for x in range(20)]

    def test_gather_raises_first_error(self, client):
        futures = [client.submit(lambda: 1), client.submit(lambda: 1 / 0)]
        from repro.compute import TaskError

        with pytest.raises(TaskError):
            Client.gather(futures, timeout=5)

    def test_submit_graph(self, client):
        g = TaskGraph()
        a = g.add_task(Task(fn=lambda: 10))
        b = g.add_task(Task(fn=lambda: 20), depends_on=[a])
        futures = client.submit_graph(g)
        assert futures[b].result(timeout=5) == 20

    def test_resources_respected(self, client, small_cluster):
        # A task requiring both cores of one worker still runs.
        f = client.submit(lambda: "big", resources=ResourceSpec(cores=2, memory_gb=2))
        assert f.result(timeout=5) == "big"

    def test_max_retries_forwarded(self, client):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError()
            return "ok"

        assert client.submit(flaky, max_retries=2).result(timeout=5) == "ok"

    def test_work_distributes_across_workers(self, small_cluster):
        client = Client(small_cluster)
        barrier = threading.Barrier(2, timeout=5)
        futures = [
            client.submit(barrier.wait, resources=ResourceSpec(cores=2, memory_gb=1))
            for _ in range(2)
        ]
        # Each task needs 2 cores = one whole worker; both workers must
        # run simultaneously for the barrier to release.
        Client.gather(futures, timeout=5)


class TestAutoRestart:
    def test_killed_worker_replaced(self):
        with ComputeCluster(n_workers=2, auto_restart=True) as cluster:
            before = {w.worker_id for w in cluster.scheduler.workers}
            cluster.kill_worker()
            after = {w.worker_id for w in cluster.scheduler.workers}
            assert cluster.n_workers == 2
            assert cluster.workers_restarted == 1
            assert after != before  # a fresh worker joined

    def test_replacement_serves_tasks(self):
        with ComputeCluster(n_workers=1, auto_restart=True) as cluster:
            client = Client(cluster)
            cluster.kill_worker()
            assert client.submit(lambda: "revived").result(timeout=5) == "revived"

    def test_graceful_scale_down_not_restarted(self):
        with ComputeCluster(n_workers=3, auto_restart=True) as cluster:
            cluster.scale(1)
            assert cluster.n_workers == 1
            assert cluster.workers_restarted == 0

    def test_disabled_by_default(self):
        with ComputeCluster(n_workers=2) as cluster:
            cluster.kill_worker()
            assert cluster.n_workers == 1
            assert cluster.workers_restarted == 0

    def test_survives_repeated_failures(self):
        with ComputeCluster(n_workers=2, auto_restart=True) as cluster:
            client = Client(cluster)
            for _ in range(5):
                cluster.kill_worker()
            assert cluster.n_workers == 2
            assert cluster.workers_restarted == 5
            futures = client.map(lambda x: x + 1, range(10))
            assert Client.gather(futures, timeout=10) == list(range(1, 11))
