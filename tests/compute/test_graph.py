"""Tests for the task graph."""

import pytest

from repro.compute import GraphError, Task, TaskGraph


def make_task():
    return Task(fn=lambda: None)


class TestTaskGraph:
    def test_add_and_contains(self):
        g = TaskGraph()
        tid = g.add_task(make_task())
        assert tid in g
        assert len(g) == 1

    def test_duplicate_id_rejected(self):
        g = TaskGraph()
        task = make_task()
        g.add_task(task)
        with pytest.raises(GraphError, match="duplicate"):
            g.add_task(task)

    def test_unknown_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(GraphError, match="unknown dependency"):
            g.add_task(make_task(), depends_on=["ghost"])

    def test_roots(self):
        g = TaskGraph()
        a = g.add_task(make_task())
        b = g.add_task(make_task(), depends_on=[a])
        assert g.roots() == [a]

    def test_dependencies_and_dependents(self):
        g = TaskGraph()
        a = g.add_task(make_task())
        b = g.add_task(make_task(), depends_on=[a])
        assert g.dependencies(b) == {a}
        assert g.dependents(a) == {b}

    def test_topological_order(self):
        g = TaskGraph()
        a = g.add_task(make_task())
        b = g.add_task(make_task(), depends_on=[a])
        c = g.add_task(make_task(), depends_on=[a])
        d = g.add_task(make_task(), depends_on=[b, c])
        order = g.topological_order()
        assert order.index(a) < order.index(b) < order.index(d)
        assert order.index(a) < order.index(c) < order.index(d)

    def test_diamond_has_all_nodes_once(self):
        g = TaskGraph()
        ids = [g.add_task(make_task()) for _ in range(3)]
        g.add_task(make_task(), depends_on=ids)
        order = g.topological_order()
        assert len(order) == 4
        assert len(set(order)) == 4

    def test_unknown_task_lookup(self):
        with pytest.raises(GraphError):
            TaskGraph().task("ghost")

    def test_validate_passes_for_dag(self):
        g = TaskGraph()
        a = g.add_task(make_task())
        g.add_task(make_task(), depends_on=[a])
        g.validate()  # no exception

    def test_cycle_detected(self):
        # Cycles cannot be constructed via the public API (dependencies
        # must pre-exist), so inject one directly to test Kahn's check.
        g = TaskGraph()
        a = g.add_task(make_task())
        b = g.add_task(make_task(), depends_on=[a])
        g._deps[a].add(b)
        g._dependents[b].add(a)
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()
