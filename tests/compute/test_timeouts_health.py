"""Tests for soft task timeouts and worker health checks."""

import threading
import time

import pytest

from repro.compute import (
    ResourceSpec,
    Scheduler,
    Task,
    TaskError,
    Worker,
)


@pytest.fixture
def sched():
    s = Scheduler()
    s.add_worker(Worker(capacity=ResourceSpec(cores=2, memory_gb=2)))
    yield s
    s.stop_watchdog()
    for w in s.workers:
        s.remove_worker(w.worker_id)


class TestSoftTimeouts:
    def test_timeout_rejects_future(self, sched):
        release = threading.Event()
        f = sched.submit(Task(fn=lambda: release.wait(5), timeout=0.05))
        with pytest.raises(TaskError) as exc_info:
            f.result(timeout=5)
        assert isinstance(exc_info.value.cause, TimeoutError)
        release.set()
        assert sched.tasks_timed_out == 1

    def test_fast_task_unaffected(self, sched):
        f = sched.submit(Task(fn=lambda: "quick", timeout=5.0))
        assert f.result(timeout=5) == "quick"
        assert sched.tasks_timed_out == 0

    def test_late_result_discarded(self, sched):
        release = threading.Event()

        def slow():
            release.wait(5)
            return "late"

        f = sched.submit(Task(fn=slow, timeout=0.05))
        with pytest.raises(TaskError):
            f.result(timeout=5)
        release.set()
        time.sleep(0.05)  # let the body finish
        # The future stays rejected; the late result does not overwrite it.
        with pytest.raises(TaskError):
            f.result(timeout=1)

    def test_worker_usable_after_timeout(self, sched):
        release = threading.Event()
        f1 = sched.submit(
            Task(fn=lambda: release.wait(5), timeout=0.05,
                 resources=ResourceSpec(cores=1, memory_gb=1))
        )
        with pytest.raises(TaskError):
            f1.result(timeout=5)
        # The second core still serves tasks while the first is wedged.
        f2 = sched.submit(
            Task(fn=lambda: "alive", resources=ResourceSpec(cores=1, memory_gb=1))
        )
        assert f2.result(timeout=5) == "alive"
        release.set()

    def test_zero_timeout_means_none(self, sched):
        f = sched.submit(Task(fn=lambda: time.sleep(0.05) or "done", timeout=0.0))
        assert f.result(timeout=5) == "done"

    def test_negative_timeout_rejected(self):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            Task(fn=lambda: None, timeout=-1.0)


class TestWorkerHealth:
    def test_idle_worker_is_healthy(self, sched):
        assert len(sched.healthy_workers()) == 1

    def test_running_tasks_tracked(self, sched):
        release = threading.Event()
        started = threading.Event()

        def body():
            started.set()
            release.wait(5)

        sched.submit(Task(fn=body, resources=ResourceSpec(cores=1, memory_gb=1)))
        assert started.wait(timeout=5)
        worker = sched.workers[0]
        assert len(worker.running_tasks()) == 1
        release.set()
        deadline = time.monotonic() + 5
        while worker.running_tasks() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert worker.running_tasks() == []

    def test_wedged_worker_flagged(self, sched):
        release = threading.Event()
        started = threading.Event()

        def wedge():
            started.set()
            release.wait(5)

        sched.submit(Task(fn=wedge, resources=ResourceSpec(cores=2, memory_gb=1)))
        assert started.wait(timeout=5)
        time.sleep(0.03)
        # With a tiny heartbeat age, the busy worker shows as unhealthy.
        assert sched.healthy_workers(max_heartbeat_age=0.01) == []
        release.set()

    def test_dead_worker_not_healthy(self, sched):
        sched.workers[0].kill()
        assert sched.healthy_workers() == []

    def test_heartbeat_advances_with_activity(self, sched):
        worker = sched.workers[0]
        before = worker.last_heartbeat
        sched.submit(Task(fn=lambda: None)).result(timeout=5)
        time.sleep(0.02)
        assert worker.last_heartbeat > before


class TestWatchdogParking:
    @staticmethod
    def _wait_for(predicate, timeout=2.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_untimed_tasks_never_start_watchdog(self, sched):
        f = sched.submit(Task(fn=lambda: "ok"))
        assert f.result(timeout=5) == "ok"
        assert sched._watchdog is None

    def test_watchdog_retires_when_no_timed_tasks_remain(self, sched):
        f = sched.submit(Task(fn=lambda: "ok", timeout=5.0))
        assert f.result(timeout=5) == "ok"
        # The 20 ms poll loop notices the drained pending set and parks.
        assert self._wait_for(lambda: sched._watchdog is None)

    def test_watchdog_restarts_for_new_timed_task(self, sched):
        f = sched.submit(Task(fn=lambda: 1, timeout=5.0))
        assert f.result(timeout=5) == 1
        assert self._wait_for(lambda: sched._watchdog is None)
        # A fresh timed task must restart enforcement, not just bookkeeping.
        release = threading.Event()
        late = sched.submit(Task(fn=lambda: release.wait(5), timeout=0.05))
        with pytest.raises(TaskError) as exc_info:
            late.result(timeout=5)
        assert isinstance(exc_info.value.cause, TimeoutError)
        release.set()
