"""Tests for workers and the scheduler."""

import threading
import time

import pytest

from repro.compute import (
    Future,
    NoCapacityError,
    ResourceSpec,
    Scheduler,
    Task,
    TaskError,
    TaskState,
    Worker,
)


class TestWorkerStandalone:
    def test_executes_submitted_task(self):
        worker = Worker(capacity=ResourceSpec(cores=1, memory_gb=1))
        try:
            task = Task(fn=lambda: 7)
            future = Future(task.task_id)
            assert worker.submit(task, future)
            assert future.result(timeout=5) == 7
        finally:
            worker.shutdown()

    def test_task_error_captured(self):
        worker = Worker()
        try:
            task = Task(fn=lambda: 1 / 0)
            future = Future(task.task_id)
            worker.submit(task, future)
            with pytest.raises(TaskError) as exc_info:
                future.result(timeout=5)
            assert isinstance(exc_info.value.cause, ZeroDivisionError)
        finally:
            worker.shutdown()

    def test_worker_survives_task_error(self):
        worker = Worker()
        try:
            bad = Task(fn=lambda: 1 / 0)
            f_bad = Future(bad.task_id)
            worker.submit(bad, f_bad)
            with pytest.raises(TaskError):
                f_bad.result(timeout=5)
            good = Task(fn=lambda: "ok")
            f_good = Future(good.task_id)
            worker.submit(good, f_good)
            assert f_good.result(timeout=5) == "ok"
            assert worker.tasks_failed == 1
            assert worker.tasks_completed == 1
        finally:
            worker.shutdown()

    def test_admission_respects_capacity(self):
        worker = Worker(capacity=ResourceSpec(cores=1, memory_gb=1))
        try:
            big = Task(fn=lambda: None, resources=ResourceSpec(cores=2, memory_gb=1))
            assert not worker.can_accept(big)
            assert not worker.submit(big, Future(big.task_id))
        finally:
            worker.shutdown()

    def test_resources_released_after_completion(self):
        worker = Worker(capacity=ResourceSpec(cores=1, memory_gb=2))
        try:
            task = Task(fn=lambda: None, resources=ResourceSpec(cores=1, memory_gb=2))
            future = Future(task.task_id)
            worker.submit(task, future)
            future.result(timeout=5)
            time.sleep(0.02)  # release happens just after resolve
            free = worker.free_resources()
            assert free.cores == pytest.approx(1, abs=1e-6)
        finally:
            worker.shutdown()

    def test_parallelism_up_to_cores(self):
        worker = Worker(capacity=ResourceSpec(cores=2, memory_gb=4))
        try:
            barrier = threading.Barrier(2, timeout=5)
            task_fn = barrier.wait  # both tasks must run simultaneously
            futures = []
            for _ in range(2):
                t = Task(fn=task_fn, resources=ResourceSpec(cores=1, memory_gb=1))
                f = Future(t.task_id)
                worker.submit(t, f)
                futures.append(f)
            for f in futures:
                f.result(timeout=5)  # would deadlock if serialised
        finally:
            worker.shutdown()

    def test_kill_returns_queued_tasks(self):
        worker = Worker(capacity=ResourceSpec(cores=1, memory_gb=1))
        block = threading.Event()
        started = threading.Event()

        def blocker():
            started.set()
            block.wait(timeout=5)

        t1 = Task(fn=blocker, resources=ResourceSpec(cores=1, memory_gb=1))
        worker.submit(t1, Future(t1.task_id))
        assert started.wait(timeout=5)  # blocker is off the queue
        queued = [Task(fn=lambda: None, resources=ResourceSpec(cores=1, memory_gb=1)) for _ in range(3)]
        # Capacity is taken; these would queue at the scheduler in real
        # use — force-queue them directly to exercise kill().
        for t in queued:
            worker._queue.put((t, Future(t.task_id)))
        orphans = worker.kill()
        block.set()
        assert len(orphans) == 3

    def test_stats(self):
        worker = Worker()
        try:
            t = Task(fn=lambda: None)
            f = Future(t.task_id)
            worker.submit(t, f)
            f.result(timeout=5)
            time.sleep(0.02)
            stats = worker.stats()
            assert stats["tasks_completed"] == 1
            assert stats["alive"]
        finally:
            worker.shutdown()


class TestScheduler:
    @pytest.fixture
    def sched(self):
        s = Scheduler()
        for _ in range(2):
            s.add_worker(Worker(capacity=ResourceSpec(cores=1, memory_gb=2)))
        yield s
        for w in s.workers:
            s.remove_worker(w.worker_id)

    def test_submit_and_result(self, sched):
        f = sched.submit(Task(fn=lambda: 5))
        assert f.result(timeout=5) == 5

    def test_many_tasks_all_complete(self, sched):
        futures = [sched.submit(Task(fn=lambda i=i: i * i)) for i in range(50)]
        assert [f.result(timeout=10) for f in futures] == [i * i for i in range(50)]

    def test_impossible_task_fails_fast(self, sched):
        task = Task(fn=lambda: None, resources=ResourceSpec(cores=64, memory_gb=1))
        f = sched.submit(task)
        with pytest.raises(TaskError) as exc_info:
            f.result(timeout=5)
        assert isinstance(exc_info.value.cause, NoCapacityError)

    def test_retry_on_error(self, sched):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        f = sched.submit(Task(fn=flaky, max_retries=5))
        assert f.result(timeout=5) == "ok"
        assert calls["n"] == 3

    def test_retries_exhausted(self, sched):
        f = sched.submit(Task(fn=lambda: 1 / 0, max_retries=2))
        with pytest.raises(TaskError):
            f.result(timeout=5)
        assert sched.tasks_retried >= 2

    def test_priority_order(self):
        s = Scheduler()
        # No workers yet: submissions queue up, then a worker drains
        # them in priority order.
        order = []
        lock = threading.Lock()

        def record(tag):
            with lock:
                order.append(tag)

        futures = [
            s.submit(Task(fn=record, args=("low",), priority=0)),
            s.submit(Task(fn=record, args=("high",), priority=10)),
            s.submit(Task(fn=record, args=("mid",), priority=5)),
        ]
        s.add_worker(Worker(capacity=ResourceSpec(cores=1, memory_gb=1)))
        for f in futures:
            f.result(timeout=5)
        assert order == ["high", "mid", "low"]
        for w in s.workers:
            s.remove_worker(w.worker_id)

    def test_worker_killed_task_retried_elsewhere(self):
        s = Scheduler()
        w1 = Worker(capacity=ResourceSpec(cores=1, memory_gb=1))
        s.add_worker(w1)
        started = threading.Event()
        release = threading.Event()

        def blocker():
            started.set()
            release.wait(timeout=5)
            return "done"

        f1 = s.submit(Task(fn=blocker, resources=ResourceSpec(cores=1, memory_gb=1)))
        started.wait(timeout=5)
        # Queue a second task behind the blocker, then kill the worker.
        f2 = s.submit(Task(fn=lambda: "second", resources=ResourceSpec(cores=1, memory_gb=1)))
        w2 = Worker(capacity=ResourceSpec(cores=1, memory_gb=1))
        s.add_worker(w2)
        s.remove_worker(w1.worker_id, graceful=False)
        release.set()
        assert f2.result(timeout=5) == "second"
        s.remove_worker(w2.worker_id)

    def test_graph_dependencies_respected(self, sched):
        from repro.compute import TaskGraph

        order = []
        lock = threading.Lock()

        def record(tag):
            with lock:
                order.append(tag)
            return tag

        g = TaskGraph()
        a = g.add_task(Task(fn=record, args=("a",)))
        b = g.add_task(Task(fn=record, args=("b",)), depends_on=[a])
        c = g.add_task(Task(fn=record, args=("c",)), depends_on=[b])
        futures = sched.submit_graph(g)
        assert futures[c].result(timeout=5) == "c"
        assert order == ["a", "b", "c"]

    def test_graph_failure_propagates_to_dependents(self, sched):
        from repro.compute import TaskGraph

        g = TaskGraph()
        a = g.add_task(Task(fn=lambda: 1 / 0))
        b = g.add_task(Task(fn=lambda: "never"), depends_on=[a])
        futures = sched.submit_graph(g)
        with pytest.raises(TaskError):
            futures[b].result(timeout=5)

    def test_duplicate_submission_rejected(self, sched):
        from repro.util.validation import ValidationError

        task = Task(fn=lambda: None)
        sched.submit(task)
        with pytest.raises(ValidationError):
            sched.submit(task)

    def test_total_capacity(self, sched):
        cap = sched.total_capacity()
        assert cap["cores"] == 2
        assert cap["memory_gb"] == 4

    def test_stats(self, sched):
        sched.submit(Task(fn=lambda: None)).result(timeout=5)
        stats = sched.stats()
        assert stats["tasks_submitted"] == 1
        assert stats["workers"] == 2
