"""Tests for Task, ResourceSpec and Future."""

import threading

import pytest

from repro.compute import CancelledError, Future, ResourceSpec, Task, TaskError, TaskState
from repro.util.validation import ValidationError


class TestResourceSpec:
    def test_defaults(self):
        spec = ResourceSpec()
        assert spec.cores == 1.0
        assert spec.memory_gb == 1.0

    def test_fits_within(self):
        small = ResourceSpec(cores=1, memory_gb=2)
        big = ResourceSpec(cores=4, memory_gb=8)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_addition(self):
        total = ResourceSpec(1, 2) + ResourceSpec(3, 4)
        assert (total.cores, total.memory_gb) == (4, 6)

    def test_subtraction_allows_zero(self):
        spec = ResourceSpec(2, 4) - ResourceSpec(2, 4)
        assert spec.cores == 0 and spec.memory_gb == 0

    def test_invalid_spec(self):
        with pytest.raises(ValidationError):
            ResourceSpec(cores=0)

    def test_paper_resource_classes(self):
        from repro.compute.task import EDGE_DEVICE, JETSTREAM_MEDIUM, LRZ_LARGE, LRZ_MEDIUM

        assert (EDGE_DEVICE.cores, EDGE_DEVICE.memory_gb) == (1, 4)
        assert (LRZ_MEDIUM.cores, LRZ_MEDIUM.memory_gb) == (4, 18)
        assert (LRZ_LARGE.cores, LRZ_LARGE.memory_gb) == (10, 44)
        assert (JETSTREAM_MEDIUM.cores, JETSTREAM_MEDIUM.memory_gb) == (6, 16)


class TestTask:
    def test_execute(self):
        task = Task(fn=lambda a, b: a + b, args=(1, 2))
        assert task.execute() == 3

    def test_kwargs(self):
        task = Task(fn=lambda a, b=0: a - b, args=(5,), kwargs={"b": 2})
        assert task.execute() == 3

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            Task(fn=42)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValidationError):
            Task(fn=lambda: None, max_retries=-1)

    def test_unique_ids(self):
        ids = {Task(fn=lambda: None).task_id for _ in range(100)}
        assert len(ids) == 100


class TestFuture:
    def test_resolve_and_result(self):
        f = Future("t1")
        f._resolve(42)
        assert f.result() == 42
        assert f.state is TaskState.DONE

    def test_reject_raises(self):
        f = Future("t1")
        f._reject(TaskError("t1", ValueError("boom")))
        with pytest.raises(TaskError):
            f.result()

    def test_result_timeout(self):
        f = Future("t1")
        with pytest.raises(TimeoutError):
            f.result(timeout=0.01)

    def test_cancel_pending(self):
        f = Future("t1")
        assert f.cancel()
        with pytest.raises(CancelledError):
            f.result()

    def test_cancel_after_done_fails(self):
        f = Future("t1")
        f._resolve(1)
        assert not f.cancel()
        assert f.result() == 1

    def test_running_cannot_be_cancelled(self):
        f = Future("t1")
        assert f._mark_running("w1")
        assert not f.cancel()

    def test_mark_running_once(self):
        f = Future("t1")
        assert f._mark_running("w1")
        assert not f._mark_running("w2")
        assert f.worker_id == "w1"

    def test_resolve_is_idempotent(self):
        f = Future("t1")
        f._resolve(1)
        f._resolve(2)
        assert f.result() == 1

    def test_callback_on_done(self):
        f = Future("t1")
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.state))
        f._resolve(1)
        assert seen == [TaskState.DONE]

    def test_callback_fires_immediately_if_done(self):
        f = Future("t1")
        f._resolve(1)
        seen = []
        f.add_done_callback(lambda fut: seen.append(1))
        assert seen == [1]

    def test_callback_errors_isolated(self):
        f = Future("t1")
        f.add_done_callback(lambda fut: 1 / 0)
        f._resolve(1)  # must not raise

    def test_exception_accessor(self):
        f = Future("t1")
        err = TaskError("t1", RuntimeError("x"))
        f._reject(err)
        assert f.exception() is err

    def test_blocking_result_from_other_thread(self):
        f = Future("t1")
        threading.Timer(0.02, lambda: f._resolve("late")).start()
        assert f.result(timeout=5.0) == "late"
