"""Unit tests for the deterministic fault injector."""

import time

import pytest

from repro.broker import Broker, Producer
from repro.faults import FaultInjected, FaultInjector, FaultyBroker
from repro.netem.link import LAN, CELLULAR_EDGE, Link


class TestPlans:
    def test_drop_next_consumes_budget(self):
        injector = FaultInjector()
        injector.drop_next(2, op="append")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                injector.on_broker_op("append")
        injector.on_broker_op("append")  # budget exhausted: passes
        assert injector.fired == {"drop": 2}
        assert injector.pending == 0

    def test_op_filter(self):
        injector = FaultInjector().drop_next(5, op="fetch")
        injector.on_broker_op("append")  # unmatched op: untouched
        with pytest.raises(FaultInjected):
            injector.on_broker_op("fetch")

    def test_delay_rule_sleeps(self):
        injector = FaultInjector().delay_next(0.05, n=1)
        start = time.monotonic()
        injector.on_broker_op("append")
        assert time.monotonic() - start >= 0.04
        start = time.monotonic()
        injector.on_broker_op("append")  # consumed: no further delay
        assert time.monotonic() - start < 0.04

    def test_pause_expires(self):
        injector = FaultInjector().pause(0.05)
        start = time.monotonic()
        injector.on_broker_op("anything")
        assert time.monotonic() - start >= 0.04
        time.sleep(0.01)
        assert injector.pending == 0  # deadline passed: rule pruned

    def test_seeded_probability_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(seed=7).drop_next(
                1000, op=None, probability=0.5
            )
            hits = 0
            for _ in range(100):
                try:
                    injector.on_broker_op("x")
                except FaultInjected:
                    hits += 1
            outcomes.append(hits)
        assert outcomes[0] == outcomes[1]
        assert 20 < outcomes[0] < 80

    def test_clear_disarms(self):
        injector = FaultInjector().drop_next(5)
        injector.clear()
        injector.on_broker_op("append")
        assert injector.stats()["fired"] == {}


class TestFaultyBroker:
    def test_proxy_passthrough(self):
        broker = Broker()
        broker.create_topic("t", 2)
        faulty = FaultyBroker(broker, FaultInjector())
        assert faulty.topic("t").num_partitions == 2
        assert faulty.list_topics() == ["t"]
        assert faulty.coordinator is broker.coordinator

    def test_injected_drop_surfaces_as_connection_error(self):
        broker = Broker()
        broker.create_topic("t", 1)
        faulty = FaultyBroker(broker, FaultInjector().drop_next(1, op="append"))
        producer = Producer(faulty)
        with pytest.raises(ConnectionError):
            producer.send("t", b"x", partition=0)
        assert producer.send("t", b"y", partition=0).offset == 0


class TestLinkHook:
    def test_scripted_drop_counts_as_loss(self):
        link = Link(LAN, seed=0, time_scale=0.0)
        link.injector = FaultInjector().drop_next(1, op="transfer")
        with pytest.raises(ConnectionError):
            link.transfer(1000)
        assert link.losses == 1
        link.transfer(1000)  # plan exhausted: clean transfer
        assert link.transfers == 1

    def test_injector_composes_with_profile_loss(self):
        link = Link(CELLULAR_EDGE, seed=1, time_scale=0.0)
        link.injector = FaultInjector().drop_next(2, op="transfer")
        losses = 0
        for _ in range(400):
            try:
                link.transfer(100)
            except ConnectionError:
                losses += 1
        # Scripted drops plus the profile's own 1% random loss.
        assert losses >= 3
        assert link.losses == losses
