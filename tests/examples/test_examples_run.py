"""Smoke tests: every shipped example must run to completion.

Run as part of the normal suite so the examples (deliverable artefacts)
cannot rot. Each example is executed in a subprocess with a generous
timeout; its stdout must contain a marker proving it reached its final
reporting section.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script name -> marker expected in stdout.
EXAMPLES = {
    "quickstart.py": "completed: True",
    "outlier_detection.py": "Expected ordering",
    "geo_distribution.py": "cost-based placement",
    "dynamic_scaling.py": "messages per model",
    "hierarchical_continuum.py": "Small messages tolerate",
    "federated_learning.py": "model weights over the transatlantic link",
    "objective_planning.py": "acquired pilots",
    "telemetry_tracing.py": "telemetry accounting verified",
    "visual_inspection.py": "accounting verified",
}


@pytest.mark.parametrize("script,marker", sorted(EXAMPLES.items()))
def test_example_runs(script, marker):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert marker in proc.stdout, f"{script} output missing {marker!r}:\n{proc.stdout}"


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples on disk and smoke-test coverage diverged: "
        f"{on_disk ^ set(EXAMPLES)}"
    )
