"""Property: batched and single-record append paths are observably equivalent.

``append_many`` must be a pure optimisation — for any sequence of
records and any way of chunking it into batches, the log must end up
byte-identical to one built with single ``append`` calls: same offsets,
same record payloads/keys/headers, same metrics counters, and the same
retention/compaction behaviour (timestamps are excluded: they are
stamped at call time by design).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker import Broker, Consumer, PartitionLog, Producer

# A record: (value, optional key, header payload).
records_strategy = st.lists(
    st.tuples(
        st.binary(min_size=0, max_size=64),
        st.one_of(st.none(), st.binary(min_size=1, max_size=4)),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=40,
)


def _chunk(items, sizes):
    """Split *items* into batches whose sizes cycle through *sizes*."""
    out = []
    i = 0
    k = 0
    while i < len(items):
        size = max(1, sizes[k % len(sizes)])
        out.append(items[i : i + size])
        i += size
        k += 1
    return out


def _observable(record):
    """Everything equivalence covers (timestamps are call-time-stamped)."""
    return (record.offset, record.value, record.key, record.headers)


def _build_single(records, **log_kwargs) -> PartitionLog:
    log = PartitionLog("t", 0, **log_kwargs)
    for value, key, h in records:
        log.append(value, key=key, headers={"h": h})
    return log


def _build_batched(records, sizes, **log_kwargs) -> PartitionLog:
    log = PartitionLog("t", 0, **log_kwargs)
    for batch in _chunk(records, sizes):
        log.append_many(
            [v for v, _, _ in batch],
            keys=[k for _, k, _ in batch],
            headers=[{"h": h} for _, _, h in batch],
        )
    return log


def _assert_logs_equivalent(single: PartitionLog, batched: PartitionLog) -> None:
    assert batched.earliest_offset == single.earliest_offset
    assert batched.latest_offset == single.latest_offset
    assert batched.size_bytes == single.size_bytes
    assert batched.total_appended == single.total_appended
    assert batched.total_bytes_in == single.total_bytes_in
    start = single.earliest_offset
    got_single = single.fetch(start, max_records=10_000) if len(single) else []
    got_batched = batched.fetch(start, max_records=10_000) if len(batched) else []
    assert [_observable(r) for r in got_batched] == [
        _observable(r) for r in got_single
    ]


class TestBatchSingleEquivalence:
    @given(records=records_strategy, sizes=st.lists(st.integers(1, 7), min_size=1, max_size=4))
    @settings(max_examples=60)
    def test_plain_log(self, records, sizes):
        _assert_logs_equivalent(
            _build_single(records), _build_batched(records, sizes)
        )

    @given(
        records=records_strategy,
        sizes=st.lists(st.integers(1, 7), min_size=1, max_size=4),
        retention=st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=60)
    def test_across_retention_eviction(self, records, sizes, retention):
        # Byte-based eviction depends only on the final record sequence,
        # so evicting per append and per batch must converge.
        _assert_logs_equivalent(
            _build_single(records, retention_bytes=retention),
            _build_batched(records, sizes, retention_bytes=retention),
        )

    @given(
        records=records_strategy,
        sizes=st.lists(st.integers(1, 7), min_size=1, max_size=4),
        compact_after=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60)
    def test_across_compaction(self, records, sizes, compact_after):
        # Compact both logs at the same point in the record sequence,
        # then keep appending: surviving offsets, gap handling and the
        # dense/bisect fetch paths must agree.
        head, tail = records[:compact_after], records[compact_after:]
        single = _build_single(head)
        removed_single = single.compact()
        for value, key, h in tail:
            single.append(value, key=key, headers={"h": h})

        batched = _build_batched(head, sizes)
        removed_batched = batched.compact()
        for batch in _chunk(tail, sizes):
            batched.append_many(
                [v for v, _, _ in batch],
                keys=[k for _, k, _ in batch],
                headers=[{"h": h} for _, _, h in batch],
            )
        assert removed_batched == removed_single
        _assert_logs_equivalent(single, batched)

    @given(records=records_strategy, sizes=st.lists(st.integers(1, 7), min_size=1, max_size=4))
    @settings(max_examples=30)
    def test_fetch_from_every_offset(self, records, sizes):
        single = _build_single(records)
        batched = _build_batched(records, sizes)
        for offset in range(single.latest_offset + 1):
            got_s = single.fetch(offset, max_records=5)
            got_b = batched.fetch(offset, max_records=5)
            assert [_observable(r) for r in got_b] == [_observable(r) for r in got_s]

    @given(records=records_strategy)
    @settings(max_examples=30)
    def test_producer_send_many_matches_sends(self, records):
        # Client-level equivalence: send_many == N sends, observed
        # through a consumer (offsets, values, keys, headers).
        values = [v for v, _, _ in records]
        keys = [k for _, k, _ in records]
        headers = [{"h": h} for _, _, h in records]

        b1 = Broker()
        b1.create_topic("t", 1)
        p1 = Producer(b1)
        for v, k, h in zip(values, keys, headers):
            p1.send("t", v, key=k, partition=0, headers=h)

        b2 = Broker()
        b2.create_topic("t", 1)
        p2 = Producer(b2)
        md = p2.send_many("t", values, keys=keys, partition=0, headers=headers)
        assert md.base_offset == 0
        assert md.count == len(values)
        assert list(md.offsets) == list(range(len(values)))
        assert p1.records_sent == p2.records_sent
        assert p1.bytes_sent == p2.bytes_sent

        def drain(broker):
            consumer = Consumer(broker)
            consumer.assign([("t", 0)])
            out = []
            while True:
                got = consumer.poll(max_records=7)
                if not got:
                    return out
                out.extend(got)

        assert [_observable(r) for r in drain(b2)] == [
            _observable(r) for r in drain(b1)
        ]
