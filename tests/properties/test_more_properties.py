"""Additional property-based tests: compaction, state machines, windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker import PartitionLog
from repro.core.windows import TumblingWindow
from repro.ml import StreamingKMeans
from repro.pilot import InvalidTransition, PilotState
from repro.pilot.states import check_transition
from repro.sim import MultiTierSimulation, StageCostModel, Tier


class TestCompactionProperties:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from([b"k1", b"k2", b"k3", None]), st.binary(max_size=8)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_compaction_preserves_latest_per_key(self, ops):
        log = PartitionLog("t", 0)
        latest: dict = {}
        keyless = []
        for key, value in ops:
            record = log.append(value, key=key)
            if key is None:
                keyless.append(record.offset)
            else:
                latest[key] = record.offset
        log.compact()
        survivors = log.fetch(0, max_records=1000)
        offsets = {r.offset for r in survivors}
        # Every keyless record and every latest-per-key record survives;
        # nothing else does.
        assert offsets == set(keyless) | set(latest.values())
        # Offsets remain strictly increasing.
        ordered = [r.offset for r in survivors]
        assert ordered == sorted(ordered)

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from([b"a", b"b"]), st.binary(max_size=4)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30)
    def test_compaction_idempotent(self, ops):
        log = PartitionLog("t", 0)
        for key, value in ops:
            log.append(value, key=key)
        log.compact()
        assert log.compact() == 0  # second pass removes nothing


class TestPilotStateMachineProperties:
    @given(
        path=st.lists(st.sampled_from(list(PilotState)), min_size=1, max_size=8)
    )
    @settings(max_examples=100)
    def test_no_path_escapes_final_states(self, path):
        """Once a final state is reached, no further transition is legal."""
        state = PilotState.NEW
        for nxt in path:
            try:
                check_transition(state, nxt)
            except InvalidTransition:
                continue
            if state.is_final:
                pytest.fail(f"escaped final state {state} -> {nxt}")
            state = nxt

    @given(st.data())
    @settings(max_examples=50)
    def test_every_legal_walk_ends_new_pending_running_or_final(self, data):
        state = PilotState.NEW
        for _ in range(6):
            candidates = [
                s for s in PilotState
                if _legal(state, s)
            ]
            if not candidates:
                break
            state = data.draw(st.sampled_from(candidates))
        assert state in PilotState


def _legal(a, b):
    try:
        check_transition(a, b)
        return True
    except InvalidTransition:
        return False


class TestTumblingWindowProperties:
    @given(
        size=st.integers(min_value=1, max_value=10),
        n_blocks=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=50)
    def test_row_conservation(self, size, n_blocks):
        """Rows in == rows out (emitted + flushed)."""
        window = TumblingWindow(size)
        rows_in = 0
        rows_out = 0
        rng = np.random.default_rng(0)
        for _ in range(n_blocks):
            rows = int(rng.integers(1, 5))
            rows_in += rows
            out = window.add(np.zeros((rows, 2)))
            if out is not None:
                rows_out += out.shape[0]
        tail = window.flush()
        if tail is not None:
            rows_out += tail.shape[0]
        assert rows_in == rows_out
        assert window.windows_emitted == (n_blocks // size) + (
            1 if n_blocks % size else 0
        )


class TestKMeansProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20)
    def test_single_cluster_center_is_global_mean(self, seed):
        rng = np.random.default_rng(seed)
        km = StreamingKMeans(n_clusters=1, seed=0)
        chunks = [rng.normal(size=(int(rng.integers(5, 40)), 3)) for _ in range(4)]
        for chunk in chunks:
            km.partial_fit(chunk)
        everything = np.vstack(chunks)
        np.testing.assert_allclose(
            km.cluster_centers_[0], everything.mean(axis=0), atol=1e-8
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=20)
    def test_counts_conserve_samples(self, seed, k):
        rng = np.random.default_rng(seed)
        km = StreamingKMeans(n_clusters=k, seed=0)
        total = 0
        for _ in range(3):
            n = int(rng.integers(k, 50))
            km.partial_fit(rng.normal(size=(n, 2)))
            total += n
        assert km._counts.sum() == total


class TestMultiTierProperties:
    @given(
        n_tiers=st.integers(min_value=1, max_value=4),
        devices=st.integers(min_value=1, max_value=4),
        messages=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=20, deadline=None)
    def test_message_conservation_through_chain(self, n_tiers, devices, messages):
        tiers = [
            Tier(f"t{i}", process_cost=StageCostModel("p", 1e-4, jitter=0.0))
            for i in range(n_tiers)
        ]
        result = MultiTierSimulation(
            tiers,
            num_devices=devices,
            messages_per_device=messages,
            message_bytes=1000,
            seed=0,
        ).run()
        expected = devices * messages
        assert result.report.messages == expected
        for i in range(n_tiers):
            assert result.tier_stats[f"t{i}"]["jobs_served"] == expected
