"""Property-based tests for network emulation and routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem import ContinuumTopology, Link, LinkProfile, LAN, REGIONAL_WAN, TRANSATLANTIC


def profile_strategy():
    return st.builds(
        lambda rtt_lo, rtt_span, bw_lo, bw_span: LinkProfile(
            "gen", rtt_lo, rtt_lo + rtt_span, bw_lo, bw_lo + bw_span
        ),
        rtt_lo=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        rtt_span=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        bw_lo=st.floats(min_value=0.1, max_value=10_000.0, allow_nan=False),
        bw_span=st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
    )


class TestLinkProperties:
    @given(profile=profile_strategy(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_samples_always_within_profile(self, profile, seed):
        link = Link(profile, seed=seed)
        for _ in range(20):
            rtt = link.sample_rtt_s() * 1000.0
            assert profile.rtt_ms_min - 1e-9 <= rtt <= profile.rtt_ms_max + 1e-9
            bw = link.sample_bandwidth_bps() / 1e6
            assert profile.bandwidth_mbps_min - 1e-9 <= bw <= profile.bandwidth_mbps_max + 1e-9

    @given(
        profile=profile_strategy(),
        seed=st.integers(0, 2**31 - 1),
        a=st.integers(min_value=0, max_value=10_000_000),
        b=st.integers(min_value=0, max_value=10_000_000),
    )
    @settings(max_examples=50)
    def test_transfer_time_lower_bounds(self, profile, seed, a, b):
        """Transfer time is at least the minimum latency plus the
        serialization at the maximum bandwidth."""
        link = Link(profile, seed=seed)
        for nbytes in (a, b):
            t = link.transfer_time(nbytes)
            floor = profile.rtt_ms_min / 2000.0 + nbytes * 8.0 / (
                profile.bandwidth_mbps_max * 1e6
            )
            assert t >= floor - 1e-9

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20)
    def test_stats_conserve_bytes(self, seed):
        link = Link(LAN, seed=seed, time_scale=0.0)
        sizes = np.random.default_rng(seed).integers(1, 100_000, size=10)
        for s in sizes:
            link.transfer(int(s))
        assert link.bytes_moved == int(sizes.sum())
        assert link.transfers == 10


class TestRoutingProperties:
    @st.composite
    def random_topology(draw):
        n = draw(st.integers(min_value=2, max_value=6))
        names = [f"s{i}" for i in range(n)]
        topo = ContinuumTopology(time_scale=0.0, seed=0)
        for name in names:
            topo.add_site(name)
        # A random spanning tree guarantees connectivity; extra edges
        # are added on top.
        profiles = [LAN, REGIONAL_WAN, TRANSATLANTIC]
        for i in range(1, n):
            j = draw(st.integers(min_value=0, max_value=i - 1))
            topo.connect(names[i], names[j], draw(st.sampled_from(profiles)))
        extra = draw(st.integers(min_value=0, max_value=2))
        for _ in range(extra):
            a = draw(st.sampled_from(names))
            b = draw(st.sampled_from(names))
            if a != b and topo.direct_link(a, b) is None:
                topo.connect(a, b, draw(st.sampled_from(profiles)))
        return topo, names

    @given(data=random_topology())
    @settings(max_examples=40)
    def test_routes_exist_and_are_simple_paths(self, data):
        topo, names = data
        for a in names:
            for b in names:
                path = topo.route(a, b)
                assert path[0] == a and path[-1] == b
                assert len(set(path)) == len(path)  # no repeated sites
                for u, v in zip(path, path[1:]):
                    assert topo.direct_link(u, v) is not None

    @given(data=random_topology())
    @settings(max_examples=40)
    def test_route_rtt_is_symmetric(self, data):
        topo, names = data
        for a in names:
            for b in names:
                assert topo.path_rtt_ms(a, b) == pytest.approx(topo.path_rtt_ms(b, a))

    @given(data=random_topology())
    @settings(max_examples=40)
    def test_direct_route_never_beaten_by_itself(self, data):
        """The routed RTT never exceeds any direct link's RTT."""
        topo, names = data
        for a in names:
            for b in names:
                direct = topo.direct_link(a, b)
                if direct is not None:
                    assert topo.path_rtt_ms(a, b) <= direct.profile.mean_rtt_ms + 1e-9
