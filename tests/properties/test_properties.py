"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker import PartitionLog, RangeAssignor, RoundRobinAssignor
from repro.data import decode_block, encode_block
from repro.ml import StandardScaler
from repro.ml.metrics import roc_auc_score
from repro.params import VersionedStore
from repro.sim import FifoServer, Simulator
from repro.util import RingBuffer


class TestRingBufferProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=50),
        items=st.lists(st.integers(), max_size=200),
    )
    def test_keeps_last_capacity_items(self, capacity, items):
        rb = RingBuffer(capacity)
        rb.extend(items)
        assert list(rb) == items[-capacity:]

    @given(
        capacity=st.integers(min_value=1, max_value=20),
        items=st.lists(st.integers(), min_size=1, max_size=100),
    )
    def test_len_never_exceeds_capacity(self, capacity, items):
        rb = RingBuffer(capacity)
        rb.extend(items)
        assert len(rb) == min(capacity, len(items))

    @given(
        capacity=st.integers(min_value=1, max_value=20),
        items=st.lists(st.integers(), min_size=1, max_size=100),
    )
    def test_indexing_consistent_with_iteration(self, capacity, items):
        rb = RingBuffer(capacity)
        rb.extend(items)
        assert [rb[i] for i in range(len(rb))] == list(rb)


class TestSerdeProperties:
    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30)
    def test_roundtrip_is_identity(self, rows, cols, seed):
        block = np.random.default_rng(seed).normal(size=(rows, cols))
        decoded = decode_block(encode_block(block))
        np.testing.assert_array_equal(decoded, block)

    @given(
        rows=st.integers(min_value=1, max_value=30),
        cols=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=30)
    def test_size_formula_exact(self, rows, cols):
        frame = encode_block(np.zeros((rows, cols)))
        assert len(frame) == 16 + rows * cols * 8


class TestPartitionLogProperties:
    @given(payloads=st.lists(st.binary(min_size=0, max_size=64), max_size=60))
    @settings(max_examples=30)
    def test_fetch_returns_appended_in_order(self, payloads):
        log = PartitionLog("t", 0)
        for p in payloads:
            log.append(p)
        fetched = log.fetch(0, max_records=len(payloads) or 1)
        assert [r.value for r in fetched] == payloads

    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=60),
        retention=st.integers(min_value=32, max_value=512),
    )
    @settings(max_examples=30)
    def test_retention_never_loses_head(self, payloads, retention):
        log = PartitionLog("t", 0, retention_bytes=retention)
        for p in payloads:
            log.append(p)
        # Invariants: head offset counts every append; retained window is
        # a contiguous suffix; size respects the bound (min one record).
        assert log.latest_offset == len(payloads)
        assert log.earliest_offset + len(log) == log.latest_offset
        assert len(log) >= 1


class TestAssignorProperties:
    @st.composite
    def members_and_partitions(draw):
        n_members = draw(st.integers(min_value=1, max_value=8))
        n_parts = draw(st.integers(min_value=0, max_value=32))
        members = [f"m{i}" for i in range(n_members)]
        parts = [("t", p) for p in range(n_parts)]
        return members, parts

    @given(data=members_and_partitions())
    @settings(max_examples=50)
    def test_range_assignor_partition_function(self, data):
        members, parts = data
        out = RangeAssignor().assign(members, parts)
        flat = sorted(tp for tps in out.values() for tp in tps)
        assert flat == sorted(parts)          # every partition exactly once
        sizes = [len(v) for v in out.values()]
        assert max(sizes) - min(sizes) <= 1    # balanced within 1

    @given(data=members_and_partitions())
    @settings(max_examples=50)
    def test_roundrobin_assignor_partition_function(self, data):
        members, parts = data
        out = RoundRobinAssignor().assign(members, parts)
        flat = sorted(tp for tps in out.values() for tp in tps)
        assert flat == sorted(parts)
        sizes = [len(v) for v in out.values()]
        assert max(sizes) - min(sizes) <= 1


class TestScalerProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_chunks=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30)
    def test_chunked_fit_equals_batch_fit(self, seed, n_chunks):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3)) * rng.uniform(0.5, 5) + rng.uniform(-3, 3)
        batch = StandardScaler().fit(X)
        inc = StandardScaler()
        for chunk in np.array_split(X, n_chunks):
            if len(chunk):
                inc.partial_fit(chunk)
        np.testing.assert_allclose(inc.mean_, batch.mean_, atol=1e-9)
        np.testing.assert_allclose(inc.var_, batch.var_, atol=1e-9)


class TestVersionedStoreProperties:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["set", "delete"]), st.sampled_from("abc")),
        max_size=60,
    ))
    @settings(max_examples=50)
    def test_version_strictly_increases_per_key_lifetime(self, ops):
        store = VersionedStore()
        last_version: dict = {}
        for op, key in ops:
            if op == "set":
                entry = store.set(key, 0)
                if key in last_version:
                    assert entry.version == last_version[key] + 1
                else:
                    assert entry.version == 1
                last_version[key] = entry.version
            else:
                store.delete(key)
                last_version.pop(key, None)


class TestRocAucProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30)
    def test_auc_antisymmetric_under_score_negation(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=50)
        y[0], y[1] = 0, 1
        s = rng.normal(size=50)
        auc = roc_auc_score(y, s)
        assert roc_auc_score(y, -s) == pytest.approx(1.0 - auc, abs=1e-12)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shift=st.floats(min_value=-10, max_value=10, allow_nan=False),
        scale=st.floats(min_value=0.1, max_value=10, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_auc_invariant_to_monotone_transform(self, seed, shift, scale):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=40)
        y[0], y[1] = 0, 1
        s = rng.normal(size=40)
        assert roc_auc_score(y, s * scale + shift) == roc_auc_score(y, s)


class TestSimEngineProperties:
    @given(delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40,
    ))
    @settings(max_examples=30)
    def test_events_always_execute_in_nondecreasing_time(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)

    @given(
        capacity=st.integers(min_value=1, max_value=5),
        services=st.lists(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            min_size=1, max_size=30,
        ),
    )
    @settings(max_examples=30)
    def test_fifo_server_conservation(self, capacity, services):
        sim = Simulator()
        server = FifoServer(sim, capacity=capacity)
        done = []
        for s in services:
            server.submit(s, lambda: done.append(sim.now))
        sim.run()
        # Every job served; busy time is the exact sum of service times;
        # makespan bounded by the single-server sequential case and at
        # least the critical path.
        assert server.jobs_served == len(services)
        assert server.busy_seconds == pytest.approx(sum(services))
        assert max(done) <= sum(services) + 1e-9
        assert max(done) >= max(services) - 1e-9


import pytest  # noqa: E402  (used by approx above)
