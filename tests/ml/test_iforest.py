"""Tests for the isolation forest."""

import numpy as np
import pytest

from repro.ml import IsolationForest, roc_auc_score
from repro.ml.iforest import average_path_length
from repro.util.validation import ValidationError


class TestAveragePathLength:
    def test_small_values(self):
        out = average_path_length(np.array([0, 1, 2]))
        assert out[0] == 0.0
        assert out[1] == 0.0
        assert out[2] == 1.0

    def test_grows_logarithmically(self):
        c = average_path_length(np.array([16.0, 256.0, 4096.0]))
        assert c[0] < c[1] < c[2]
        # c(n) ~ 2 ln(n) + const: doubling input adds a bounded amount.
        assert (c[2] - c[1]) == pytest.approx(c[1] - c[0], rel=0.3)

    def test_known_value_n256(self):
        # c(256) ≈ 10.24 (standard reference value for iforest).
        assert average_path_length(np.array([256.0]))[0] == pytest.approx(10.24, abs=0.1)


class TestIsolationForest:
    def test_builds_requested_trees(self, small_block):
        forest = IsolationForest(n_estimators=10, seed=0).fit(small_block)
        assert forest.n_trees == 10

    def test_detects_injected_outliers(self, labeled_block):
        X, y = labeled_block
        forest = IsolationForest(n_estimators=50, seed=0).fit(X)
        assert roc_auc_score(y, forest.decision_function(X)) > 0.95

    def test_scores_in_unit_interval(self, small_block):
        forest = IsolationForest(n_estimators=20, seed=0).fit(small_block)
        scores = forest.decision_function(small_block)
        assert (scores > 0).all() and (scores < 1).all()

    def test_isolated_point_scores_higher(self, rng):
        X = rng.normal(size=(500, 2))
        X_out = np.vstack([X, [[50.0, 50.0]]])
        forest = IsolationForest(n_estimators=50, seed=0).fit(X_out)
        scores = forest.decision_function(X_out)
        assert scores[-1] > np.percentile(scores[:-1], 99)

    def test_partial_fit_refreshes_some_trees(self, rng):
        forest = IsolationForest(n_estimators=8, refresh_fraction=0.25, seed=0)
        forest.fit(rng.normal(size=(300, 4)))
        before = forest._trees[:]
        forest.partial_fit(rng.normal(size=(300, 4)))
        replaced = sum(1 for a, b in zip(before, forest._trees) if a is not b)
        assert replaced == 2  # 25% of 8

    def test_refresh_rotates_through_ensemble(self, rng):
        forest = IsolationForest(n_estimators=4, refresh_fraction=0.5, seed=0)
        forest.fit(rng.normal(size=(100, 3)))
        original = forest._trees[:]
        forest.partial_fit(rng.normal(size=(100, 3)))
        forest.partial_fit(rng.normal(size=(100, 3)))
        # After two refreshes of 2 trees each, all 4 are replaced.
        assert all(a is not b for a, b in zip(original, forest._trees))

    def test_streaming_adapts_to_drift(self, rng):
        forest = IsolationForest(n_estimators=30, refresh_fraction=0.5, seed=0)
        forest.fit(rng.normal(0, 1, size=(500, 2)))
        shifted = rng.normal(20, 1, size=(500, 2))
        score_before = forest.decision_function(shifted).mean()
        for _ in range(4):
            forest.partial_fit(shifted)
        score_after = forest.decision_function(shifted).mean()
        assert score_after < score_before  # shifted data became "normal"

    def test_subsample_capped_by_data(self, rng):
        forest = IsolationForest(n_estimators=5, max_samples=256, seed=0)
        forest.fit(rng.normal(size=(50, 3)))  # fewer points than max_samples
        scores = forest.decision_function(rng.normal(size=(10, 3)))
        assert scores.shape == (10,)

    def test_duplicate_points_handled(self):
        X = np.ones((100, 4))
        forest = IsolationForest(n_estimators=5, seed=0).fit(X)
        scores = forest.decision_function(X)
        assert np.isfinite(scores).all()

    def test_deterministic_given_seed(self, small_block):
        s1 = IsolationForest(n_estimators=10, seed=5).fit(small_block).decision_function(small_block)
        s2 = IsolationForest(n_estimators=10, seed=5).fit(small_block).decision_function(small_block)
        np.testing.assert_array_equal(s1, s2)

    def test_refit_resets_ensemble(self, small_block):
        forest = IsolationForest(n_estimators=5, seed=0)
        forest.fit(small_block)
        forest.fit(small_block)
        assert forest.n_trees == 5

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            IsolationForest(n_estimators=0)
        with pytest.raises(ValidationError):
            IsolationForest(refresh_fraction=1.5)

    def test_default_matches_paper(self):
        forest = IsolationForest()
        assert forest.n_estimators == 100  # "a default of 100 ensemble tasks"
