"""Tests for detection metrics."""

import numpy as np
import pytest

from repro.ml import contamination_threshold, precision_at_k, roc_auc_score
from repro.util.validation import ValidationError


class TestRocAuc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, s) == 1.0

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, s) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=5000)
        s = rng.random(5000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.03)

    def test_ties_use_midranks(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(y, s) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            roc_auc_score(np.ones(4), np.arange(4.0))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            roc_auc_score(np.zeros(3), np.zeros(4))

    def test_matches_pairwise_definition(self):
        # AUC = P(score_pos > score_neg) + 0.5 P(tie), check by brute force.
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=60)
        y[:2] = [0, 1]  # guarantee both classes
        s = np.round(rng.random(60), 1)  # ties likely
        pos = s[y == 1]
        neg = s[y == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        brute = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert roc_auc_score(y, s) == pytest.approx(brute, abs=1e-12)


class TestPrecisionAtK:
    def test_all_hits(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.0, 0.1, 0.9, 0.8])
        assert precision_at_k(y, s, 2) == 1.0

    def test_no_hits(self):
        y = np.array([1, 1, 0, 0])
        s = np.array([0.0, 0.1, 0.9, 0.8])
        assert precision_at_k(y, s, 2) == 0.0

    def test_k_larger_than_n(self):
        y = np.array([1, 0])
        s = np.array([0.9, 0.1])
        assert precision_at_k(y, s, 10) == 0.5

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            precision_at_k(np.zeros(3), np.zeros(3), 0)


class TestContaminationThreshold:
    def test_quantile_position(self):
        scores = np.arange(100.0)
        thr = contamination_threshold(scores, 0.1)
        assert (scores > thr).mean() == pytest.approx(0.1, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            contamination_threshold(np.array([]), 0.1)

    def test_invalid_contamination(self):
        with pytest.raises(ValidationError):
            contamination_threshold(np.arange(5.0), 0.9)
