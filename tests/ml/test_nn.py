"""Tests for the neural-network stack, including gradient checking."""

import numpy as np
import pytest

from repro.ml.nn import (
    Adam,
    Dense,
    Identity,
    MSELoss,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    activation_by_name,
)


class TestActivations:
    @pytest.mark.parametrize("name,cls", [
        ("relu", ReLU), ("sigmoid", Sigmoid), ("tanh", Tanh), ("identity", Identity),
    ])
    def test_registry(self, name, cls):
        assert isinstance(activation_by_name(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown activation"):
            activation_by_name("swish")

    def test_relu_forward(self):
        z = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(ReLU().forward(z), [0.0, 0.0, 2.0])

    def test_sigmoid_stable_at_extremes(self):
        z = np.array([-1000.0, 1000.0])
        out = Sigmoid().forward(z)
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.isfinite(out).all()

    @pytest.mark.parametrize("act", [ReLU(), Sigmoid(), Tanh(), Identity()])
    def test_gradient_matches_finite_difference(self, act):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(5, 3)) + 0.1  # avoid ReLU kink at 0
        grad_out = rng.normal(size=(5, 3))
        analytic = act.backward(z, grad_out)
        eps = 1e-6
        numeric = np.zeros_like(z)
        for i in np.ndindex(z.shape):
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            numeric[i] = ((act.forward(zp) - act.forward(zm)) / (2 * eps) * grad_out)[i]
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 7, seed=0)
        assert layer.forward(np.zeros((3, 4))).shape == (3, 7)

    def test_param_count(self):
        assert Dense(4, 7).n_params == 4 * 7 + 7

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_glorot_initialisation_bounds(self):
        layer = Dense(100, 100, seed=1)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.W).max() <= limit
        assert (layer.b == 0).all()

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, activation="tanh", seed=0)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        loss = MSELoss()

        pred = layer.forward(x)
        layer.backward(loss.gradient(pred, target))
        analytic_dW = layer.dW.copy()

        eps = 1e-6
        numeric_dW = np.zeros_like(layer.W)
        for i in np.ndindex(layer.W.shape):
            orig = layer.W[i]
            layer.W[i] = orig + eps
            lp = loss.value(layer.forward(x), target)
            layer.W[i] = orig - eps
            lm = loss.value(layer.forward(x), target)
            layer.W[i] = orig
            numeric_dW[i] = (lp - lm) / (2 * eps)
        np.testing.assert_allclose(analytic_dW, numeric_dW, atol=1e-5)

    def test_gradient_check_input(self):
        rng = np.random.default_rng(3)
        layer = Dense(3, 3, activation="sigmoid", seed=1)
        x = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 3))
        loss = MSELoss()

        pred = layer.forward(x)
        dx = layer.backward(loss.gradient(pred, target))

        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in np.ndindex(x.shape):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            numeric[i] = (
                loss.value(layer.forward(xp), target)
                - loss.value(layer.forward(xm), target)
            ) / (2 * eps)
        np.testing.assert_allclose(dx, numeric, atol=1e-5)


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()
        assert loss.value(np.array([1.0, 2.0]), np.array([1.0, 0.0])) == 2.0

    def test_mse_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(4)
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        loss = MSELoss()
        g = loss.gradient(pred, target)
        eps = 1e-7
        for i in np.ndindex(pred.shape):
            pp, pm = pred.copy(), pred.copy()
            pp[i] += eps
            pm[i] -= eps
            num = (loss.value(pp, target) - loss.value(pm, target)) / (2 * eps)
            assert g[i] == pytest.approx(num, abs=1e-5)


class TestOptimizers:
    def _quadratic_descent(self, optimizer, steps=300):
        """Minimise ||p||^2 starting from p=[5, -3]."""
        p = np.array([5.0, -3.0])
        g = np.zeros_like(p)
        optimizer.attach([p], [g])
        for _ in range(steps):
            g[...] = 2 * p
            optimizer.step()
        return p

    def test_sgd_converges(self):
        p = self._quadratic_descent(SGD(lr=0.1))
        assert np.abs(p).max() < 1e-3

    def test_sgd_momentum_converges(self):
        p = self._quadratic_descent(SGD(lr=0.05, momentum=0.9))
        assert np.abs(p).max() < 1e-2

    def test_adam_converges(self):
        p = self._quadratic_descent(Adam(lr=0.1), steps=500)
        assert np.abs(p).max() < 1e-2

    def test_attach_mismatch(self):
        with pytest.raises(ValueError):
            SGD().attach([np.zeros(2)], [])

    def test_adam_bias_correction_first_step(self):
        # After one step with gradient g, Adam moves by ~lr * sign(g).
        p = np.array([1.0])
        g = np.array([0.5])
        opt = Adam(lr=0.01)
        opt.attach([p], [g])
        opt.step()
        assert p[0] == pytest.approx(1.0 - 0.01, abs=1e-4)


class TestSequential:
    def test_param_count(self):
        net = Sequential([Dense(4, 2, seed=0), Dense(2, 4, seed=0)])
        assert net.n_params == (4 * 2 + 2) + (2 * 4 + 4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_learns_identity_map(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(256, 4))
        net = Sequential([Dense(4, 16, "relu", seed=0), Dense(16, 4, seed=1)])
        history = net.fit(X, X, epochs=60, batch_size=32, seed=0)
        assert history[-1] < history[0] * 0.2

    def test_weights_roundtrip(self):
        net1 = Sequential([Dense(3, 5, "relu", seed=0), Dense(5, 3, seed=1)])
        net2 = Sequential([Dense(3, 5, "relu", seed=7), Dense(5, 3, seed=8)])
        net2.set_weights(net1.get_weights())
        x = np.random.default_rng(0).normal(size=(4, 3))
        np.testing.assert_allclose(net1.forward(x), net2.forward(x))

    def test_set_weights_wrong_count(self):
        net = Sequential([Dense(2, 2, seed=0)])
        with pytest.raises(ValueError, match="expected"):
            net.set_weights([np.zeros((2, 2))])

    def test_set_weights_wrong_shape(self):
        net = Sequential([Dense(2, 2, seed=0)])
        with pytest.raises(ValueError, match="shape"):
            net.set_weights([np.zeros((3, 2)), np.zeros(2)])

    def test_fit_row_mismatch(self):
        net = Sequential([Dense(2, 2, seed=0)])
        with pytest.raises(ValueError):
            net.fit(np.zeros((4, 2)), np.zeros((3, 2)))

    def test_full_network_gradient_check(self):
        rng = np.random.default_rng(6)
        net = Sequential([Dense(3, 4, "tanh", seed=0), Dense(4, 2, seed=1)])
        x = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 2))
        loss = MSELoss()

        pred = net.forward(x)
        net.backward(loss.gradient(pred, target))
        layer0 = net.layers[0]
        analytic = layer0.dW.copy()

        eps = 1e-6
        numeric = np.zeros_like(layer0.W)
        for i in np.ndindex(layer0.W.shape):
            orig = layer0.W[i]
            layer0.W[i] = orig + eps
            lp = loss.value(net.forward(x), target)
            layer0.W[i] = orig - eps
            lm = loss.value(net.forward(x), target)
            layer0.W[i] = orig
            numeric[i] = (lp - lm) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)
