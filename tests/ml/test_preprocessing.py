"""Tests for the streaming standard scaler."""

import numpy as np
import pytest

from repro.ml import StandardScaler
from repro.util.validation import ValidationError


class TestStandardScaler:
    def test_fit_transform_standardises(self, rng):
        X = rng.normal(5.0, 3.0, size=(500, 4))
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_incremental_equals_batch(self, rng):
        X = rng.normal(size=(300, 5))
        batch = StandardScaler().fit(X)
        inc = StandardScaler()
        for chunk in np.array_split(X, 7):
            inc.partial_fit(chunk)
        np.testing.assert_allclose(inc.mean_, batch.mean_, atol=1e-10)
        np.testing.assert_allclose(inc.var_, batch.var_, atol=1e-10)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(2.0, 0.5, size=(100, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-10
        )

    def test_constant_feature_passthrough(self):
        X = np.column_stack([np.ones(50), np.arange(50.0)])
        scaler = StandardScaler().fit(X)
        out = scaler.transform(X)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(ValidationError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_mismatch_rejected(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValidationError):
            scaler.transform(rng.normal(size=(10, 4)))

    def test_with_mean_false(self, rng):
        X = rng.normal(10.0, 2.0, size=(200, 2))
        out = StandardScaler(with_mean=False).fit_transform(X)
        assert out.mean() > 1.0  # mean not removed

    def test_with_std_false(self, rng):
        X = rng.normal(0.0, 5.0, size=(200, 2))
        out = StandardScaler(with_std=False).fit_transform(X)
        assert out.std() > 2.0  # variance not normalised

    def test_n_samples_tracked(self, rng):
        scaler = StandardScaler()
        scaler.partial_fit(rng.normal(size=(10, 2)))
        scaler.partial_fit(rng.normal(size=(15, 2)))
        assert scaler.n_samples_seen_ == 25

    def test_refit_resets(self, rng):
        scaler = StandardScaler()
        scaler.fit(rng.normal(size=(10, 2)))
        scaler.fit(rng.normal(size=(20, 2)))
        assert scaler.n_samples_seen_ == 20

    def test_transform_does_not_mutate_input(self, rng):
        X = rng.normal(size=(20, 2))
        X_copy = X.copy()
        StandardScaler().fit(X).transform(X)
        np.testing.assert_array_equal(X, X_copy)
