"""Tests for the auto-encoder detector."""

import numpy as np
import pytest

from repro.ml import AutoEncoder, roc_auc_score
from repro.util.validation import ValidationError


class TestArchitecture:
    def test_paper_parameter_count(self):
        """The paper reports 11,552 parameters for [64,32,32,64] on 32 features."""
        ae = AutoEncoder(hidden_neurons=(64, 32, 32, 64), epochs=1, seed=0)
        ae.fit(np.random.default_rng(0).normal(size=(64, 32)))
        assert ae.n_params == 11_552

    def test_n_params_before_fit_raises(self):
        with pytest.raises(ValidationError):
            AutoEncoder().n_params

    def test_custom_architecture(self):
        ae = AutoEncoder(hidden_neurons=(8,), epochs=1, seed=0)
        ae.fit(np.random.default_rng(0).normal(size=(32, 4)))
        # sizes [4,4,8,4,4]: 4*4+4 + 4*8+8 + 8*4+4 + 4*4+4 = 20+40+36+20
        assert ae.n_params == 116

    def test_empty_hidden_rejected(self):
        with pytest.raises(ValidationError):
            AutoEncoder(hidden_neurons=())

    def test_invalid_epochs(self):
        with pytest.raises(ValidationError):
            AutoEncoder(epochs=0)


class TestDetection:
    def test_detects_injected_outliers(self, labeled_block):
        X, y = labeled_block
        ae = AutoEncoder(epochs=8, seed=0).fit(X)
        assert roc_auc_score(y, ae.decision_function(X)) > 0.9

    def test_scores_nonnegative(self, small_block):
        ae = AutoEncoder(epochs=2, seed=0).fit(small_block)
        assert (ae.decision_function(small_block) >= 0).all()

    def test_training_reduces_loss(self, small_block):
        ae = AutoEncoder(epochs=20, seed=0)
        ae.fit(small_block)
        history = ae.training_history
        assert history[-1] < history[0]

    def test_partial_fit_continues_training(self, small_block):
        ae = AutoEncoder(epochs=2, seed=0)
        ae.partial_fit(small_block)
        n1 = len(ae.training_history)
        ae.partial_fit(small_block)
        assert len(ae.training_history) == 2 * n1

    def test_reconstruct_shape(self, small_block):
        ae = AutoEncoder(epochs=2, seed=0).fit(small_block)
        assert ae.reconstruct(small_block).shape == small_block.shape

    def test_reconstruct_before_fit_raises(self, small_block):
        with pytest.raises(ValidationError):
            AutoEncoder().reconstruct(small_block)

    def test_reconstruction_improves_with_training(self, small_block):
        brief = AutoEncoder(epochs=1, seed=0).fit(small_block)
        long = AutoEncoder(epochs=40, seed=0).fit(small_block)
        err_brief = np.linalg.norm(brief.reconstruct(small_block) - small_block)
        err_long = np.linalg.norm(long.reconstruct(small_block) - small_block)
        assert err_long < err_brief


class TestWeightSharing:
    def test_weights_roundtrip_preserves_scores(self, small_block):
        ae = AutoEncoder(epochs=4, seed=0).fit(small_block)
        clone = AutoEncoder(epochs=4, seed=99)
        clone.set_weights(ae.get_weights())
        np.testing.assert_allclose(
            clone.decision_function(small_block),
            ae.decision_function(small_block),
        )

    def test_set_weights_builds_network(self, small_block):
        ae = AutoEncoder(epochs=1, seed=0).fit(small_block)
        fresh = AutoEncoder()
        fresh.set_weights(ae.get_weights())
        assert fresh.fitted
        assert fresh.network is not None

    def test_get_weights_before_fit_raises(self):
        with pytest.raises(ValidationError):
            AutoEncoder().get_weights()

    def test_refit_resets(self, small_block):
        ae = AutoEncoder(epochs=1, seed=0)
        ae.fit(small_block)
        ae.fit(small_block)
        assert len(ae.training_history) == 1
