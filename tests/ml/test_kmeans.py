"""Tests for streaming mini-batch k-means."""

import numpy as np
import pytest

from repro.ml import StreamingKMeans, roc_auc_score
from repro.ml.kmeans import kmeans_plus_plus
from repro.util.validation import ValidationError


class TestKMeansPlusPlus:
    def test_returns_k_centers(self, rng):
        X = rng.normal(size=(100, 4))
        centers = kmeans_plus_plus(X, 5, rng)
        assert centers.shape == (5, 4)

    def test_centers_are_data_points(self, rng):
        X = rng.normal(size=(50, 3))
        centers = kmeans_plus_plus(X, 4, rng)
        for c in centers:
            assert any(np.allclose(c, x) for x in X)

    def test_k_larger_than_n_rejected(self, rng):
        with pytest.raises(ValidationError):
            kmeans_plus_plus(rng.normal(size=(3, 2)), 5, rng)

    def test_degenerate_identical_points(self, rng):
        X = np.ones((20, 3))
        centers = kmeans_plus_plus(X, 4, rng)
        assert centers.shape == (4, 3)

    def test_spreads_over_separated_clusters(self, rng):
        # Two tight, far-apart clusters: k=2 seeding must hit both.
        a = rng.normal(0, 0.01, size=(50, 2))
        b = rng.normal(100, 0.01, size=(50, 2))
        X = np.vstack([a, b])
        centers = kmeans_plus_plus(X, 2, rng)
        assert abs(centers[0, 0] - centers[1, 0]) > 50


class TestStreamingKMeans:
    def test_fit_creates_centers(self, small_block):
        km = StreamingKMeans(n_clusters=5).fit(small_block)
        assert km.cluster_centers_.shape == (5, 8)

    def test_detects_injected_outliers(self):
        # Streaming usage (the paper's pattern): the model sees several
        # blocks before scoring, which washes out outlier-seeded centres.
        from repro.data import DataBlockGenerator, GeneratorConfig

        gen = DataBlockGenerator(
            GeneratorConfig(points=500, features=16, outlier_fraction=0.05, seed=9)
        )
        km = StreamingKMeans(n_clusters=25, seed=2)
        for _ in range(6):
            km.partial_fit(gen.next_block())
        X, y = gen.next_block(with_labels=True)
        auc = roc_auc_score(y, km.decision_function(X))
        assert auc > 0.95

    def test_streaming_updates_track_drift(self, rng):
        km = StreamingKMeans(n_clusters=1, seed=0)
        km.partial_fit(rng.normal(0.0, 0.1, size=(200, 2)))
        first = km.cluster_centers_[0].copy()
        for _ in range(30):
            km.partial_fit(rng.normal(5.0, 0.1, size=(200, 2)))
        moved = km.cluster_centers_[0]
        assert np.linalg.norm(moved - first) > 1.0

    def test_batch_update_is_running_mean(self):
        # One cluster: after fitting all data, the centre is the mean.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        km = StreamingKMeans(n_clusters=1, seed=0)
        km.partial_fit(X)
        np.testing.assert_allclose(km.cluster_centers_[0], X.mean(axis=0), atol=1e-8)

    def test_fewer_points_than_clusters_first_batch(self, rng):
        km = StreamingKMeans(n_clusters=10, seed=0)
        km.partial_fit(rng.normal(size=(4, 3)))
        assert km.cluster_centers_.shape == (10, 3)
        km.partial_fit(rng.normal(size=(50, 3)))  # later batches fill in

    def test_labels_assign_nearest(self, rng):
        a = rng.normal(0, 0.1, size=(50, 2))
        b = rng.normal(10, 0.1, size=(50, 2))
        km = StreamingKMeans(n_clusters=2, seed=1).fit(np.vstack([a, b]))
        labels = km.labels(np.vstack([a, b]))
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[-1]

    def test_inertia_decreases_with_more_clusters(self, rng):
        X = rng.normal(size=(300, 4))
        i2 = StreamingKMeans(n_clusters=2, seed=0).fit(X).inertia(X)
        i20 = StreamingKMeans(n_clusters=20, seed=0).fit(X).inertia(X)
        assert i20 < i2

    def test_weights_roundtrip(self, small_block):
        km = StreamingKMeans(n_clusters=4, seed=0).fit(small_block)
        weights = km.get_weights()
        km2 = StreamingKMeans(n_clusters=4)
        km2.set_weights(weights)
        np.testing.assert_array_equal(km2.cluster_centers_, km.cluster_centers_)
        scores1 = km.decision_function(small_block)
        scores2 = km2.decision_function(small_block)
        np.testing.assert_allclose(scores1, scores2)

    def test_set_weights_shape_validation(self):
        km = StreamingKMeans(n_clusters=4)
        with pytest.raises(ValidationError):
            km.set_weights({"cluster_centers": np.zeros((3, 2)), "counts": np.zeros(3)})

    def test_get_weights_before_fit_raises(self):
        with pytest.raises(ValidationError):
            StreamingKMeans().get_weights()

    def test_deterministic_given_seed(self, small_block):
        a = StreamingKMeans(n_clusters=5, seed=3).fit(small_block)
        b = StreamingKMeans(n_clusters=5, seed=3).fit(small_block)
        np.testing.assert_array_equal(a.cluster_centers_, b.cluster_centers_)

    def test_scores_are_distances(self, small_block):
        km = StreamingKMeans(n_clusters=3, seed=0).fit(small_block)
        scores = km.decision_function(small_block)
        assert (scores >= 0).all()

    def test_invalid_cluster_count(self):
        with pytest.raises(ValidationError):
            StreamingKMeans(n_clusters=0)
