"""Tests for the federated-learning extension."""

import numpy as np
import pytest

from repro.data import DataBlockGenerator, GeneratorConfig
from repro.ml import StreamingKMeans
from repro.ml.federated import (
    FedAvgAggregator,
    FederatedCoordinator,
    KMeansCoresetAggregator,
    local_kmeans_round,
)
from repro.params import ParameterClient, ParameterServer
from repro.util.validation import ValidationError


class TestFedAvgAggregator:
    def test_weighted_mean(self):
        agg = FedAvgAggregator()
        a = ([np.array([0.0, 0.0])], 1)
        b = ([np.array([3.0, 3.0])], 2)
        out = agg.aggregate([a, b])
        np.testing.assert_allclose(out[0], [2.0, 2.0])

    def test_equal_weights(self):
        agg = FedAvgAggregator()
        updates = [([np.full((2, 2), v)], 5) for v in (1.0, 3.0)]
        np.testing.assert_allclose(agg.aggregate(updates)[0], np.full((2, 2), 2.0))

    def test_multiple_arrays(self):
        agg = FedAvgAggregator()
        u1 = ([np.zeros(3), np.ones(2)], 1)
        u2 = ([np.ones(3) * 2, np.ones(2) * 3], 1)
        out = agg.aggregate([u1, u2])
        np.testing.assert_allclose(out[0], np.ones(3))
        np.testing.assert_allclose(out[1], np.full(2, 2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            FedAvgAggregator().aggregate([])

    def test_mismatched_architectures_rejected(self):
        u1 = ([np.zeros(3)], 1)
        u2 = ([np.zeros(4)], 1)
        with pytest.raises(ValidationError, match="mismatched"):
            FedAvgAggregator().aggregate([u1, u2])

    def test_zero_samples_rejected(self):
        with pytest.raises(ValidationError):
            FedAvgAggregator().aggregate([([np.zeros(2)], 0)])


class TestKMeansCoresetAggregator:
    def _site_model(self, center, n=200, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(center, 0.1, size=(n, 2))
        return StreamingKMeans(n_clusters=2, seed=seed).fit(X)

    def test_merges_site_centres(self):
        m1 = self._site_model((0.0, 0.0), seed=1)
        m2 = self._site_model((10.0, 10.0), seed=2)
        agg = KMeansCoresetAggregator(n_clusters=2, seed=0)
        merged = agg.aggregate([m1.get_weights(), m2.get_weights()])
        centers = merged["cluster_centers"]
        # One global centre near each site's data.
        d_origin = np.linalg.norm(centers, axis=1).min()
        d_far = np.linalg.norm(centers - 10.0, axis=1).min()
        assert d_origin < 1.0
        assert d_far < 1.0

    def test_counts_preserved(self):
        m1 = self._site_model((0, 0), n=100, seed=1)
        m2 = self._site_model((5, 5), n=300, seed=2)
        merged = KMeansCoresetAggregator(n_clusters=2, seed=0).aggregate(
            [m1.get_weights(), m2.get_weights()]
        )
        assert merged["counts"].sum() == 400

    def test_result_loadable_into_model(self):
        m1 = self._site_model((0, 0), seed=1)
        m2 = self._site_model((8, 8), seed=2)
        merged = KMeansCoresetAggregator(n_clusters=2, seed=0).aggregate(
            [m1.get_weights(), m2.get_weights()]
        )
        global_model = StreamingKMeans(n_clusters=2)
        global_model.set_weights(merged)
        assert global_model.fitted

    def test_pads_when_fewer_centres_than_k(self):
        m = self._site_model((0, 0), seed=1)
        merged = KMeansCoresetAggregator(n_clusters=10, seed=0).aggregate(
            [m.get_weights()]
        )
        assert merged["cluster_centers"].shape == (10, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            KMeansCoresetAggregator().aggregate([])


class TestFederatedCoordinator:
    @pytest.fixture
    def params(self):
        return ParameterClient(ParameterServer(), namespace="fl-test")

    def test_round_lifecycle(self, params):
        coord = FederatedCoordinator(
            params, KMeansCoresetAggregator(n_clusters=4, seed=0), ["us", "eu"]
        )
        assert coord.round_number == 0
        assert coord.pending_sites() == ["us", "eu"]

        rng = np.random.default_rng(0)
        for site, center in (("us", 0.0), ("eu", 6.0)):
            model = StreamingKMeans(n_clusters=4, seed=1)
            blocks = [rng.normal(center, 0.2, size=(100, 3)) for _ in range(3)]
            update = local_kmeans_round(model, blocks)
            coord.submit_update(site, update)

        assert coord.pending_sites() == []
        global_weights = coord.aggregate_round()
        assert coord.round_number == 1
        assert global_weights["cluster_centers"].shape == (4, 3)

    def test_aggregate_before_all_report_rejected(self, params):
        coord = FederatedCoordinator(
            params, KMeansCoresetAggregator(seed=0), ["a", "b"]
        )
        coord.submit_update("a", StreamingKMeans(n_clusters=25, seed=0).fit(
            np.random.default_rng(0).normal(size=(50, 2))
        ).get_weights())
        with pytest.raises(ValidationError, match="not reported"):
            coord.aggregate_round()

    def test_unknown_site_rejected(self, params):
        coord = FederatedCoordinator(params, FedAvgAggregator(), ["a"])
        with pytest.raises(ValidationError):
            coord.submit_update("ghost", None)

    def test_stale_updates_do_not_count_for_new_round(self, params):
        coord = FederatedCoordinator(
            params, KMeansCoresetAggregator(n_clusters=2, seed=0), ["a"]
        )
        weights = StreamingKMeans(n_clusters=2, seed=0).fit(
            np.random.default_rng(0).normal(size=(50, 2))
        ).get_weights()
        coord.submit_update("a", weights)
        coord.aggregate_round()
        # Round advanced; the old update is stale.
        assert coord.pending_sites() == ["a"]

    def test_fetch_global_blocks_until_available(self, params):
        import threading

        coord = FederatedCoordinator(
            params, KMeansCoresetAggregator(n_clusters=2, seed=0), ["a"]
        )
        weights = StreamingKMeans(n_clusters=2, seed=0).fit(
            np.random.default_rng(0).normal(size=(50, 2))
        ).get_weights()

        def trainer():
            coord.submit_update("a", weights)
            coord.aggregate_round()

        threading.Timer(0.02, trainer).start()
        result = coord.fetch_global(after_round=0, timeout=5.0)
        assert result is not None
        assert result["round"] == 1

    def test_multi_round_convergence(self, params):
        """Sites with disjoint data converge to shared global centres."""
        coord = FederatedCoordinator(
            params, KMeansCoresetAggregator(n_clusters=2, iterations=20, seed=0),
            ["us", "eu"],
        )
        rng = np.random.default_rng(3)
        models = {"us": StreamingKMeans(2, seed=1), "eu": StreamingKMeans(2, seed=2)}
        centers_by_site = {"us": -4.0, "eu": 4.0}
        global_weights = None
        for _ in range(3):
            for site, model in models.items():
                blocks = [
                    rng.normal(centers_by_site[site], 0.3, size=(80, 2))
                    for _ in range(2)
                ]
                update = local_kmeans_round(model, blocks, global_weights)
                coord.submit_update(site, update)
            global_weights = coord.aggregate_round()
        centers = np.sort(global_weights["cluster_centers"][:, 0])
        assert centers[0] == pytest.approx(-4.0, abs=1.0)
        assert centers[1] == pytest.approx(4.0, abs=1.0)
