"""Tests for the detector base class contract."""

import numpy as np
import pytest

from repro.ml import NotFittedError
from repro.ml.base import BaseOutlierDetector
from repro.util.validation import ValidationError


class _MeanDistanceDetector(BaseOutlierDetector):
    """Trivial concrete detector: score = distance to running mean."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self._sum = None
        self._n = 0

    def _reset(self):
        super()._reset()
        self._sum = None
        self._n = 0

    def _fit_batch(self, X):
        if self._sum is None:
            self._sum = X.sum(axis=0)
        else:
            self._sum += X.sum(axis=0)
        self._n += X.shape[0]

    def _score(self, X):
        mean = self._sum / self._n
        return np.linalg.norm(X - mean, axis=1)


@pytest.fixture
def det():
    return _MeanDistanceDetector(contamination=0.1)


class TestLifecycle:
    def test_unfitted_flags(self, det):
        assert not det.fitted
        assert det.n_features is None
        assert det.threshold is None

    def test_fit_sets_state(self, det, small_block):
        det.fit(small_block)
        assert det.fitted
        assert det.n_features == 8
        assert det.n_samples_seen == 100
        assert det.threshold is not None

    def test_score_before_fit_raises(self, det, small_block):
        with pytest.raises(NotFittedError):
            det.decision_function(small_block)

    def test_predict_before_fit_raises(self, det, small_block):
        with pytest.raises(NotFittedError):
            det.predict(small_block)

    def test_refit_resets_counts(self, det, small_block):
        det.fit(small_block)
        det.fit(small_block)
        assert det.n_samples_seen == 100

    def test_partial_fit_accumulates(self, det, small_block):
        det.partial_fit(small_block)
        det.partial_fit(small_block)
        assert det.n_samples_seen == 200

    def test_partial_fit_without_fit_bootstraps(self, det, small_block):
        det.partial_fit(small_block)
        assert det.fitted


class TestValidation:
    def test_rejects_1d(self, det):
        with pytest.raises(ValidationError):
            det.fit(np.zeros(10))

    def test_rejects_empty(self, det):
        with pytest.raises(ValidationError):
            det.fit(np.zeros((0, 4)))

    def test_rejects_nan(self, det):
        X = np.zeros((5, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValidationError):
            det.fit(X)

    def test_rejects_inf(self, det):
        X = np.zeros((5, 2))
        X[0, 0] = np.inf
        with pytest.raises(ValidationError):
            det.fit(X)

    def test_rejects_feature_mismatch_after_fit(self, det, small_block):
        det.fit(small_block)
        with pytest.raises(ValidationError, match="features"):
            det.decision_function(np.zeros((3, 5)))

    def test_rejects_bad_contamination(self):
        with pytest.raises(ValidationError):
            _MeanDistanceDetector(contamination=0.7)


class TestPredictions:
    def test_predict_binary(self, det, small_block):
        labels = det.fit_predict(small_block)
        assert set(np.unique(labels)) <= {0, 1}

    def test_contamination_controls_positive_rate(self, small_block):
        det = _MeanDistanceDetector(contamination=0.2)
        labels = det.fit_predict(small_block)
        # Quantile thresholding: roughly 20% flagged on the training data.
        assert 0.05 <= labels.mean() <= 0.35

    def test_repr_shows_state(self, det, small_block):
        assert "unfitted" in repr(det)
        det.fit(small_block)
        assert "fitted" in repr(det)
