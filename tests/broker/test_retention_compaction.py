"""Tests for time retention, compaction and offset-for-time lookup."""

import time

import pytest

from repro.broker import OffsetOutOfRangeError, PartitionLog


class TestTimeRetention:
    def test_old_records_dropped(self):
        log = PartitionLog("t", 0, retention_seconds=0.03)
        log.append(b"old")
        time.sleep(0.05)
        log.append(b"new")
        log.enforce_retention()
        records = log.fetch(log.earliest_offset, max_records=10)
        assert [r.value for r in records] == [b"new"]

    def test_retention_enforced_on_append(self):
        log = PartitionLog("t", 0, retention_seconds=0.02)
        log.append(b"a")
        time.sleep(0.04)
        log.append(b"b")  # append triggers retention of "a"
        assert log.earliest_offset == 1

    def test_head_offset_unaffected(self):
        log = PartitionLog("t", 0, retention_seconds=0.01)
        for _ in range(3):
            log.append(b"x")
        time.sleep(0.03)
        log.enforce_retention()
        assert log.latest_offset == 3

    def test_newest_record_always_kept(self):
        log = PartitionLog("t", 0, retention_seconds=0.01)
        log.append(b"only")
        time.sleep(0.03)
        log.enforce_retention()
        assert len(log) == 1


class TestCompaction:
    def test_keeps_latest_per_key(self):
        log = PartitionLog("t", 0)
        log.append(b"v1", key=b"k")
        log.append(b"v2", key=b"k")
        log.append(b"v3", key=b"k")
        removed = log.compact()
        assert removed == 2
        records = log.fetch(0, max_records=10)
        assert [r.value for r in records] == [b"v3"]
        assert records[0].offset == 2  # original offset preserved

    def test_keyless_records_survive(self):
        log = PartitionLog("t", 0)
        log.append(b"a", key=None)
        log.append(b"b", key=b"k")
        log.append(b"c", key=b"k")
        assert log.compact() == 1
        values = [r.value for r in log.fetch(0, max_records=10)]
        assert values == [b"a", b"c"]

    def test_fetch_across_compaction_gaps(self):
        log = PartitionLog("t", 0)
        for i in range(6):
            log.append(bytes([i]), key=b"k" if i < 5 else b"other")
        log.compact()
        # Surviving offsets: 4 (latest for k) and 5 (other).
        records = log.fetch(0, max_records=10)
        assert [r.offset for r in records] == [4, 5]
        # Fetch from a gap offset lands on the next surviving record.
        records = log.fetch(2, max_records=10)
        assert [r.offset for r in records] == [4, 5]

    def test_compaction_updates_size(self):
        log = PartitionLog("t", 0)
        log.append(b"x" * 100, key=b"k")
        log.append(b"y" * 50, key=b"k")
        log.compact()
        assert log.size_bytes == 51  # 50-byte value + 1-byte key

    def test_compaction_of_distinct_keys_removes_nothing(self):
        log = PartitionLog("t", 0)
        log.append(b"a", key=b"k1")
        log.append(b"b", key=b"k2")
        assert log.compact() == 0

    def test_offsets_still_monotonic_after_compaction(self):
        log = PartitionLog("t", 0)
        log.append(b"a", key=b"k")
        log.append(b"b", key=b"k")
        log.compact()
        md = log.append(b"c", key=b"k")
        assert md.offset == 2


class TestOffsetForTime:
    def test_finds_first_at_or_after(self):
        log = PartitionLog("t", 0)
        log.append(b"a")
        t_mid = time.monotonic()
        time.sleep(0.005)
        log.append(b"b")
        assert log.offset_for_time(0.0) == 0
        assert log.offset_for_time(t_mid) == 1

    def test_none_when_everything_older(self):
        log = PartitionLog("t", 0)
        log.append(b"a")
        assert log.offset_for_time(time.monotonic() + 100) is None

    def test_empty_log(self):
        log = PartitionLog("t", 0)
        assert log.offset_for_time(0.0) is None
