"""Tests for the reactor broker server: frame decoding, non-blocking
fetch probes, threadless long-poll parking, and deterministic shutdown."""

import socket
import threading
import time

import pytest

from repro.broker import Broker
from repro.broker.errors import OffsetOutOfRangeError
from repro.broker.partition import PartitionLog
from repro.broker.reactor import ReactorBrokerServer
from repro.broker.remote import BrokerServer, RemoteBroker, ThreadedBrokerServer
from repro.broker.wire import (
    LEN,
    FrameDecoder,
    encode_frame,
    recv_frame,
    send_frame,
)


def _wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def server():
    with ReactorBrokerServer() as srv:
        yield srv


def _connect(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class TestFrameDecoder:
    def test_byte_at_a_time_reassembly(self):
        wire = b"".join(encode_frame({"op": "stats", "cid": 7}))
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            decoder.feed(wire[i : i + 1])
            frame = decoder.next_frame()
            if frame is not None:
                frames.append(frame)
                assert i == len(wire) - 1  # only the last byte completes it
        assert frames == [({"op": "stats", "cid": 7}, [])]
        assert decoder.buffered_bytes == 0

    def test_multiple_frames_in_one_feed(self):
        wire = b"".join(encode_frame({"n": 1})) + b"".join(encode_frame({"n": 2}))
        decoder = FrameDecoder()
        decoder.feed(wire)
        assert decoder.next_frame() == ({"n": 1}, [])
        assert decoder.next_frame() == ({"n": 2}, [])
        assert decoder.next_frame() is None

    def test_blobs_roundtrip(self):
        blobs = [bytes(range(256)), b"", b"x" * 10_000]
        wire = b"".join(encode_frame({"op": "append_batch"}, blobs))
        decoder = FrameDecoder()
        # Split mid-blob to exercise the partial-blob state.
        decoder.feed(wire[:300])
        assert decoder.next_frame() is None
        decoder.feed(wire[300:])
        payload, got = decoder.next_frame()
        assert payload["op"] == "append_batch"
        assert got == blobs

    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(LEN.pack(2**31))
        with pytest.raises(ConnectionError):
            decoder.next_frame()

    def test_garbage_payload_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(LEN.pack(4) + b"\xff\xfe\xfd\xfc")
        with pytest.raises(ConnectionError):
            decoder.next_frame()


class TestPollFetch:
    def _log(self) -> PartitionLog:
        return PartitionLog("t", 0)

    def test_empty_log_unsatisfied(self):
        batch, satisfied = self._log().poll_fetch(0)
        assert batch == [] and not satisfied

    def test_single_record_satisfies_default(self):
        log = self._log()
        log.append(b"hello")
        batch, satisfied = log.poll_fetch(0)
        assert [r.value for r in batch] == [b"hello"] and satisfied

    def test_min_bytes_threshold(self):
        log = self._log()
        log.append(b"xx")
        batch, satisfied = log.poll_fetch(0, min_bytes=100)
        assert len(batch) == 1 and not satisfied
        log.append(b"y" * 200)
        _, satisfied = log.poll_fetch(0, min_bytes=100)
        assert satisfied

    def test_full_batch_satisfies_despite_min_bytes(self):
        log = self._log()
        for _ in range(3):
            log.append(b"z")
        _, satisfied = log.poll_fetch(0, max_records=3, min_bytes=10**9)
        assert satisfied

    def test_offset_out_of_range(self):
        with pytest.raises(OffsetOutOfRangeError):
            self._log().poll_fetch(5)


class TestReactorWirePath:
    def test_default_server_is_the_reactor(self):
        assert BrokerServer is ReactorBrokerServer

    def test_roundtrip_and_counters(self, server):
        with RemoteBroker(server.host, server.port) as remote:
            remote.create_topic("t", 1)
            md = remote.append("t", 0, b"payload", key=b"k")
            assert md.offset == 0
            [record] = remote.fetch("t", 0, 0)
            assert record.value == b"payload"
        assert server.connections_served >= 1
        assert server.requests_served >= 3
        assert server.op_counts.get("append") == 1

    def test_long_poll_parks_without_a_thread(self, server):
        server.broker.create_topic("t", 1)
        threads_before = threading.active_count()
        sock = _connect(server)
        try:
            send_frame(
                sock,
                {"op": "fetch", "topic": "t", "partition": 0, "offset": 0,
                 "timeout": 30.0, "cid": 1},
            )
            assert _wait_until(lambda: server.parked_fetches == 1)
            # Parked as reactor state: no thread was spawned for it, and
            # the broker-level counter sees it while it is parked.
            assert threading.active_count() == threads_before
            assert server.broker.stats()["long_polls_parked"] >= 1
            assert server.metrics()["parked_fetches"] == 1
            server.broker.append("t", 0, b"wake")
            response, _ = recv_frame(sock)
            assert response["ok"] and response["cid"] == 1
            assert len(response["result"]) == 1
            assert server.parked_fetches == 0
        finally:
            sock.close()

    def test_long_poll_deadline_returns_empty(self, server):
        server.broker.create_topic("t", 1)
        sock = _connect(server)
        try:
            t0 = time.monotonic()
            send_frame(
                sock,
                {"op": "fetch", "topic": "t", "partition": 0, "offset": 0,
                 "timeout": 0.2, "cid": 9},
            )
            sock.settimeout(5)
            response, _ = recv_frame(sock)
            assert response["ok"] and response["result"] == []
            assert time.monotonic() - t0 >= 0.15
        finally:
            sock.close()

    def test_parked_fetch_does_not_block_pipelined_requests(self, server):
        server.broker.create_topic("t", 1)
        sock = _connect(server)
        try:
            send_frame(
                sock,
                {"op": "fetch", "topic": "t", "partition": 0, "offset": 0,
                 "timeout": 30.0, "cid": 1},
            )
            assert _wait_until(lambda: server.parked_fetches == 1)
            # The same connection's append must get through — it is also
            # the append that wakes the parked fetch.
            send_frame(
                sock,
                {"op": "append", "topic": "t", "partition": 0,
                 "value": "d2FrZQ==", "cid": 2},
            )
            sock.settimeout(5)
            by_cid = {}
            for _ in range(2):
                response, _ = recv_frame(sock)
                by_cid[response["cid"]] = response
            assert by_cid[2]["ok"] and by_cid[2]["result"]["offset"] == 0
            assert by_cid[1]["ok"] and len(by_cid[1]["result"]) == 1
        finally:
            sock.close()

    def test_connection_gauges(self, server):
        assert server.connections_active == 0
        socks = [_connect(server) for _ in range(3)]
        try:
            for sock in socks:  # force the accept to have happened
                send_frame(sock, {"op": "list_topics"})
                recv_frame(sock)
            assert server.connections_active == 3
            metrics = server.metrics()
            assert metrics["connections_active"] == 3
            assert metrics["parked_fetches"] == 0
            assert metrics["reactor_loop_lag_s"] >= 0.0
        finally:
            for sock in socks:
                sock.close()
        assert _wait_until(lambda: server.connections_active == 0)

    def test_unknown_op_answered_not_dropped(self, server):
        sock = _connect(server)
        try:
            send_frame(sock, {"op": "definitely_not_an_op", "cid": 3})
            sock.settimeout(5)
            response, _ = recv_frame(sock)
            assert not response["ok"] and response["cid"] == 3
            assert "unknown op" in response["message"]
        finally:
            sock.close()


class TestDeterministicStop:
    def test_stop_leaks_no_threads(self):
        before = set(threading.enumerate())
        server = ReactorBrokerServer(num_workers=3).start()
        server.broker.create_topic("t", 1)
        socks = [_connect(server) for _ in range(4)]
        try:
            # One connection parks a long-poll that would outlive stop().
            send_frame(
                socks[0],
                {"op": "fetch", "topic": "t", "partition": 0, "offset": 0,
                 "timeout": 60.0},
            )
            assert _wait_until(lambda: server.parked_fetches == 1)
            server.stop()
            leaked = [
                t for t in set(threading.enumerate()) - before if t.is_alive()
            ]
            assert leaked == []
            # Clients observe EOF/reset, not a hang.
            for sock in socks:
                sock.settimeout(2)
                try:
                    assert sock.recv(1) == b""
                except OSError:
                    pass
        finally:
            for sock in socks:
                sock.close()

    def test_stop_without_start(self):
        server = ReactorBrokerServer()
        server.stop()  # no thread ever ran; must not raise or hang

    def test_stop_is_idempotent(self):
        server = ReactorBrokerServer().start()
        server.stop()
        server.stop()


class TestThreadedBaseline:
    def test_threaded_server_still_serves(self):
        with ThreadedBrokerServer() as srv:
            with RemoteBroker(srv.host, srv.port) as remote:
                remote.create_topic("t", 1)
                remote.append("t", 0, b"x")
                [record] = remote.fetch("t", 0, 0)
                assert record.value == b"x"
            assert srv.metrics()["requests_served"] >= 3
