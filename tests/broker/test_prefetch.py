"""Tests for the consumer-side prefetcher: delivery equivalence, buffer
invalidation (seek/rebalance), failure paths, and thread hygiene."""

import threading
import time

import pytest

from repro.broker import Broker, Consumer, Producer
from repro.broker.remote import BrokerServer, RemoteBroker
from repro.faults import FaultInjector


def _drain(consumer, expected, timeout=10.0, out=None):
    """Poll until *expected* records arrive (or the deadline passes)."""
    records = out if out is not None else []
    deadline = time.monotonic() + timeout
    while len(records) < expected and time.monotonic() < deadline:
        records.extend(consumer.poll(max_records=16, timeout=0.2))
    return records


def _prefetch_threads():
    return [t for t in threading.enumerate() if t.name.startswith("prefetch-")]


def _await_no_prefetch_threads(timeout=5.0):
    """Wait out fetcher threads from earlier (closed) consumers."""
    deadline = time.monotonic() + timeout
    while _prefetch_threads() and time.monotonic() < deadline:
        time.sleep(0.02)
    return _prefetch_threads()


class TestDeliveryEquivalence:
    def test_prefetch_delivers_same_records_in_order(self):
        broker = Broker()
        broker.create_topic("t", 2)
        producer = Producer(broker)
        for i in range(60):
            producer.send("t", bytes([i]), partition=i % 2)
        consumer = Consumer(broker, fetch_prefetch_batches=2)
        consumer.assign([("t", 0), ("t", 1)])
        records = _drain(consumer, 60)
        assert len(records) == 60
        # Per-partition order is preserved, no gaps, no duplicates.
        for p in (0, 1):
            offsets = [r.offset for r in records if r.partition == p]
            assert offsets == list(range(30))
        stats = consumer.stats()
        assert stats["prefetch_hits"] == 60
        consumer.close()

    def test_prefetch_blocking_poll_wakes_on_data(self):
        broker = Broker()
        broker.create_topic("t", 1)
        consumer = Consumer(broker, fetch_prefetch_batches=1, fetch_max_wait_ms=100.0)
        consumer.assign([("t", 0)])
        assert consumer.poll(timeout=0.05) == []  # start the fetcher

        def feed():
            time.sleep(0.1)
            Producer(broker).send("t", b"wake", partition=0)

        threading.Thread(target=feed).start()
        records = _drain(consumer, 1, timeout=5.0)
        assert [r.value for r in records] == [b"wake"]
        consumer.close()

    def test_byte_budget_backpressures_fetchers(self):
        broker = Broker()
        broker.create_topic("t", 1)
        producer = Producer(broker)
        for i in range(64):
            producer.send("t", bytes(100), partition=0)
        consumer = Consumer(
            broker, fetch_prefetch_batches=8, fetch_max_buffer_bytes=300
        )
        consumer.assign([("t", 0)])
        records = _drain(consumer, 64)
        assert len(records) == 64  # tiny budget slows, never stalls, delivery
        consumer.close()


class TestInvalidation:
    def test_seek_drops_buffered_records(self):
        broker = Broker()
        broker.create_topic("t", 1)
        producer = Producer(broker)
        for i in range(40):
            producer.send("t", bytes([i]), partition=0)
        consumer = Consumer(broker, fetch_prefetch_batches=4)
        consumer.assign([("t", 0)])
        first = _drain(consumer, 8)
        assert first  # fetcher is warmed up and ahead of the consumer
        consumer.seek("t", 0, 0)
        replay = _drain(consumer, 40)
        assert [r.offset for r in replay] == list(range(40))
        assert consumer.stats()["prefetch_evictions"] > 0
        consumer.close()

    def test_rebalance_drops_buffers_no_duplicates_past_commit(self):
        """When a second member joins, buffered records for revoked
        partitions are evicted; with commits after every poll, no record
        is delivered twice across the handover."""
        broker = Broker()
        broker.create_topic("t", 2)
        producer = Producer(broker)
        for i in range(80):
            producer.send("t", i.to_bytes(2, "big"), partition=i % 2)
        c1 = Consumer(broker, group_id="g", fetch_prefetch_batches=4)
        c2 = None
        try:
            c1.subscribe("t")
            delivered: list[tuple] = []
            # Warm up: c1 owns both partitions. Poll a little, then wait
            # for the fetchers to run ahead on BOTH partitions so the
            # coming revocation is guaranteed to find a buffer to evict.
            batch = c1.poll(max_records=4, timeout=0.5)
            delivered.extend((r.partition, r.offset) for r in batch)
            c1.commit()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with c1._prefetcher._cond:
                    buffers = {tp for tp, b in c1._prefetcher._buffers.items() if b}
                if buffers == {("t", 0), ("t", 1)}:
                    break
                time.sleep(0.01)
            assert buffers == {("t", 0), ("t", 1)}
            c2 = Consumer(broker, group_id="g", fetch_prefetch_batches=4)
            c2.subscribe("t")  # triggers a rebalance: one partition each
            deadline = time.monotonic() + 10.0
            while len(delivered) < 80 and time.monotonic() < deadline:
                for c in (c1, c2):
                    batch = c.poll(max_records=8, timeout=0.1)
                    delivered.extend((r.partition, r.offset) for r in batch)
                    c.commit()
            assert len(delivered) == 80
            assert len(set(delivered)) == 80  # exactly once across the handover
            assert c1.stats()["prefetch_evictions"] > 0
        finally:
            c1.close()
            if c2 is not None:
                c2.close()


class TestFailurePaths:
    def test_reconnect_mid_prefetch_replays_only_idempotent_fetches(self):
        """A socket kill mid-prefetch is absorbed by the transport's
        replay of the (idempotent) fetch; delivery stays exactly-once."""
        with BrokerServer() as server:
            with RemoteBroker(server.host, server.port) as remote:
                remote.create_topic("t", 1)
                producer = Producer(remote)
                for i in range(32):
                    producer.send("t", bytes([i]), partition=0)
                injector = FaultInjector(seed=1)
                injector.kill_socket_once(op="fetch_batch")
                remote.fault_injector = injector
                consumer = Consumer(remote, fetch_prefetch_batches=2)
                consumer.assign([("t", 0)])
                records = _drain(consumer, 32)
                assert [r.offset for r in records] == list(range(32))
                assert remote.reconnects == 1
                consumer.close()

    def test_close_joins_fetcher_threads(self):
        assert _await_no_prefetch_threads() == []  # no leftovers from other tests
        broker = Broker()
        broker.create_topic("t", 3)
        producer = Producer(broker)
        for p in range(3):
            producer.send("t", b"x", partition=p)
        before = threading.active_count()
        consumer = Consumer(broker, fetch_prefetch_batches=2, fetch_max_wait_ms=100.0)
        consumer.assign([("t", 0), ("t", 1), ("t", 2)])
        _drain(consumer, 3)
        assert len(_prefetch_threads()) == 3
        consumer.close()
        assert _await_no_prefetch_threads() == []
        assert threading.active_count() <= before

    def test_prefetch_disabled_spawns_no_threads(self):
        assert _await_no_prefetch_threads() == []
        broker = Broker()
        broker.create_topic("t", 1)
        Producer(broker).send("t", b"x", partition=0)
        consumer = Consumer(broker)
        consumer.assign([("t", 0)])
        assert len(consumer.poll(max_records=4)) == 1
        assert _prefetch_threads() == []
        consumer.close()
