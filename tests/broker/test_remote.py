"""Tests for the TCP broker transport."""

import threading

import numpy as np
import pytest

from repro.broker import BlockSerde, Broker, Consumer, Producer
from repro.broker.remote import BrokerServer, RemoteBroker, RemoteBrokerError


@pytest.fixture
def server():
    with BrokerServer() as srv:
        yield srv


@pytest.fixture
def remote(server):
    with RemoteBroker(server.host, server.port) as rb:
        yield rb


class TestTransport:
    def test_create_and_list_topics(self, remote):
        remote.create_topic("t", 3)
        assert remote.list_topics() == ["t"]
        assert remote.topic("t").num_partitions == 3

    def test_append_fetch_roundtrip(self, remote):
        remote.create_topic("t", 1)
        md = remote.append("t", 0, b"payload", key=b"k", headers={"h": 1})
        assert md.offset == 0
        [record] = remote.fetch("t", 0, 0)
        assert record.value == b"payload"
        assert record.key == b"k"
        assert record.headers == {"h": 1}

    def test_binary_safety(self, remote):
        remote.create_topic("t", 1)
        payload = bytes(range(256)) * 4
        remote.append("t", 0, payload)
        [record] = remote.fetch("t", 0, 0)
        assert record.value == payload

    def test_offsets(self, remote):
        remote.create_topic("t", 1)
        remote.append("t", 0, b"x")
        assert remote.earliest_offset("t", 0) == 0
        assert remote.latest_offset("t", 0) == 1

    def test_commits(self, remote):
        remote.create_topic("t", 1)
        remote.commit_offset("g", "t", 0, 7)
        assert remote.committed_offset("g", "t", 0) == 7
        assert remote.committed_offset("other", "t", 0) is None

    def test_server_errors_propagate(self, remote):
        with pytest.raises(RemoteBrokerError, match="UnknownTopicError"):
            remote.fetch("missing", 0, 0)

    def test_blocking_fetch_over_the_wire(self, remote, server):
        remote.create_topic("t", 1)
        results = []

        def consume():
            with RemoteBroker(server.host, server.port) as rb:
                results.extend(rb.fetch("t", 0, 0, timeout=5.0))

        t = threading.Thread(target=consume)
        t.start()
        import time

        time.sleep(0.05)
        remote.append("t", 0, b"wake")
        t.join(timeout=10)
        assert len(results) == 1

    def test_stats_roundtrip(self, remote):
        remote.create_topic("t", 1)
        remote.append("t", 0, b"abc")
        stats = remote.stats()
        assert stats["topics"]["t"]["records_in"] == 1


class TestClientsOverRemote:
    def test_producer_works_unchanged(self, remote):
        remote.create_topic("t", 2)
        producer = Producer(remote)
        md = producer.send("t", b"v", partition=1)
        assert md.partition == 1
        assert producer.records_sent == 1

    def test_block_serde_over_the_wire(self, remote):
        remote.create_topic("t", 1)
        block = np.arange(20.0).reshape(4, 5)
        Producer(remote, serde=BlockSerde()).send("t", block, partition=0)
        consumer = Consumer(remote, serde=BlockSerde())
        consumer.assign([("t", 0)])
        [decoded] = consumer.poll_values()
        np.testing.assert_array_equal(decoded, block)

    def test_consumer_group_over_remote(self, server):
        # Two separate connections (as two processes would have).
        with RemoteBroker(server.host, server.port) as admin:
            admin.create_topic("t", 4)
            producer = Producer(admin)
            for i in range(8):
                producer.send("t", bytes([i]), partition=i % 4)
        with RemoteBroker(server.host, server.port) as conn1, RemoteBroker(
            server.host, server.port
        ) as conn2:
            c1 = Consumer(conn1, group_id="g")
            c1.subscribe("t")
            c2 = Consumer(conn2, group_id="g")
            c2.subscribe("t")
            seen = []
            for _ in range(8):
                seen.extend(r.value for r in c1.poll(max_records=16))
                seen.extend(r.value for r in c2.poll(max_records=16))
            assert sorted(seen) == [bytes([i]) for i in range(8)]
            # Rebalanced split: two partitions each.
            assert len(c1.assignment) == 2
            assert len(c2.assignment) == 2

    def test_commit_resume_over_remote(self, server):
        with RemoteBroker(server.host, server.port) as conn:
            conn.create_topic("t", 1)
            producer = Producer(conn)
            for i in range(6):
                producer.send("t", bytes([i]), partition=0)
            c1 = Consumer(conn, group_id="g")
            c1.subscribe("t")
            c1.poll(max_records=3)
            c1.commit()
            c1.close()
        with RemoteBroker(server.host, server.port) as conn:
            c2 = Consumer(conn, group_id="g")
            c2.subscribe("t")
            records = c2.poll(max_records=10)
            assert [r.offset for r in records] == [3, 4, 5]

    def test_shared_server_backed_by_real_broker(self):
        backing = Broker(name="shared")
        with BrokerServer(broker=backing) as server:
            with RemoteBroker(server.host, server.port) as remote:
                remote.create_topic("t", 1)
                remote.append("t", 0, b"x")
            # The in-process view sees the remote writes.
            assert backing.topic("t").total_appended == 1


class TestBatchedWire:
    """The batched binary-frame fast path: one round-trip per batch."""

    def test_append_many_roundtrip(self, remote):
        remote.create_topic("t", 1)
        values = [bytes([i]) * (i + 1) for i in range(8)]
        keys = [None if i % 2 else bytes([i]) for i in range(8)]
        headers = [{"i": i} for i in range(8)]
        md = remote.append_many("t", 0, values, keys=keys, headers=headers)
        assert md.base_offset == 0
        assert md.count == 8
        records = remote.fetch("t", 0, 0, max_records=16)
        assert [r.value for r in records] == values
        assert [r.key for r in records] == keys
        assert [r.headers for r in records] == headers

    def test_append_many_binary_safety(self, remote):
        remote.create_topic("t", 1)
        payload = bytes(range(256)) * 8
        remote.append_many("t", 0, [payload, payload])
        records = remote.fetch("t", 0, 0, max_records=4)
        assert [r.value for r in records] == [payload, payload]

    def test_batch_is_one_round_trip(self, server, remote):
        remote.create_topic("t", 1)
        sent_before = remote.requests_sent
        served_before = server.requests_served
        md = remote.append_many("t", 0, [b"v"] * 32)
        assert md.count == 32
        # 32 records cost exactly one request on both ends of the socket.
        assert remote.requests_sent - sent_before == 1
        assert server.requests_served - served_before == 1
        assert server.op_counts["append_batch"] == 1
        assert "append" not in server.op_counts

    def test_fetch_batch_is_one_round_trip(self, server, remote):
        remote.create_topic("t", 1)
        remote.append_many("t", 0, [b"v"] * 16)
        sent_before = remote.requests_sent
        records = remote.fetch("t", 0, 0, max_records=16)
        assert len(records) == 16
        assert remote.requests_sent - sent_before == 1
        assert server.op_counts["fetch_batch"] == 1
        assert "fetch" not in server.op_counts

    def test_producer_send_many_over_remote(self, server, remote):
        remote.create_topic("t", 2)
        producer = Producer(remote)
        served_before = server.requests_served
        md = producer.send_many("t", [b"a", b"b", b"c"], partition=1)
        assert md.partition == 1
        assert list(md.offsets) == [0, 1, 2]
        assert producer.records_sent == 3
        assert server.requests_served - served_before == 1

    def test_empty_log_fetch_batch(self, remote):
        remote.create_topic("t", 1)
        assert remote.fetch("t", 0, 0) == []

    def test_batch_larger_than_iov_max(self, remote):
        # >512 records means >1024 iovec entries; sendmsg must slice at
        # IOV_MAX instead of failing with EMSGSIZE.
        remote.create_topic("t", 1)
        md = remote.append_many("t", 0, [b"v"] * 1500)
        assert md.count == 1500
        records = remote.fetch("t", 0, 100, max_records=2000)
        assert len(records) == 1400
        assert records[0].offset == 100
