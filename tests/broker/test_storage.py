"""Durable segment-backed partition logs: codec, store, recovery, tiering."""

import os

import pytest

from repro.broker import OffsetOutOfRangeError, PartitionLog
from repro.broker.message import Record
from repro.broker.storage import (
    PilotDataOffloader,
    SegmentStore,
    StorageConfig,
    StorageError,
    TornWriteError,
)
from repro.broker.storage.segment import (
    INDEX_SUFFIX,
    decode_batch,
    encode_batch,
    read_batch_info,
    scan_batches,
)
from repro.faults import FaultInjector
from repro.pilotdata import PilotDataService
from repro.util.validation import ValidationError

# Slow flusher + no urgent-flush threshold: tests control flush timing
# explicitly via store.flush(), so nothing races in the background.
MANUAL = StorageConfig(
    segment_bytes=100 * 1024 * 1024, flush_ms=60_000.0, flush_bytes=1 << 30
)


def make_records(base, values, topic="t", partition=0, key=None, headers=None):
    return [
        Record(topic, partition, base + i, v, key, dict(headers or {}), 1.0, 2.0)
        for i, v in enumerate(values)
    ]


def make_store(tmp_path, name="t-0", config=MANUAL, topic="t", partition=0):
    return SegmentStore(str(tmp_path / name), topic, partition, config=config)


class TestSegmentCodec:
    def test_roundtrip_preserves_records_and_metadata(self):
        records = make_records(
            7, [b"alpha", b"", b"gamma" * 100], key=b"k", headers={"h": 1}
        )
        buffers, nbytes = encode_batch(
            records, producer_id=3, producer_epoch=2, base_sequence=40, write_ts=9.5
        )
        blob = b"".join(bytes(b) for b in buffers)
        assert len(blob) == nbytes
        info = read_batch_info(blob, 0, len(blob), verify_crc=True)
        assert info is not None
        assert (info.base_offset, info.count) == (7, 3)
        assert (info.producer_id, info.producer_epoch, info.base_sequence) == (3, 2, 40)
        assert info.write_ts == 9.5
        out = decode_batch(blob, info, "t", 0)
        assert [r.offset for r in out] == [7, 8, 9]
        assert [bytes(r.value) for r in out] == [b"alpha", b"", b"gamma" * 100]
        assert out[0].key == b"k" and out[0].headers == {"h": 1}
        assert out[1].produce_ts == 1.0 and out[1].append_ts == 2.0

    def test_scan_stops_at_torn_tail(self):
        b1, _ = encode_batch(make_records(0, [b"one"]))
        b2, _ = encode_batch(make_records(1, [b"two"]))
        blob = b"".join(bytes(b) for b in b1) + b"".join(bytes(b) for b in b2)
        torn = blob[:-3]  # body runs past EOF
        infos = list(scan_batches(torn, 0, len(torn), verify_crc=True))
        assert [i.base_offset for i in infos] == [0]

    def test_crc_mismatch_detected(self):
        buffers, nbytes = encode_batch(make_records(0, [b"payload"]))
        blob = bytearray(b"".join(bytes(b) for b in buffers))
        blob[-1] ^= 0xFF
        assert read_batch_info(blob, 0, nbytes, verify_crc=True) is None
        # Without CRC verification the framing still parses.
        assert read_batch_info(blob, 0, nbytes) is not None


class TestSegmentStore:
    def test_append_flush_read_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        store.append_batch(make_records(0, [b"a", b"b"]))
        store.append_batch(make_records(2, [b"c"]))
        assert store.next_offset == 3
        assert store.flushed_offset == 0  # nothing flushed yet
        store.flush()
        assert store.flushed_offset == 3
        # All data still in the active segment: reads come from the deque
        # layer above, not the store.
        assert store.read(0, 10) == []
        store.close()

    def test_roll_seals_and_mmap_read_is_zero_copy(self, tmp_path):
        config = StorageConfig(
            segment_bytes=256, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        store = make_store(tmp_path, config=config)
        for i in range(6):
            store.append_batch(make_records(i * 4, [b"x" * 50] * 4))
            store.flush()
        assert store.counters["segments_sealed"] >= 2
        assert store.active_base > 0
        out = store.read(0, store.active_base)
        assert [r.offset for r in out] == list(range(store.active_base))
        # Sealed reads are memoryview slices of the mapping (zero-copy).
        assert isinstance(out[0].value, memoryview)
        assert bytes(out[0].value) == b"x" * 50
        store.close()

    def test_wait_durable_blocks_until_flush(self, tmp_path):
        store = make_store(tmp_path)
        store.append_batch(make_records(0, [b"v"]))
        assert store.wait_durable(1, timeout=0.05) is False
        store.flush()
        assert store.wait_durable(1, timeout=0.05) is True
        store.close()

    def test_recovery_empty_active_segment(self, tmp_path):
        store = make_store(tmp_path)
        store.close()  # creates an empty active segment file
        again = make_store(tmp_path)
        assert again.recovered.next_offset == 0
        assert again.recovered.records == []
        assert again.recovered.scan_bytes == 0
        again.close()

    def test_recovery_truncates_crc_corrupt_tail(self, tmp_path):
        store = make_store(tmp_path)
        store.append_batch(make_records(0, [b"good"] * 3))
        store.flush()
        store.append_batch(make_records(3, [b"bad"] * 2))
        store.flush()
        path = store._active_path
        store.close()
        # Corrupt the last byte: the final batch fails its CRC.
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0xFF]))
        again = make_store(tmp_path)
        assert again.recovered.next_offset == 3
        assert [bytes(r.value) for r in again.recovered.records] == [b"good"] * 3
        assert again.recovered.truncated_bytes > 0
        # The file itself was truncated, so a further restart is clean.
        assert os.path.getsize(path) == again.recovered.scan_bytes - again.recovered.truncated_bytes
        again.close()

    def test_recovery_rebuilds_missing_index(self, tmp_path):
        config = StorageConfig(
            segment_bytes=200, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        store = make_store(tmp_path, config=config)
        for i in range(8):
            store.append_batch(make_records(i * 2, [b"y" * 40] * 2))
            store.flush()
        sealed_before = store.counters["segments_sealed"]
        assert sealed_before >= 2
        directory = store.directory
        store.close()
        for name in os.listdir(directory):
            if name.endswith(INDEX_SUFFIX):
                os.unlink(os.path.join(directory, name))
        again = make_store(tmp_path, config=config)
        out = again.read(0, again.active_base)
        assert [r.offset for r in out] == list(range(again.active_base))
        assert again.counters["index_rebuilds"] >= 1
        # The rebuilt indexes were written back for the next boot.
        assert any(
            name.endswith(INDEX_SUFFIX) for name in os.listdir(directory)
        )
        again.close()

    def test_torn_write_injection_and_recovery(self, tmp_path):
        store = make_store(tmp_path)
        store.append_batch(make_records(0, [b"acked"] * 2))
        store.flush()
        store.append_batch(make_records(2, [b"doomed"] * 2))
        injector = FaultInjector()
        injector.torn_write_next(op="t/0")
        store.fault_injector = injector
        with pytest.raises(TornWriteError):
            store.flush()
        assert injector.fired.get("torn") == 1
        # The store is failed: appends and durability waits refuse.
        with pytest.raises(StorageError):
            store.append_batch(make_records(4, [b"z"]))
        store.close()
        again = make_store(tmp_path)
        # The flushed batch survived; the torn one was CRC-truncated.
        assert again.recovered.next_offset == 2
        assert again.recovered.truncated_bytes > 0
        assert [bytes(r.value) for r in again.recovered.records] == [b"acked"] * 2
        again.close()

    def test_truncate_within_active_segment(self, tmp_path):
        store = make_store(tmp_path)
        store.append_batch(make_records(0, [b"a"] * 4))
        store.append_batch(make_records(4, [b"b"] * 4))
        store.flush()
        assert store.truncate_to(6) is None  # mid-batch: prefix survives
        assert store.next_offset == 6
        store.append_batch(make_records(6, [b"c"]))
        store.flush()
        again_path = store.directory
        store.close()
        again = SegmentStore(again_path, "t", 0, config=MANUAL)
        assert again.recovered.next_offset == 7
        assert [bytes(r.value) for r in again.recovered.records] == (
            [b"a"] * 4 + [b"b"] * 2 + [b"c"]
        )
        again.close()

    def test_truncate_unwinds_sealed_segments(self, tmp_path):
        config = StorageConfig(
            segment_bytes=120, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        store = make_store(tmp_path, config=config)
        for i in range(5):
            store.append_batch(make_records(i * 2, [b"s" * 40] * 2))
            store.flush()
        assert store.active_base >= 4
        survivors = store.truncate_to(3)
        # The segment containing the cut was unwound: its records below
        # the cut survive and become the new active segment's content.
        assert survivors is not None
        assert [r.offset for r in survivors] == [2]
        assert store.next_offset == 3
        store.append_batch(make_records(3, [b"new"]))
        store.flush()
        assert store.next_offset == 4
        store.close()

    def test_retention_drops_sealed_segments_and_offloads(self, tmp_path):
        config = StorageConfig(
            segment_bytes=150, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        store = make_store(tmp_path, config=config)
        service = PilotDataService()
        service.register_site("cloud", capacity_bytes=10**9)
        offloader = PilotDataOffloader(service, "cloud")
        store.on_evict = offloader
        for i in range(10):
            store.append_batch(make_records(i * 2, [b"r" * 40] * 2))
            store.flush()
        dropped, new_base = store.enforce_retention(300, 0.0)
        assert dropped > 0 and new_base > 0
        assert store.earliest_offset == new_base
        assert store.counters["segments_deleted"] >= 1
        assert offloader.offloaded_segments == store.counters["segments_offloaded"] > 0
        # Each evicted segment became one pilot-data unit at the site,
        # and its bytes decode back into a scannable segment file.
        stats = service.stats()
        assert stats["units"] == offloader.offloaded_segments
        unit = service.get(f"segments/t-0/{0:020d}")
        blob = PilotDataOffloader.segment_bytes(unit)
        infos = list(scan_batches(blob, 0, len(blob), verify_crc=True))
        assert infos and infos[0].base_offset == 0
        store.close()


class TestDurablePartitionLog:
    def test_restart_preserves_log_and_offsets(self, tmp_path):
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=MANUAL)
        log.append_many([b"m%d" % i for i in range(20)])
        log.storage.flush()
        log.close()
        again = PartitionLog("t", 0, log_dir=str(tmp_path), storage=MANUAL)
        assert again.latest_offset == 20
        assert len(again) == 20
        out = again.fetch(0, max_records=100)
        assert [bytes(r.value) for r in out] == [b"m%d" % i for i in range(20)]
        again.close()

    def test_unflushed_tail_is_lost_but_flushed_prefix_survives(self, tmp_path):
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=MANUAL)
        log.append_many([b"durable"] * 5)
        log.storage.flush()
        log.append_many([b"volatile"] * 5)
        # Simulate a crash: discard the un-flushed tail before closing
        # (close() would flush it; a SIGKILL does not).
        store = log.storage
        with store._lock:
            store._pending = []
            store._pending_bytes = 0
        log.close()
        again = PartitionLog("t", 0, log_dir=str(tmp_path), storage=MANUAL)
        assert again.latest_offset == 5
        assert [bytes(r.value) for r in again.fetch(0, 100)] == [b"durable"] * 5
        again.close()

    def test_fsync_acks_makes_append_durable_before_return(self, tmp_path):
        config = StorageConfig(flush_ms=5.0, fsync_acks=True)
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        log.append_many([b"synced"] * 3)
        # The ack implies the data is already on disk: no explicit flush.
        assert log.storage.flushed_offset == 3
        log.close()
        again = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        assert again.latest_offset == 3
        again.close()

    def test_producer_dedup_survives_restart(self, tmp_path):
        config = StorageConfig(flush_ms=5.0, fsync_acks=True)
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        first = log.append_many(
            [b"v1", b"v2"], producer_id=7, producer_epoch=1, base_sequence=0
        )
        log.close()
        again = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        # The retried batch must ack with its ORIGINAL offsets, not append.
        replay = again.append_many(
            [b"v1", b"v2"], producer_id=7, producer_epoch=1, base_sequence=0
        )
        assert [r.offset for r in replay] == [r.offset for r in first]
        assert again.latest_offset == 2
        assert again.duplicates_dropped == 2
        again.close()

    def test_fetch_merges_sealed_and_active(self, tmp_path):
        config = StorageConfig(
            segment_bytes=300, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        for i in range(10):
            log.append_many([b"z" * 40] * 3)
            log.storage.flush()
        # One final append without a flush, so the deque eviction catches
        # up with the last seal and the hot tail is non-empty.
        log.append_many([b"z" * 40] * 3)
        total = 33
        assert log.storage.counters["segments_sealed"] >= 2
        boundary = log.storage.active_base
        assert 0 < boundary < total
        out = log.fetch(0, max_records=100)
        assert [r.offset for r in out] == list(range(total))
        # Below the boundary: zero-copy views off the mmap; above: the
        # deque's original bytes.
        assert isinstance(out[0].value, memoryview)
        assert isinstance(out[-1].value, bytes)
        # The deque only holds the active tail (memory stays bounded).
        assert log._records[0].offset == boundary
        log.close()

    def test_restart_with_retention_already_exceeded(self, tmp_path):
        config = StorageConfig(
            segment_bytes=200, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        for i in range(10):
            log.append_many([b"w" * 50] * 2)
            log.storage.flush()
        end = log.latest_offset
        log.close()
        # Reopen with a cap the existing files already blow through.
        again = PartitionLog(
            "t", 0, retention_bytes=400, log_dir=str(tmp_path), storage=config
        )
        assert again.latest_offset == end
        assert again.earliest_offset > 0
        assert again.storage.counters["segments_deleted"] >= 1
        out = again.fetch(again.earliest_offset, max_records=100)
        assert [r.offset for r in out] == list(range(again.earliest_offset, end))
        with pytest.raises(OffsetOutOfRangeError):
            again.fetch(0, max_records=1)
        again.close()

    def test_truncate_durable_across_sealed(self, tmp_path):
        config = StorageConfig(
            segment_bytes=200, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        for i in range(8):
            log.append_many([b"q" * 50] * 2)
            log.storage.flush()
        assert log.storage.active_base > 3
        removed = log.truncate_to(3)
        assert removed == 13
        assert log.latest_offset == 3
        assert [r.offset for r in log.fetch(0, 100)] == [0, 1, 2]
        # Appends continue at the cut, and a restart agrees.
        log.append_many([b"after"])
        log.storage.flush()
        log.close()
        again = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        assert again.latest_offset == 4
        assert bytes(again.fetch(3, 1)[0].value) == b"after"
        again.close()

    def test_compaction_refused_on_durable_logs(self, tmp_path):
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=MANUAL)
        with pytest.raises(ValidationError):
            log.compact()
        log.close()

    def test_offset_for_time_spans_sealed_segments(self, tmp_path):
        config = StorageConfig(
            segment_bytes=150, flush_ms=60_000.0, flush_bytes=1 << 30
        )
        log = PartitionLog("t", 0, log_dir=str(tmp_path), storage=config)
        import time as _time

        stamps = []
        for i in range(6):
            stamps.append(_time.monotonic())
            log.append_many([b"ts" * 30] * 2)
            log.storage.flush()
        assert log.storage.counters["segments_sealed"] >= 1
        # A timestamp just before batch i must land on offset 2*i even
        # when that offset lives in a sealed segment.
        assert log.offset_for_time(stamps[1]) == 2
        assert log.offset_for_time(0.0) == 0
        log.close()
