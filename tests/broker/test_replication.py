"""In-process replication tests: leaders, followers, ISR, high-watermark.

A miniature cluster — N :class:`ShardBroker` instances each behind a
:class:`ReactorBrokerServer` in *this* process — exercises the
replication pump deterministically: the fault injector's
``partition_link`` severs leader→follower traffic without killing
anything, so ISR eviction, acks=all timeouts, and readmission are
observable without multiprocess chaos (that lives in
``tests/integration/test_failover_chaos.py``).
"""

import time

import pytest

from repro.broker import (
    Broker,
    ClusterBroker,
    ClusterMetadata,
    NotEnoughReplicasError,
    Producer,
    ShardBroker,
    StaleLeaderEpochError,
    replica_indices,
    shard_for_partition,
)
from repro.broker.errors import is_retriable
from repro.broker.reactor import ReactorBrokerServer
from repro.faults import FaultInjected, FaultInjector

TOPIC = "t"
PARTITIONS = 2


def _wait_until(predicate, timeout: float = 10.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _MiniCluster:
    """N replicated shards, servers and replication pumps running."""

    def __init__(self, num_shards: int = 2, replication_factor: int = 2):
        self.brokers = []
        self.servers = []
        for index in range(num_shards):
            broker = ShardBroker(
                shard_index=index,
                num_shards=num_shards,
                replication_factor=replication_factor,
            )
            broker.create_topic(TOPIC, num_partitions=PARTITIONS, exist_ok=True)
            server = ReactorBrokerServer(
                broker, host="127.0.0.1", port=0, num_workers=2
            )
            server.start()
            self.brokers.append(broker)
            self.servers.append(server)
        self.addresses = [(s.host, s.port) for s in self.servers]
        for broker in self.brokers:
            broker.set_cluster(self.addresses, 1)
            broker.start_replication()

    def leader_of(self, partition: int) -> ShardBroker:
        return self.brokers[shard_for_partition(TOPIC, partition, len(self.brokers))]

    def follower_of(self, partition: int) -> ShardBroker:
        leader = shard_for_partition(TOPIC, partition, len(self.brokers))
        followers = [
            i
            for i in replica_indices(
                TOPIC, partition, len(self.brokers), self.brokers[0].replication_factor
            )
            if i != leader
        ]
        return self.brokers[followers[0]]

    def log(self, broker: ShardBroker, partition: int):
        # Base-class access: follower logs are guarded on the shard surface.
        return Broker.partition_log(broker, TOPIC, partition)

    def isr_of(self, partition: int) -> list:
        for part in self.leader_of(partition).replication_status()["partitions"]:
            if part["partition"] == partition:
                return part["isr"]
        return []

    def close(self):
        for broker in self.brokers:
            broker.stop_replication()
        for server in self.servers:
            server.stop()


@pytest.fixture()
def mini():
    cluster = _MiniCluster()
    yield cluster
    cluster.close()


class TestReplicaAssignment:
    def test_consecutive_slots_capped_at_num_shards(self):
        assert replica_indices("a", 0, 1, 3) == (0,)
        first = shard_for_partition("a", 0, 4)
        assert replica_indices("a", 0, 4, 2) == (first, (first + 1) % 4)
        assert len(set(replica_indices("a", 0, 3, 5))) == 3

    def test_leader_defaults_to_hash_slot(self):
        meta = ClusterMetadata(
            epoch=1, shards=(("h", 1), ("h", 2)), replication_factor=2
        )
        assert meta.leader_index("a", 0) == shard_for_partition("a", 0, 2)
        assert meta.partition_epoch("a", 0) == 0

    def test_leader_override_and_wire_roundtrip(self):
        meta = ClusterMetadata(
            epoch=3,
            shards=(("h", 1), ("h", 2)),
            replication_factor=2,
            leaders=(("a", 0, 1, 2),),
        )
        assert meta.leader_index("a", 0) == 1
        assert meta.partition_epoch("a", 0) == 2
        again = ClusterMetadata.from_wire(meta.to_wire())
        assert again == meta

    def test_unreplicated_wire_schema_unchanged(self):
        meta = ClusterMetadata(epoch=1, shards=(("h", 1),))
        wire = meta.to_wire()
        assert "replication_factor" not in wire
        assert "leaders" not in wire


class TestHighWatermarkGating:
    def test_records_replicate_and_become_visible(self, mini):
        leader = mini.leader_of(0)
        leader.append_many(TOPIC, 0, [b"a", b"b", b"c"], acks="all")
        follower_log = mini.log(mini.follower_of(0), 0)
        assert follower_log.latest_offset == 3
        assert follower_log.high_watermark == 3 or _wait_until(
            lambda: follower_log.high_watermark == 3
        )
        assert [r.value for r in leader.fetch(TOPIC, 0, 0, max_records=10)] == [
            b"a",
            b"b",
            b"c",
        ]

    def test_unreplicated_records_stay_invisible_until_link_heals(self, mini):
        leader = mini.leader_of(0)
        injector = FaultInjector()
        leader.append_many(TOPIC, 0, [b"seed"], acks="all")
        assert _wait_until(lambda: len(mini.isr_of(0)) == 2)
        # Hold membership: only the link drops, nobody gets evicted.
        leader._replicator.isr_timeout_s = 60.0
        leader.fault_injector = injector
        injector.partition_link(0, 1)
        leader.append_many(TOPIC, 0, [b"dark1", b"dark2"])  # leader-acked
        assert mini.log(leader, 0).latest_offset == 3
        # Consumers see only ISR-covered records: nothing past the seed.
        assert leader.latest_offset(TOPIC, 0) == 1
        assert leader.fetch(TOPIC, 0, 1, max_records=10) == []
        injector.heal_link(0, 1)
        assert _wait_until(lambda: leader.latest_offset(TOPIC, 0) == 3)
        assert [r.value for r in leader.fetch(TOPIC, 0, 1, max_records=10)] == [
            b"dark1",
            b"dark2",
        ]

    def test_acks_all_times_out_retriably_when_isr_stalls(self, mini):
        leader = mini.leader_of(0)
        leader.append_many(TOPIC, 0, [b"seed"], acks="all")
        assert _wait_until(lambda: len(mini.isr_of(0)) == 2)
        leader._replicator.isr_timeout_s = 60.0
        leader.acks_timeout_s = 0.3
        injector = FaultInjector()
        leader.fault_injector = injector
        injector.partition_link(0, 1)
        with pytest.raises(NotEnoughReplicasError) as excinfo:
            leader.append_many(TOPIC, 0, [b"stuck"], acks="all")
        assert is_retriable(excinfo.value)

    def test_partition_depths_report_visible_end(self, mini):
        leader = mini.leader_of(0)
        leader.append_many(TOPIC, 0, [b"seed"], acks="all")
        assert _wait_until(lambda: len(mini.isr_of(0)) == 2)
        leader._replicator.isr_timeout_s = 60.0
        injector = FaultInjector()
        leader.fault_injector = injector
        injector.partition_link(0, 1)
        leader.append_many(TOPIC, 0, [b"dark"])
        depths = leader.partition_depths()[(TOPIC, 0)]
        assert depths["end_offset"] == 1
        assert depths["depth"] == 1


class TestIsrEviction:
    def test_link_partition_evicts_then_readmits(self, mini):
        leader = mini.leader_of(0)
        leader.append_many(TOPIC, 0, [b"seed"], acks="all")
        assert _wait_until(lambda: len(mini.isr_of(0)) == 2)
        leader._replicator.isr_timeout_s = 0.2
        leader.acks_timeout_s = 10.0
        injector = FaultInjector()
        leader.fault_injector = injector
        injector.partition_link(0, 1)
        assert _wait_until(lambda: mini.isr_of(0) == [leader.shard_index])

        def doomed_partition():
            for part in leader.replication_status()["partitions"]:
                if part["partition"] == 0:
                    return part
            return None

        assert doomed_partition()["under_replicated"] is True
        assert injector.fired.get("link", 0) > 0
        # With the follower written off, the ISR is the leader alone and
        # acks=all makes progress again (Kafka's shrink-to-leader rule).
        leader.append_many(TOPIC, 0, [b"alone"], acks="all")
        assert leader.latest_offset(TOPIC, 0) == 2
        injector.heal_link(0, 1)
        assert _wait_until(lambda: len(mini.isr_of(0)) == 2)
        assert _wait_until(
            lambda: mini.log(mini.follower_of(0), 0).latest_offset == 2
        )
        assert doomed_partition()["under_replicated"] is False


class TestFollowerResync:
    def test_diverged_follower_truncates_to_leader(self, mini):
        leader = mini.leader_of(0)
        follower = mini.follower_of(0)
        # Let the pump establish the ISR (arming the watermark fence),
        # then stop it so divergence survives long enough to matter.
        assert _wait_until(lambda: len(mini.isr_of(0)) == 2)
        leader.stop_replication()
        mini.log(follower, 0).append_many([b"junk1", b"junk2", b"junk3"])
        leader.append_many(TOPIC, 0, [b"real1", b"real2"])
        leader.start_replication()
        follower_log = mini.log(follower, 0)
        assert _wait_until(
            lambda: [r.value for r in follower_log.fetch(0, max_records=10)]
            == [b"real1", b"real2"]
        )
        assert follower_log.latest_offset == 2

    def test_stale_leader_epoch_is_fenced(self, mini):
        leader = mini.leader_of(0)
        follower = mini.follower_of(0)
        overrides = [(TOPIC, 0, follower.shard_index, 1)]
        for broker in mini.brokers:
            broker.set_cluster(mini.addresses, 2, leaders=overrides)
        with pytest.raises(StaleLeaderEpochError):
            follower.replicate_append(
                TOPIC,
                0,
                base_offset=0,
                records=[],
                leader=leader.shard_index,
                leader_epoch=0,
                high_watermark=0,
            )

    def test_producer_dedup_survives_leader_change(self, mini):
        old_leader = mini.leader_of(0)
        new_leader = mini.follower_of(0)
        pid, epoch = old_leader.register_producer("failover-producer")
        md = old_leader.append_many(
            TOPIC,
            0,
            [b"a", b"b"],
            producer_id=pid,
            producer_epoch=epoch,
            base_sequence=0,
            acks="all",
        )
        assert _wait_until(
            lambda: mini.log(new_leader, 0).latest_offset == 2
        )
        # Leadership moves; the retried batch must dedup on the new
        # leader because the dedup window replicated with the data.
        overrides = [(TOPIC, 0, new_leader.shard_index, 1)]
        for broker in mini.brokers:
            broker.set_cluster(mini.addresses, 2, leaders=overrides)
        replay = new_leader.append_many(
            TOPIC,
            0,
            [b"a", b"b"],
            producer_id=pid,
            producer_epoch=epoch,
            base_sequence=0,
        )
        assert replay.base_offset == md.base_offset
        assert mini.log(new_leader, 0).latest_offset == 2


class TestClusterClientSurface:
    def test_acks_all_via_wire_and_status_merge(self, mini):
        client = ClusterBroker(mini.addresses)
        try:
            producer = Producer(client, acks="all", retries=3)
            for partition in range(PARTITIONS):
                producer.send_many(
                    TOPIC, [b"r1", b"r2"], partition=partition
                )
            status = client.replication_status()
            assert status["replication_factor"] == 2
            seen = {p["partition"] for p in status["partitions"]}
            assert seen == set(range(PARTITIONS))
            for part in status["partitions"]:
                assert part["isr"] == [0, 1]
                assert part["high_watermark"] == 2
        finally:
            client.close()

    def test_invalid_acks_rejected(self):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            Producer(Broker(), acks="quorum")


class TestPartitionLinkRules:
    def test_link_rules_are_symmetric_and_healable(self):
        injector = FaultInjector()
        injector.partition_link(1, 0)
        with pytest.raises(FaultInjected):
            injector.on_replication(0, 1)
        with pytest.raises(FaultInjected):
            injector.on_replication(1, 0)
        # Unrelated pairs are untouched, and the rule never runs dry.
        injector.on_replication(0, 2)
        with pytest.raises(FaultInjected):
            injector.on_replication(0, 1)
        injector.heal_link(0, 1)
        injector.on_replication(0, 1)
        assert injector.fired["link"] == 3
