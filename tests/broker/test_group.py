"""Tests for the group coordinator and assignment strategies."""

import pytest

from repro.broker import (
    Broker,
    RangeAssignor,
    RoundRobinAssignor,
)
from repro.util.validation import ValidationError


class TestRangeAssignor:
    def test_even_split(self):
        parts = [("t", p) for p in range(4)]
        out = RangeAssignor().assign(["a", "b"], parts)
        assert out["a"] == [("t", 0), ("t", 1)]
        assert out["b"] == [("t", 2), ("t", 3)]

    def test_uneven_split_favors_first(self):
        parts = [("t", p) for p in range(5)]
        out = RangeAssignor().assign(["a", "b"], parts)
        assert len(out["a"]) == 3
        assert len(out["b"]) == 2

    def test_more_members_than_partitions(self):
        parts = [("t", 0)]
        out = RangeAssignor().assign(["a", "b", "c"], parts)
        assert out["a"] == [("t", 0)]
        assert out["b"] == [] and out["c"] == []

    def test_multi_topic_ranges(self):
        parts = [("t1", 0), ("t1", 1), ("t2", 0), ("t2", 1)]
        out = RangeAssignor().assign(["a", "b"], parts)
        assert out["a"] == [("t1", 0), ("t2", 0)]
        assert out["b"] == [("t1", 1), ("t2", 1)]

    def test_no_members(self):
        assert RangeAssignor().assign([], [("t", 0)]) == {}


class TestRoundRobinAssignor:
    def test_deals_alternately(self):
        parts = [("t", p) for p in range(5)]
        out = RoundRobinAssignor().assign(["a", "b"], parts)
        assert out["a"] == [("t", 0), ("t", 2), ("t", 4)]
        assert out["b"] == [("t", 1), ("t", 3)]

    def test_every_partition_exactly_once(self):
        parts = [("t", p) for p in range(7)]
        out = RoundRobinAssignor().assign(["a", "b", "c"], parts)
        flat = sorted(tp for tps in out.values() for tp in tps)
        assert flat == parts


class TestGroupCoordinator:
    @pytest.fixture
    def broker2(self):
        b = Broker()
        b.create_topic("t", 4)
        return b

    def test_join_bumps_generation(self, broker2):
        coord = broker2.coordinator
        g1 = coord.join("g", "m1", ["t"])
        g2 = coord.join("g", "m2", ["t"])
        assert g2 == g1 + 1

    def test_assignment_covers_all_partitions(self, broker2):
        coord = broker2.coordinator
        coord.join("g", "m1", ["t"])
        coord.join("g", "m2", ["t"])
        _, a1 = coord.assignment("g", "m1")
        _, a2 = coord.assignment("g", "m2")
        assert sorted(a1 + a2) == [("t", p) for p in range(4)]

    def test_leave_reassigns(self, broker2):
        coord = broker2.coordinator
        coord.join("g", "m1", ["t"])
        coord.join("g", "m2", ["t"])
        coord.leave("g", "m2")
        _, a1 = coord.assignment("g", "m1")
        assert len(a1) == 4

    def test_last_leave_destroys_group(self, broker2):
        coord = broker2.coordinator
        coord.join("g", "m1", ["t"])
        coord.leave("g", "m1")
        assert coord.generation("g") == 0
        assert coord.members("g") == []

    def test_leave_unknown_is_noop(self, broker2):
        broker2.coordinator.leave("nope", "m")

    def test_unknown_member_assignment_empty(self, broker2):
        gen, assignment = broker2.coordinator.assignment("g", "ghost")
        assert (gen, assignment) == (0, [])

    def test_empty_subscription_rejected(self, broker2):
        with pytest.raises(ValidationError):
            broker2.coordinator.join("g", "m", [])

    def test_unknown_topic_subscription_fails(self, broker2):
        from repro.broker import UnknownTopicError

        with pytest.raises(UnknownTopicError):
            broker2.coordinator.join("g", "m", ["missing"])

    def test_strategy_conflict_rejected(self, broker2):
        coord = broker2.coordinator
        coord.join("g", "m1", ["t"], strategy=RangeAssignor())
        with pytest.raises(ValidationError):
            coord.join("g", "m2", ["t"], strategy=RoundRobinAssignor())

    def test_mixed_subscriptions(self, broker2):
        broker2.create_topic("u", 2)
        coord = broker2.coordinator
        coord.join("g", "m1", ["t"])
        coord.join("g", "m2", ["u"])
        _, a1 = coord.assignment("g", "m1")
        _, a2 = coord.assignment("g", "m2")
        # Members only receive partitions of topics they subscribed to.
        assert all(tp[0] == "t" for tp in a1)
        assert all(tp[0] == "u" for tp in a2)
        assert len(a1) == 4 and len(a2) == 2

    def test_describe(self, broker2):
        coord = broker2.coordinator
        coord.join("g", "m1", ["t"])
        desc = coord.describe("g")
        assert desc["generation"] == 1
        assert desc["strategy"] == "range"
        assert "m1" in desc["members"]

    def test_describe_unknown_group(self, broker2):
        desc = broker2.coordinator.describe("nope")
        assert desc["generation"] == 0

    def test_roundrobin_strategy_applied(self, broker2):
        coord = broker2.coordinator
        coord.join("g", "m1", ["t"], strategy=RoundRobinAssignor())
        coord.join("g", "m2", ["t"])
        _, a1 = coord.assignment("g", "m1")
        assert a1 == [("t", 0), ("t", 2)]
