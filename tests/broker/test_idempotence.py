"""Idempotent-producer protocol: sequences, dedup, fencing, retries."""

import pytest

from repro.broker import (
    BatchAccumulator,
    Broker,
    Consumer,
    OutOfOrderSequenceError,
    Producer,
    ProducerFencedError,
    is_retriable,
)
from repro.broker.errors import (
    BrokerTimeoutError,
    DisconnectedError,
    FatalError,
    RetriableError,
)
from repro.faults import FaultInjector, FaultyBroker
from repro.util.validation import ValidationError


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("t", 2)
    return b


class TestBrokerDedup:
    def test_replayed_batch_acks_original_offsets(self, broker):
        pid, epoch = broker.register_producer("p")
        md1 = broker.append_many(
            "t", 0, [b"a", b"b"], producer_id=pid, producer_epoch=epoch, base_sequence=0
        )
        md2 = broker.append_many(
            "t", 0, [b"a", b"b"], producer_id=pid, producer_epoch=epoch, base_sequence=0
        )
        assert (md2.base_offset, md2.count) == (md1.base_offset, md1.count)
        assert broker.latest_offset("t", 0) == 2  # nothing re-appended
        assert broker.stats()["duplicates_dropped"] == 2

    def test_replayed_single_append_is_deduped(self, broker):
        pid, epoch = broker.register_producer("p")
        md1 = broker.append("t", 0, b"x", producer_id=pid, producer_epoch=epoch, sequence=0)
        md2 = broker.append("t", 0, b"x", producer_id=pid, producer_epoch=epoch, sequence=0)
        assert md2.offset == md1.offset
        assert broker.latest_offset("t", 0) == 1

    def test_sequence_gap_raises(self, broker):
        pid, epoch = broker.register_producer("p")
        broker.append_many(
            "t", 0, [b"a"], producer_id=pid, producer_epoch=epoch, base_sequence=0
        )
        with pytest.raises(OutOfOrderSequenceError):
            broker.append_many(
                "t", 0, [b"b"], producer_id=pid, producer_epoch=epoch, base_sequence=5
            )

    def test_stale_epoch_is_fenced(self, broker):
        pid, epoch = broker.register_producer("p")
        broker.register_producer("p")  # new instance bumps the epoch
        with pytest.raises(ProducerFencedError):
            broker.append_many(
                "t", 0, [b"a"], producer_id=pid, producer_epoch=epoch, base_sequence=0
            )

    def test_sequences_are_per_partition(self, broker):
        pid, epoch = broker.register_producer("p")
        broker.append_many("t", 0, [b"a"], producer_id=pid, producer_epoch=epoch, base_sequence=0)
        broker.append_many("t", 1, [b"b"], producer_id=pid, producer_epoch=epoch, base_sequence=0)
        assert broker.latest_offset("t", 0) == 1
        assert broker.latest_offset("t", 1) == 1

    def test_plain_appends_bypass_dedup(self, broker):
        broker.append_many("t", 0, [b"a"])
        broker.append_many("t", 0, [b"a"])
        assert broker.latest_offset("t", 0) == 2
        assert broker.stats()["duplicates_dropped"] == 0


class TestProducerRetries:
    def test_retry_until_success_no_duplicates(self, broker):
        injector = FaultInjector().drop_next(2, op="append_many")
        producer = Producer(
            FaultyBroker(broker, injector),
            client_id="p",
            retries=5,
            retry_backoff_ms=0.0,
        )
        md = producer.send_many("t", [b"a", b"b"], partition=0)
        assert md.count == 2
        assert producer.produce_retries == 2
        assert broker.latest_offset("t", 0) == 2

    def test_retries_exhausted_raises(self, broker):
        injector = FaultInjector().drop_next(10, op="append_many")
        producer = Producer(
            FaultyBroker(broker, injector), client_id="p", retries=1, retry_backoff_ms=0.0
        )
        with pytest.raises(ConnectionError):
            producer.send_many("t", [b"a"], partition=0)
        assert producer.sends_failed == 1

    def test_acks_zero_swallows_failures(self, broker):
        injector = FaultInjector().drop_next(10, op="append_many")
        producer = Producer(
            FaultyBroker(broker, injector), client_id="p", acks=0, retry_backoff_ms=0.0
        )
        assert producer.send_many("t", [b"a"], partition=0) is None
        assert producer.sends_failed == 1

    def test_sequence_reuse_after_failed_send_dedups(self, broker):
        # The drop hits the broker *after* a hypothetical partial landing:
        # model the lost-ack case by appending directly, then letting the
        # producer's retry replay the identical sequence range.
        producer = Producer(broker, client_id="p", retries=3, retry_backoff_ms=0.0)
        producer.send_many("t", [b"a", b"b"], partition=0)
        pid, epoch = producer._pid, producer._epoch
        # Replay the same range out-of-band (what a retry after a lost
        # ack does): acked with the original offsets, not re-appended.
        md = broker.append_many(
            "t", 0, [b"a", b"b"], producer_id=pid, producer_epoch=epoch, base_sequence=0
        )
        assert md.base_offset == 0
        assert broker.latest_offset("t", 0) == 2

    def test_idempotence_defaults_to_on_with_retries(self, broker):
        assert Producer(broker, retries=3).idempotent
        assert not Producer(broker).idempotent
        assert not Producer(broker, retries=3, enable_idempotence=False).idempotent


class TestProducerLifecycle:
    def test_close_flushes_accumulator(self, broker):
        producer = Producer(broker, client_id="p")
        accumulator = BatchAccumulator(producer, batch_records=100)
        accumulator.add("t", b"a", partition=0)
        accumulator.add("t", b"b", partition=0)
        producer.close()
        assert broker.latest_offset("t", 0) == 2
        assert accumulator.pending_records == 0

    def test_closed_producer_rejects_sends(self, broker):
        producer = Producer(broker)
        producer.close()
        with pytest.raises(ValidationError):
            producer.send("t", b"x", partition=0)

    def test_context_manager_flushes(self, broker):
        with Producer(broker, client_id="p") as producer:
            accumulator = BatchAccumulator(producer, batch_records=100)
            accumulator.add("t", b"a", partition=0)
        assert broker.latest_offset("t", 0) == 1


class TestErrorTaxonomy:
    def test_retriable_axis(self):
        assert is_retriable(BrokerTimeoutError("x"))
        assert is_retriable(DisconnectedError("x"))
        assert is_retriable(ConnectionError("x"))
        assert is_retriable(TimeoutError())
        assert not is_retriable(ProducerFencedError(0, 0, 1))
        assert not is_retriable(OutOfOrderSequenceError(0, 1, 5))
        assert not is_retriable(ValueError("x"))

    def test_fatal_and_retriable_are_disjoint(self):
        assert not issubclass(RetriableError, FatalError)
        assert not issubclass(FatalError, RetriableError)

    def test_end_to_end_consume_sees_each_record_once(self, broker):
        injector = FaultInjector().drop_next(1, op="append_many").drop_next(1, op="append_many")
        producer = Producer(
            FaultyBroker(broker, injector), client_id="p", retries=5, retry_backoff_ms=0.0
        )
        for batch in range(10):
            producer.send_many("t", [f"{batch}-{i}".encode() for i in range(4)], partition=0)
        consumer = Consumer(broker)
        consumer.assign([("t", 0)])
        values = [r.value for r in consumer.poll(max_records=1000)]
        assert len(values) == 40
        assert len(set(values)) == 40  # no duplicated offsets/payloads
