"""Session-timeout failure detection: heartbeats, eviction, rebalance."""

import time

import pytest

from repro.broker import (
    Broker,
    Consumer,
    Producer,
    RebalanceInProgressError,
    UnknownMemberError,
)


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("t", 4)
    return b


class TestCoordinatorHeartbeats:
    def test_heartbeat_refreshes_lease(self, broker):
        coord = broker.coordinator
        coord.join("g", "m1", ["t"], session_timeout_ms=50.0)
        for _ in range(3):
            time.sleep(0.03)
            coord.heartbeat("g", "m1")
        assert coord.members("g") == ["m1"]

    def test_silent_member_is_evicted(self, broker):
        coord = broker.coordinator
        coord.join("g", "m1", ["t"], session_timeout_ms=30.0)
        coord.join("g", "m2", ["t"], session_timeout_ms=30.0)
        generation = coord.generation("g")
        # m2 heartbeats inside every window; m1 goes silent.
        for _ in range(4):
            time.sleep(0.015)
            coord.heartbeat("g", "m2")
        assert coord.members("g") == ["m2"]
        assert coord.generation("g") > generation
        assert coord.members_evicted == 1
        # The survivor inherits every partition.
        _, assignment = coord.assignment("g", "m2")
        assert len(assignment) == 4

    def test_evicted_member_heartbeat_raises(self, broker):
        coord = broker.coordinator
        coord.join("g", "m1", ["t"], session_timeout_ms=20.0)
        time.sleep(0.05)
        with pytest.raises(UnknownMemberError):
            coord.heartbeat("g", "m1")

    def test_unknown_group_heartbeat_raises(self, broker):
        with pytest.raises(UnknownMemberError):
            broker.coordinator.heartbeat("nope", "m1")

    def test_zero_timeout_never_evicts(self, broker):
        coord = broker.coordinator
        coord.join("g", "m1", ["t"])  # coordinator default is 0 = disabled
        time.sleep(0.05)
        assert coord.sweep() == []
        assert coord.members("g") == ["m1"]

    def test_generations_stay_monotonic_across_group_destruction(self, broker):
        coord = broker.coordinator
        coord.join("g", "m1", ["t"])
        coord.join("g", "m2", ["t"])
        peak = coord.generation("g")
        coord.leave("g", "m1")
        coord.leave("g", "m2")  # last leave destroys the group
        assert coord.generation("g") == 0
        rejoined = coord.join("g", "m3", ["t"])
        assert rejoined > peak

    def test_all_members_expiring_bumps_epoch(self, broker):
        coord = broker.coordinator
        coord.join("g", "m1", ["t"], session_timeout_ms=20.0)
        generation = coord.generation("g")
        time.sleep(0.05)
        assert coord.sweep("g") == ["m1"]
        assert coord.join("g", "m2", ["t"]) > generation


class TestConsumerHeartbeats:
    def test_poll_piggybacks_heartbeats(self, broker):
        consumer = Consumer(broker, group_id="g", session_timeout_ms=500.0)
        consumer.subscribe("t")
        deadline = time.monotonic() + 0.6
        while time.monotonic() < deadline:
            consumer.poll(timeout=0.0)
            time.sleep(0.01)
        # Kept alive the whole time by piggybacked heartbeats.
        assert broker.coordinator.members("g") == [consumer.client_id]
        assert consumer.heartbeats_sent >= 2
        assert consumer.evictions == 0

    def test_evicted_consumer_rejoins_on_poll(self, broker):
        Producer(broker).send("t", b"x", partition=0)
        consumer = Consumer(broker, group_id="g", session_timeout_ms=40.0)
        consumer.subscribe("t")
        time.sleep(0.1)  # miss the session deadline
        broker.coordinator.sweep("g")
        assert broker.coordinator.members("g") == []
        # First poll after eviction: re-join, empty round at the boundary.
        deadline = time.monotonic() + 2.0
        records = []
        while not records and time.monotonic() < deadline:
            records = consumer.poll(max_records=10)
        assert consumer.evictions == 1
        assert [r.value for r in records] == [b"x"]
        assert broker.coordinator.members("g") == [consumer.client_id]

    def test_commit_refused_after_eviction(self, broker):
        consumer = Consumer(broker, group_id="g", session_timeout_ms=30.0)
        consumer.subscribe("t")
        time.sleep(0.08)
        broker.coordinator.sweep("g")
        with pytest.raises(RebalanceInProgressError):
            consumer.commit()

    def test_commit_survives_generation_bump_while_member(self, broker):
        c1 = Consumer(broker, group_id="g")
        c1.subscribe("t")
        c2 = Consumer(broker, group_id="g")
        c2.subscribe("t")  # bumps the generation c1 joined at
        c1.commit()  # still a member: must not raise

    def test_partitions_reassigned_within_one_session_timeout(self, broker):
        session_ms = 60.0
        survivor = Consumer(broker, group_id="g", session_timeout_ms=session_ms)
        survivor.subscribe("t")
        victim = Consumer(broker, group_id="g", session_timeout_ms=session_ms)
        victim.subscribe("t")
        survivor.poll()
        assert len(survivor.assignment) == 2
        # The victim crashes (no leave, no heartbeats). Keep the survivor
        # polling: within one session timeout it owns all partitions.
        crash = time.monotonic()
        deadline = crash + 5.0
        while time.monotonic() < deadline:
            survivor.poll(timeout=0.0)
            if len(survivor.assignment) == 4:
                break
            time.sleep(0.005)
        took = time.monotonic() - crash
        assert len(survivor.assignment) == 4, "partitions were never reassigned"
        assert took < 5.0
        assert broker.coordinator.members_evicted == 1
