"""Tests for the sharded multi-core broker: ownership metadata, the
NotOwnerError contract, client-side routing, bootstrap fall-through,
supervisor lifecycle, and wire backward compatibility."""

import multiprocessing
import socket
import threading
import time

import pytest

from repro.broker import (
    Broker,
    ClusterBroker,
    ClusterBrokerSupervisor,
    ClusterMetadata,
    Consumer,
    NotOwnerError,
    Producer,
    ShardBroker,
    connect_bootstrap,
    coordinator_shard,
    shard_for_partition,
)
from repro.broker.errors import DisconnectedError
from repro.broker.remote import (
    RemoteBroker,
    RemoteRetriableError,
    ThreadedBrokerServer,
)
from repro.broker.wire import recv_frame, send_frame
from repro.util.validation import ValidationError


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# -- ownership metadata -------------------------------------------------------


class TestMetadata:
    def test_shard_for_partition_is_deterministic_and_in_range(self):
        for topic in ("a", "pilot-edge-data", "x" * 80):
            for partition in range(16):
                owner = shard_for_partition(topic, partition, 4)
                assert 0 <= owner < 4
                assert owner == shard_for_partition(topic, partition, 4)

    def test_one_topic_spreads_over_consecutive_shards(self):
        owners = {shard_for_partition("t", p, 4) for p in range(4)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        assert shard_for_partition("t", 7, 1) == 0
        assert shard_for_partition("t", 7, 0) == 0
        assert coordinator_shard("g", 1) == 0

    def test_coordinator_shard_in_range(self):
        for group in ("g1", "analytics", ""):
            assert 0 <= coordinator_shard(group, 3) < 3

    def test_wire_roundtrip(self):
        meta = ClusterMetadata(epoch=3, shards=(("127.0.0.1", 9101), ("127.0.0.1", 9102)))
        again = ClusterMetadata.from_wire(meta.to_wire())
        assert again == meta
        assert again.num_shards == 2
        assert again.owner("t", 0) in meta.shards
        assert again.coordinator("g") in meta.shards


# -- shard-side ownership enforcement ----------------------------------------


class TestShardBroker:
    def _shard(self, index: int, num_shards: int = 2) -> ShardBroker:
        shard = ShardBroker(shard_index=index, num_shards=num_shards)
        shard.set_cluster(
            [("127.0.0.1", 9101 + i) for i in range(num_shards)], epoch=1
        )
        shard.create_topic("t", 4, exist_ok=True)
        return shard

    def test_owned_partition_accepts_appends(self):
        shard = self._shard(shard_for_partition("t", 0, 2))
        md = shard.append("t", 0, b"x")
        assert md.offset == 0
        [record] = shard.fetch("t", 0, 0)
        assert record.value == b"x"

    def test_foreign_partition_raises_not_owner_with_fields(self):
        owner = shard_for_partition("t", 0, 2)
        shard = self._shard(1 - owner)
        with pytest.raises(NotOwnerError) as excinfo:
            shard.append("t", 0, b"x")
        err = excinfo.value
        assert err.owner_shard == owner
        assert err.shard == 1 - owner
        assert err.epoch == 1
        assert "t/0" in err.resource

    def test_partition_log_guarded_for_long_poll_path(self):
        owner = shard_for_partition("t", 1, 2)
        shard = self._shard(1 - owner)
        with pytest.raises(NotOwnerError):
            shard.partition_log("t", 1)

    def test_partition_depths_filtered_to_owned(self):
        shard = self._shard(0)
        for partition in range(4):
            if shard.owns("t", partition):
                shard.append("t", partition, b"x")
        depths = shard.partition_depths()
        assert depths
        assert all(shard.owns(t, p) for t, p in depths)

    def test_group_ops_guarded_by_coordinator_hash(self):
        groups = {coordinator_shard(f"g{i}", 2): f"g{i}" for i in range(16)}
        mine, theirs = groups[0], groups[1]
        shard = self._shard(0)
        shard.commit_offset(mine, "t", 0, 1)
        assert shard.committed_offset(mine, "t", 0) == 1
        with pytest.raises(NotOwnerError) as excinfo:
            shard.commit_offset(theirs, "t", 0, 1)
        assert theirs in excinfo.value.resource

    def test_strided_producer_ids_are_globally_unique(self):
        shards = [self._shard(i, 4) for i in range(4)]
        pids = set()
        for shard in shards:
            for n in range(5):
                pid, epoch = shard.register_producer(f"client-{n}")
                assert epoch == 0
                assert pid % 4 == shard.shard_index
                pids.add(pid)
        assert len(pids) == 20
        # Re-registration bumps the epoch (zombie fencing), keeps the pid.
        pid, epoch = shards[0].register_producer("client-0")
        assert epoch == 1

    def test_single_shard_ids_stay_dense(self):
        shard = ShardBroker()  # defaults: shard 0 of 1
        shard.create_topic("t", 1)
        assert [shard.register_producer(f"c{i}")[0] for i in range(3)] == [0, 1, 2]

    def test_describe_cluster_requires_metadata(self):
        shard = ShardBroker(shard_index=0, num_shards=2)
        with pytest.raises(ValidationError):
            shard.describe_cluster()


# -- the full cluster ---------------------------------------------------------


@pytest.fixture(scope="class")
def cluster():
    with ClusterBrokerSupervisor(num_shards=2, topics=[("t", 4)]) as supervisor:
        with ClusterBroker(supervisor.bootstrap) as broker:
            yield supervisor, broker


class TestClusterRouting:
    def test_describe_cluster_reaches_every_shard(self, cluster):
        supervisor, broker = cluster
        assert broker.num_shards == 2
        assert broker.epoch == 1
        assert len(broker.describe_cluster()["shards"]) == 2

    def test_appends_route_and_fetches_return(self, cluster):
        _, broker = cluster
        for partition in range(4):
            md = broker.append("t", partition, b"r%d" % partition)
            assert md.partition == partition
        for partition in range(4):
            [record] = broker.fetch("t", partition, 0, max_records=1)
            assert record.value == b"r%d" % partition

    def test_partition_affine_ops_never_see_foreign_logs(self, cluster):
        """Each shard's log holds exactly its owned partitions' records."""
        supervisor, broker = cluster
        broker.append("t", 0, b"iso")
        for index, (host, port) in enumerate(supervisor.addresses):
            with RemoteBroker(host, port) as direct:
                depths = direct.partition_depths()
                for (topic, partition) in depths:
                    assert shard_for_partition(topic, partition, 2) == index
                foreign = next(
                    p for p in range(4)
                    if shard_for_partition("t", p, 2) != index
                )
                with pytest.raises(RemoteRetriableError) as excinfo:
                    direct.fetch("t", foreign, 0)
                assert excinfo.value.error_name == "NotOwnerError"

    def test_group_commits_live_on_coordinator_shard(self, cluster):
        supervisor, broker = cluster
        group = "routing-group"
        broker.commit_offset(group, "t", 0, 3)
        assert broker.committed_offset(group, "t", 0) == 3
        coord = broker.find_coordinator(group)
        assert coord["shard"] == coordinator_shard(group, 2)
        with RemoteBroker(coord["host"], coord["port"]) as direct:
            assert direct.committed_offset(group, "t", 0) == 3
        other = supervisor.addresses[1 - coord["shard"]]
        with RemoteBroker(*other) as direct:
            with pytest.raises(RemoteRetriableError) as excinfo:
                direct.committed_offset(group, "t", 0)
            assert excinfo.value.error_name == "NotOwnerError"

    def test_consumer_lag_merges_coordinator_and_data_shards(self, cluster):
        _, broker = cluster
        group = "lag-group"
        broker.append("t", 1, b"a")
        broker.append("t", 1, b"b")
        end = broker.latest_offset("t", 1)
        broker.commit_offset(group, "t", 1, end - 1)
        lag = broker.consumer_lag(group)
        assert lag[("t", 1)] == 1

    def test_stats_merge_all_shards(self, cluster):
        supervisor, broker = cluster
        broker.append("t", 2, b"x")
        stats = broker.stats()
        assert stats["epoch"] == broker.epoch
        assert len(stats["shards"]) == 2
        metrics = broker.shard_metrics()
        assert sorted(metrics) == [0, 1]
        assert all(m["num_shards"] == 2 for m in metrics.values())


class TestStaleMetadataRefresh:
    def test_not_owner_triggers_refresh_and_reroute(self):
        with ClusterBrokerSupervisor(num_shards=2, topics=[("t", 4)]) as sup:
            # Hand the client a deliberately wrong map: shard order
            # reversed at an older epoch, so the first partition-affine op
            # lands on the wrong shard and comes back NotOwnerError.
            stale = ClusterMetadata(
                epoch=0, shards=tuple(reversed(sup.addresses))
            )
            with ClusterBroker(sup.bootstrap, metadata=stale) as broker:
                md = broker.append("t", 0, b"x", producer_id=None)
                assert md.offset == 0
                assert broker.metadata_refreshes >= 1
                assert broker.epoch == 1
                assert tuple(broker.metadata.shards) == tuple(sup.addresses)
                [record] = broker.fetch("t", 0, 0)
                assert record.value == b"x"

    def test_refresh_keeps_stale_map_when_cluster_is_down(self):
        with ClusterBrokerSupervisor(num_shards=2, topics=[("t", 2)]) as sup:
            broker = ClusterBroker(sup.bootstrap)
        # Supervisor stopped: refresh finds nobody, keeps what it has.
        meta = broker.refresh_metadata()
        assert meta.num_shards == 2
        broker.close()


class TestBackwardCompat:
    def test_plain_client_against_one_shard(self, cluster):
        """Old single-broker clients keep working against a single shard."""
        supervisor, broker = cluster
        host, port = supervisor.addresses[0]
        with RemoteBroker(host, port) as direct:
            assert "t" in direct.list_topics()
            partition = next(
                p for p in range(4) if shard_for_partition("t", p, 2) == 0
            )
            md = direct.append("t", partition, b"legacy")
            [record] = direct.fetch("t", partition, md.offset)
            assert record.value == b"legacy"

    def test_connect_bootstrap_downgrades_for_plain_broker(self):
        with ThreadedBrokerServer() as server:
            client = connect_bootstrap([(server.host, server.port)])
            try:
                assert isinstance(client, RemoteBroker)
                client.create_topic("t", 1)
                client.append("t", 0, b"x")
            finally:
                client.close()

    def test_connect_bootstrap_upgrades_for_cluster(self, cluster):
        supervisor, _ = cluster
        client = connect_bootstrap(supervisor.bootstrap)
        try:
            assert isinstance(client, ClusterBroker)
            assert client.num_shards == 2
        finally:
            client.close()


class TestBootstrapFallthrough:
    def test_dead_first_address_falls_through(self, cluster):
        supervisor, _ = cluster
        dead = ("127.0.0.1", _free_port())
        client = connect_bootstrap([dead, *supervisor.bootstrap])
        try:
            assert isinstance(client, ClusterBroker)
            assert client.append("t", 0, b"ft").offset >= 0
        finally:
            client.close()

    def test_all_dead_raises_disconnected(self):
        dead = [("127.0.0.1", _free_port()), ("127.0.0.1", _free_port())]
        with pytest.raises(DisconnectedError):
            connect_bootstrap(dead)

    def test_producer_and_consumer_accept_bootstrap(self, cluster):
        supervisor, _ = cluster
        dead = ("127.0.0.1", _free_port())
        bootstrap = [dead, *supervisor.bootstrap]
        producer = Producer(bootstrap=bootstrap, client_id="bts", retries=2)
        try:
            producer.send("t", b"boot", partition=1)
        finally:
            producer.close()
        consumer = Consumer(bootstrap=bootstrap)
        try:
            consumer.assign([("t", 1)])
            values = []
            deadline = time.monotonic() + 10
            while not values and time.monotonic() < deadline:
                values = [r.value for r in consumer.poll(max_records=64, timeout=0.5)]
            assert b"boot" in values
        finally:
            consumer.close()

    def test_exactly_one_of_broker_or_bootstrap(self):
        broker = Broker()
        with pytest.raises(ValidationError):
            Producer(broker, bootstrap=[("127.0.0.1", 1)])
        with pytest.raises(ValidationError):
            Producer()
        with pytest.raises(ValidationError):
            Consumer(broker, bootstrap=[("127.0.0.1", 1)])
        with pytest.raises(ValidationError):
            Consumer()


# -- supervisor lifecycle -----------------------------------------------------


class TestSupervisorLifecycle:
    def test_stop_leaks_no_processes_or_threads(self):
        """Mirror of the reactor's deterministic-stop test, one level up:
        stop() must drain parked long-polls, join every worker process,
        and leave no orphaned sockets behind."""
        before = set(threading.enumerate())
        supervisor = ClusterBrokerSupervisor(num_shards=2, topics=[("t", 2)]).start()
        addresses = list(supervisor.addresses)
        socks = [
            socket.create_connection(addr, timeout=10) for addr in addresses
        ]
        try:
            # Park a long-poll on shard 0 (a partition it owns) that
            # would outlive stop() if fetches were not drained.
            partition = next(
                p for p in range(2) if shard_for_partition("t", p, 2) == 0
            )
            owner = shard_for_partition("t", partition, 2)
            send_frame(
                socks[owner],
                {"op": "fetch", "topic": "t", "partition": partition,
                 "offset": 0, "timeout": 60.0, "cid": 1},
            )
            time.sleep(0.3)  # let the fetch park server-side
            supervisor.stop()
            assert multiprocessing.active_children() == []
            leaked = [
                t for t in set(threading.enumerate()) - before if t.is_alive()
            ]
            assert leaked == []
            # Clients observe EOF/reset, not a hang.
            for sock in socks:
                sock.settimeout(2)
                try:
                    assert sock.recv(1) == b""
                except OSError:
                    pass
            # The former addresses refuse new connections.
            for addr in addresses:
                with pytest.raises(OSError):
                    socket.create_connection(addr, timeout=1).close()
        finally:
            for sock in socks:
                sock.close()

    def test_stop_is_idempotent(self):
        supervisor = ClusterBrokerSupervisor(num_shards=1, topics=[("t", 1)]).start()
        supervisor.stop()
        supervisor.stop()

    def test_concurrent_stop_from_two_threads_is_race_safe(self):
        """Two threads racing into stop() must not double-tear-down:
        exactly one wins the teardown, both return, nothing leaks."""
        before = set(threading.enumerate())
        supervisor = ClusterBrokerSupervisor(
            num_shards=2, topics=[("t", 2)], restart=True
        ).start()
        errors: list[BaseException] = []

        def stopper() -> None:
            try:
                supervisor.stop()
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=stopper) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(not t.is_alive() for t in threads)
        assert errors == []
        assert multiprocessing.active_children() == []
        leaked = [
            t for t in set(threading.enumerate()) - before if t.is_alive()
        ]
        assert leaked == []

    def test_stop_during_respawn_leaks_nothing(self):
        """stop() issued while the monitor is mid-respawn must still win:
        the freshly spawned worker is torn down too, even if it came up
        after the stop flag was raised."""
        before = set(threading.enumerate())
        supervisor = ClusterBrokerSupervisor(
            num_shards=2, topics=[("t", 2)], restart=True
        ).start()
        supervisor.kill_shard(1)
        # No wait: stop() races the monitor's death-detection + respawn.
        supervisor.stop()
        assert multiprocessing.active_children() == []
        leaked = [
            t for t in set(threading.enumerate()) - before if t.is_alive()
        ]
        assert leaked == []
        # A second stop after the race stays a no-op.
        supervisor.stop()
        assert multiprocessing.active_children() == []

    def test_restart_respawns_dead_shard_and_bumps_epoch(self):
        with ClusterBrokerSupervisor(
            num_shards=2, topics=[("t", 2)], restart=True
        ) as supervisor:
            addresses = list(supervisor.addresses)
            supervisor.kill_shard(1)
            assert _wait_until(
                lambda: supervisor.is_alive(1) and supervisor.epoch == 2
            )
            assert supervisor.restarts == 1
            # Respawn pins the original port, so cached bootstrap lists
            # and client shard maps stay valid.
            assert list(supervisor.addresses) == addresses
            with ClusterBroker(supervisor.bootstrap) as broker:
                # The epoch broadcast reaches shard control loops
                # asynchronously; refresh until a shard reports it.
                assert _wait_until(
                    lambda: broker.refresh_metadata().epoch == 2
                )
