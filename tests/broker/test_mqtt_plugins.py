"""Tests for the MQTT-style broker and the plugin registry."""

import pytest

from repro.broker import Broker, MqttStyleBroker, available_plugins, create_broker
from repro.util.validation import ValidationError


class TestPluginRegistry:
    def test_builtins_registered(self):
        assert set(available_plugins()) >= {"kafka", "mqtt"}

    def test_create_kafka(self):
        assert isinstance(create_broker("kafka"), Broker)

    def test_create_mqtt(self):
        assert isinstance(create_broker("mqtt"), MqttStyleBroker)

    def test_unknown_plugin(self):
        with pytest.raises(ValidationError, match="unknown broker plugin"):
            create_broker("rabbitmq")

    def test_kwargs_forwarded(self):
        b = create_broker("mqtt", queue_size=8)
        assert b._queue_size == 8


class TestMqttMatching:
    @pytest.mark.parametrize("filt,topic,expected", [
        ("a/b", "a/b", True),
        ("a/b", "a/c", False),
        ("a/+", "a/b", True),
        ("a/+", "a/b/c", False),
        ("a/#", "a/b/c", True),
        ("#", "anything/at/all", True),
        ("+/temp", "kitchen/temp", True),
        ("+/temp", "kitchen/hum", False),
        ("a/+/c", "a/b/c", True),
        ("a/b", "a", False),
    ])
    def test_wildcards(self, filt, topic, expected):
        assert MqttStyleBroker._matches(filt, topic) is expected


class TestMqttBroker:
    def test_publish_subscribe(self):
        broker = MqttStyleBroker()
        sub = broker.subscribe("sensors/+/temp")
        assert broker.publish("sensors/a/temp", 21.5) == 1
        assert sub.get() == 21.5

    def test_non_matching_not_delivered(self):
        broker = MqttStyleBroker()
        sub = broker.subscribe("sensors/a/temp")
        broker.publish("sensors/b/temp", 1)
        assert sub.get() is None

    def test_multiple_subscribers(self):
        broker = MqttStyleBroker()
        s1 = broker.subscribe("x")
        s2 = broker.subscribe("#")
        assert broker.publish("x", "v") == 2
        assert s1.get() == "v" and s2.get() == "v"

    def test_qos0_drops_when_full(self):
        broker = MqttStyleBroker(queue_size=2)
        sub = broker.subscribe("x")
        for i in range(5):
            broker.publish("x", i)
        assert sub.pending() == 2
        assert sub.dropped == 3
        assert broker.messages_dropped == 3

    def test_unsubscribe(self):
        broker = MqttStyleBroker()
        sub = broker.subscribe("x")
        broker.unsubscribe(sub)
        assert broker.publish("x", 1) == 0

    def test_publish_with_wildcard_rejected(self):
        broker = MqttStyleBroker()
        with pytest.raises(ValidationError):
            broker.publish("a/+", 1)
        with pytest.raises(ValidationError):
            broker.publish("a/#", 1)

    def test_empty_filter_rejected(self):
        with pytest.raises(ValidationError):
            MqttStyleBroker().subscribe("")

    def test_stats(self):
        broker = MqttStyleBroker()
        broker.subscribe("x")
        broker.publish("x", 1)
        stats = broker.stats()
        assert stats["messages_published"] == 1
        assert stats["subscriptions"] == 1

    def test_get_with_timeout(self):
        import time

        broker = MqttStyleBroker()
        sub = broker.subscribe("x")
        t0 = time.monotonic()
        assert sub.get(timeout=0.05) is None
        assert time.monotonic() - t0 >= 0.04
