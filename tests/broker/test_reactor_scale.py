"""Connection-scale stress test: 1k+ concurrent clients on one reactor.

The point of the reactor rewrite is that connection count stops being a
thread count: 1000 clients — idle, long-polling, and pipeline-producing
at once — must be served by O(num_workers) threads with flat (bounded,
per-connection) memory, and every request must get an answer.
"""

import resource
import socket
import threading
import time
import tracemalloc

import pytest

from repro.broker.reactor import ReactorBrokerServer
from repro.broker.wire import b64, recv_frame, send_frame

TARGET_CLIENTS = 1000
N_PRODUCERS = 100
N_LONG_POLLERS = 300
APPENDS_PER_PRODUCER = 5
PER_CONN_MEMORY_BOUND = 32 * 1024  # bytes of Python heap per idle conn


def _ensure_fds(needed: int) -> bool:
    """Raise RLIMIT_NOFILE to *needed* if possible; True on success."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= needed:
        return True
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))
    except (ValueError, OSError):
        return False
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0] >= needed


def _wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_1k_concurrent_clients_on_one_reactor():
    # Both socket ends live in this process: ~2 fds per client + slack.
    if not _ensure_fds(2 * TARGET_CLIENTS + 256):
        pytest.skip("cannot raise RLIMIT_NOFILE high enough for 1k clients")

    server = ReactorBrokerServer(num_workers=4).start()
    server.broker.create_topic("lp", 1)
    server.broker.create_topic("prod", 1)
    socks: list[socket.socket] = []
    try:
        baseline_threads = threading.active_count()

        def connect() -> socket.socket:
            sock = socket.create_connection((server.host, server.port), timeout=30)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(30)
            socks.append(sock)
            return sock

        producers = [connect() for _ in range(N_PRODUCERS)]
        pollers = [connect() for _ in range(N_LONG_POLLERS)]

        # Idle connections under tracemalloc: per-connection memory must
        # be flat — a bounded decoder + buffers, no thread stack.
        n_idle = TARGET_CLIENTS - N_PRODUCERS - N_LONG_POLLERS
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(n_idle):
            connect()
        assert _wait_until(lambda: server.connections_active == TARGET_CLIENTS)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert (after - before) / n_idle < PER_CONN_MEMORY_BOUND

        # Park every long-poller on one wire request each.
        for sock in pollers:
            send_frame(
                sock,
                {"op": "fetch", "topic": "lp", "partition": 0, "offset": 0,
                 "timeout": 60.0, "cid": 0},
            )
        assert _wait_until(lambda: server.parked_fetches == N_LONG_POLLERS)

        # O(1) threads: 1000 connections and 300 parked long-polls added
        # not a single thread beyond the reactor + worker pool.
        assert threading.active_count() == baseline_threads

        # Pipelined producers: several in-flight appends per connection.
        for i, sock in enumerate(producers):
            for j in range(APPENDS_PER_PRODUCER):
                send_frame(
                    sock,
                    {"op": "append", "topic": "prod", "partition": 0,
                     "value": b64(b"m%d-%d" % (i, j)), "cid": j},
                )
        for sock in producers:
            cids = set()
            for _ in range(APPENDS_PER_PRODUCER):
                response, _ = recv_frame(sock)
                assert response["ok"]
                cids.add(response["cid"])
            assert cids == set(range(APPENDS_PER_PRODUCER))

        # One append wakes all 300 parked fetches; each gets the record.
        server.broker.append("lp", 0, b"wake")
        for sock in pollers:
            response, _ = recv_frame(sock)
            assert response["ok"] and response["cid"] == 0
            assert len(response["result"]) == 1
        assert server.parked_fetches == 0

        # Every request got an answer, and it is reflected in the counts.
        expected = N_PRODUCERS * APPENDS_PER_PRODUCER + N_LONG_POLLERS
        assert server.requests_served == expected
        assert server.connections_served == TARGET_CLIENTS
        assert server.connections_active == TARGET_CLIENTS
    finally:
        if tracemalloc.is_tracing():
            tracemalloc.stop()
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        server.stop()
