"""Tests for producer and consumer clients."""

import numpy as np
import pytest

from repro.broker import (
    BlockSerde,
    Broker,
    Consumer,
    JsonSerde,
    KeyHashPartitioner,
    Producer,
    RoundRobinPartitioner,
    StickyPartitioner,
)
from repro.util.validation import ValidationError


@pytest.fixture
def topic_broker(broker):
    broker.create_topic("t", 4)
    return broker


class TestPartitioners:
    def test_key_hash_is_stable(self):
        p = KeyHashPartitioner()
        assert p.select(b"key", 4) == p.select(b"key", 4)

    def test_key_hash_within_range(self):
        p = KeyHashPartitioner()
        for i in range(50):
            assert 0 <= p.select(f"k{i}".encode(), 4) < 4

    def test_keyless_round_robins(self):
        p = KeyHashPartitioner()
        picks = [p.select(None, 4) for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_round_robin_ignores_key(self):
        p = RoundRobinPartitioner()
        picks = [p.select(b"same", 3) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_sticky_batches(self):
        p = StickyPartitioner(batch_size=3)
        picks = [p.select(None, 4) for _ in range(9)]
        assert picks[:3] == [0, 0, 0]
        assert picks[3:6] == [1, 1, 1]

    def test_sticky_respects_keys(self):
        p = StickyPartitioner(batch_size=2)
        assert p.select(b"k", 4) == p.select(b"k", 4)


class TestProducer:
    def test_send_explicit_partition(self, topic_broker):
        producer = Producer(topic_broker)
        md = producer.send("t", b"x", partition=2)
        assert md.partition == 2

    def test_send_via_partitioner(self, topic_broker):
        producer = Producer(topic_broker, partitioner=RoundRobinPartitioner())
        partitions = [producer.send("t", b"x").partition for _ in range(4)]
        assert partitions == [0, 1, 2, 3]

    def test_serde_applied(self, topic_broker):
        producer = Producer(topic_broker, serde=JsonSerde())
        producer.send("t", {"a": 1}, partition=0)
        record = topic_broker.fetch("t", 0, 0)[0]
        assert record.value == b'{"a":1}'

    def test_block_serde_roundtrip(self, topic_broker):
        block = np.arange(12.0).reshape(3, 4)
        producer = Producer(topic_broker, serde=BlockSerde())
        producer.send("t", block, partition=0)
        consumer = Consumer(topic_broker, serde=BlockSerde())
        consumer.assign([("t", 0)])
        [decoded] = consumer.poll_values()
        np.testing.assert_array_equal(decoded, block)

    def test_metrics(self, topic_broker):
        producer = Producer(topic_broker)
        producer.send("t", b"abc", partition=0)
        stats = producer.stats()
        assert stats["records_sent"] == 1
        assert stats["bytes_sent"] == 3


class TestBatchedProducer:
    def test_send_many_offsets_and_metrics(self, topic_broker):
        producer = Producer(topic_broker)
        md = producer.send_many("t", [b"a", b"bb", b"ccc"], partition=2)
        assert md.partition == 2
        assert md.base_offset == 0
        assert md.count == 3
        assert md.last_offset == 2
        assert producer.records_sent == 3
        assert producer.bytes_sent == 6

    def test_send_many_routes_whole_batch_to_one_partition(self, topic_broker):
        producer = Producer(topic_broker, partitioner=RoundRobinPartitioner())
        md = producer.send_many("t", [b"a", b"b", b"c"])
        assert topic_broker.latest_offset("t", md.partition) == 3

    def test_send_many_applies_serde(self, topic_broker):
        producer = Producer(topic_broker, serde=JsonSerde())
        producer.send_many("t", [{"a": 1}, {"b": 2}], partition=0)
        values = [r.value for r in topic_broker.fetch("t", 0, 0, max_records=4)]
        assert values == [b'{"a":1}', b'{"b":2}']

    def test_send_many_empty_rejected(self, topic_broker):
        with pytest.raises(ValidationError):
            Producer(topic_broker).send_many("t", [])

    def test_accumulator_flushes_at_batch_size(self, topic_broker):
        from repro.broker import BatchAccumulator

        producer = Producer(topic_broker)
        acc = BatchAccumulator(producer, batch_records=3)
        for i in range(7):
            acc.add("t", bytes([i]), partition=0)
        assert acc.batches_flushed == 2  # two full auto-flushes
        assert acc.pending_records == 1
        flushed = acc.flush()
        assert acc.pending_records == 0
        assert sum(md.count for md in flushed) == 1
        records = topic_broker.fetch("t", 0, 0, max_records=16)
        assert [r.value for r in records] == [bytes([i]) for i in range(7)]

    def test_accumulator_context_manager_flushes(self, topic_broker):
        from repro.broker import BatchAccumulator

        with BatchAccumulator(Producer(topic_broker), batch_records=100) as acc:
            acc.add("t", b"x", partition=1)
        assert topic_broker.latest_offset("t", 1) == 1


class TestConsumerManualAssign:
    def test_assign_and_poll(self, topic_broker):
        Producer(topic_broker).send("t", b"v", partition=1)
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 1)])
        records = consumer.poll()
        assert len(records) == 1

    def test_position_advances(self, topic_broker):
        producer = Producer(topic_broker)
        for _ in range(3):
            producer.send("t", b"x", partition=0)
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        consumer.poll(max_records=2)
        assert consumer.position("t", 0) == 2

    def test_seek(self, topic_broker):
        producer = Producer(topic_broker)
        for i in range(5):
            producer.send("t", bytes([i]), partition=0)
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        consumer.poll(max_records=10)
        consumer.seek("t", 0, 2)
        records = consumer.poll(max_records=10)
        assert [r.offset for r in records] == [2, 3, 4]

    def test_seek_unassigned_rejected(self, topic_broker):
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        with pytest.raises(ValidationError):
            consumer.seek("t", 3, 0)

    def test_latest_offset_reset(self, topic_broker):
        producer = Producer(topic_broker)
        producer.send("t", b"old", partition=0)
        consumer = Consumer(topic_broker, auto_offset_reset="latest")
        consumer.assign([("t", 0)])
        assert consumer.poll() == []
        producer.send("t", b"new", partition=0)
        assert consumer.poll()[0].value == b"new"

    def test_lag(self, topic_broker):
        producer = Producer(topic_broker)
        for _ in range(7):
            producer.send("t", b"x", partition=0)
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        consumer.poll(max_records=3)
        assert consumer.lag()[("t", 0)] == 4

    def test_subscribe_without_group_rejected(self, topic_broker):
        consumer = Consumer(topic_broker)
        with pytest.raises(ValidationError):
            consumer.subscribe("t")

    def test_closed_consumer_rejects_poll(self, topic_broker):
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        consumer.close()
        with pytest.raises(ValidationError):
            consumer.poll()

    def test_blocking_poll_timeout(self, topic_broker):
        import time

        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        t0 = time.monotonic()
        assert consumer.poll(timeout=0.05) == []
        assert time.monotonic() - t0 >= 0.04

    def test_blocking_poll_multi_partition_timeout(self, topic_broker):
        import time

        consumer = Consumer(topic_broker)
        consumer.assign([("t", p) for p in range(4)])
        t0 = time.monotonic()
        assert consumer.poll(timeout=0.05) == []
        assert time.monotonic() - t0 >= 0.04

    def test_blocking_poll_wakes_on_any_partition(self, topic_broker):
        # A blocked poll must observe data on whichever assigned
        # partition it lands on — not just the first — well before the
        # timeout expires.
        import threading
        import time

        producer = Producer(topic_broker)
        consumer = Consumer(topic_broker)
        consumer.assign([("t", p) for p in range(4)])

        def late_append():
            time.sleep(0.05)
            producer.send("t", b"wake", partition=3)

        t = threading.Thread(target=late_append)
        t0 = time.monotonic()
        t.start()
        records = consumer.poll(timeout=5.0)
        elapsed = time.monotonic() - t0
        t.join()
        assert [r.value for r in records] == [b"wake"]
        assert elapsed < 2.0, f"poll blocked {elapsed:.2f}s on the wrong partition"

    def test_invalid_offset_reset(self, topic_broker):
        with pytest.raises(ValidationError):
            Consumer(topic_broker, auto_offset_reset="middle")

    def test_consume_metrics(self, topic_broker):
        Producer(topic_broker).send("t", b"abc", partition=0)
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        consumer.poll()
        assert consumer.stats()["records_consumed"] == 1
        assert consumer.stats()["bytes_consumed"] == 3


class TestConsumerGroups:
    def test_single_consumer_gets_all_partitions(self, topic_broker):
        consumer = Consumer(topic_broker, group_id="g")
        consumer.subscribe("t")
        assert len(consumer.assignment) == 4

    def test_two_consumers_split_partitions(self, topic_broker):
        c1 = Consumer(topic_broker, group_id="g")
        c1.subscribe("t")
        c2 = Consumer(topic_broker, group_id="g")
        c2.subscribe("t")
        c1.poll()  # triggers rebalance refresh
        assigned = sorted(c1.assignment + c2.assignment)
        assert assigned == [("t", p) for p in range(4)]
        assert len(c1.assignment) == 2
        assert len(c2.assignment) == 2

    def test_leave_triggers_rebalance(self, topic_broker):
        c1 = Consumer(topic_broker, group_id="g")
        c1.subscribe("t")
        c2 = Consumer(topic_broker, group_id="g")
        c2.subscribe("t")
        c2.close()
        c1.poll()
        assert len(c1.assignment) == 4

    def test_commit_resume(self, topic_broker):
        producer = Producer(topic_broker)
        for i in range(6):
            producer.send("t", bytes([i]), partition=0)
        c1 = Consumer(topic_broker, group_id="g")
        c1.subscribe("t")
        c1.poll(max_records=3)
        c1.commit()
        c1.close()
        c2 = Consumer(topic_broker, group_id="g")
        c2.subscribe("t")
        records = c2.poll(max_records=10)
        # Resumes after the committed offset on partition 0.
        p0 = [r for r in records if r.partition == 0]
        assert [r.offset for r in p0] == [3, 4, 5]

    def test_commit_without_group_rejected(self, topic_broker):
        consumer = Consumer(topic_broker)
        consumer.assign([("t", 0)])
        with pytest.raises(ValidationError):
            consumer.commit()

    def test_mixing_subscribe_and_assign_rejected(self, topic_broker):
        consumer = Consumer(topic_broker, group_id="g")
        consumer.subscribe("t")
        with pytest.raises(ValidationError):
            consumer.assign([("t", 0)])

    def test_context_manager_leaves_group(self, topic_broker):
        with Consumer(topic_broker, group_id="g") as c:
            c.subscribe("t")
            assert topic_broker.coordinator.members("g") == [c.client_id]
        assert topic_broker.coordinator.members("g") == []

    def test_group_consumption_covers_all_messages(self, topic_broker):
        producer = Producer(topic_broker, partitioner=RoundRobinPartitioner())
        for i in range(20):
            producer.send("t", bytes([i]))
        c1 = Consumer(topic_broker, group_id="g")
        c1.subscribe("t")
        c2 = Consumer(topic_broker, group_id="g")
        c2.subscribe("t")
        seen = []
        for _ in range(10):
            seen.extend(r.value for r in c1.poll(max_records=50))
            seen.extend(r.value for r in c2.poll(max_records=50))
        assert sorted(seen) == [bytes([i]) for i in range(20)]
