"""Tests for the pipelined wire protocol (correlation ids, in-flight
requests, broker-side long-poll fetch, deadline accounting)."""

import threading
import time

import pytest

from repro.broker import Broker
from repro.broker.errors import BrokerTimeoutError
from repro.broker.remote import BrokerServer, RemoteBroker
from repro.netem import Link, LinkProfile


@pytest.fixture
def server():
    with BrokerServer() as srv:
        yield srv


@pytest.fixture
def remote(server):
    with RemoteBroker(server.host, server.port) as rb:
        yield rb


class TestPipelining:
    def test_concurrent_requests_correlate_correctly(self, server, remote):
        """Many threads on ONE connection each get their own answer back."""
        remote.create_topic("t", 8)
        for p in range(8):
            remote.append_many("t", p, [bytes([p])] * 4)
        results: dict[int, list] = {}

        def fetch(p):
            results[p] = remote.fetch("t", p, 0, max_records=8)

        threads = [threading.Thread(target=fetch, args=(p,)) for p in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        for p in range(8):
            assert [r.value for r in results[p]] == [bytes([p])] * 4

    def test_parked_fetch_does_not_block_append_on_same_connection(self, remote):
        """The head-of-line test: one connection, a long-poll fetch parked
        server-side, and the append that satisfies it sent on the SAME
        connection. Without pipelining this deadlocks until the fetch
        times out."""
        remote.create_topic("t", 1)
        out = []
        t = threading.Thread(
            target=lambda: out.extend(remote.fetch("t", 0, 0, timeout=5.0))
        )
        t.start()
        time.sleep(0.1)  # let the fetch park on the broker
        remote.append_many("t", 0, [b"wake"])
        t.join(timeout=5)
        assert not t.is_alive()
        assert [r.value for r in out] == [b"wake"]

    def test_in_flight_bounded_by_cap(self, server):
        with RemoteBroker(server.host, server.port, max_in_flight_requests=3) as rb:
            rb.create_topic("t", 1)
            threads = [
                threading.Thread(target=rb.latest_offset, args=("t", 0))
                for _ in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert rb.max_in_flight_seen <= 3

    def test_non_idempotent_appends_serialize_without_deadlock(self, remote):
        """Plain appends (no producer id) take the in-flight gate
        exclusively; many concurrent ones must all land, just serially."""
        remote.create_topic("t", 1)
        errors = []

        def append(i):
            try:
                remote.append("t", 0, bytes([i]))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=append, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert remote.latest_offset("t", 0) == 10
        records = remote.fetch("t", 0, 0, max_records=20)
        assert sorted(r.value for r in records) == [bytes([i]) for i in range(10)]

    def test_concurrent_fetches_overlap_link_rtt(self, server):
        """Pipelined requests pay their emulated RTTs concurrently: four
        fetches over a ~200 ms link finish well under the 0.8 s a serial
        client would need."""
        profile = LinkProfile("fixed-rtt", 200.0, 200.0, 10_000.0, 10_000.0)
        with RemoteBroker(
            server.host, server.port, link=Link(profile, time_scale=1.0)
        ) as rb:
            rb.link = None  # admin ops below at full speed
            rb.create_topic("t", 4)
            for p in range(4):
                rb.append_many("t", p, [b"x"] * 2)
            rb.link = Link(profile, time_scale=1.0)
            start = time.monotonic()
            threads = [
                threading.Thread(target=rb.fetch, args=("t", p, 0)) for p in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            elapsed = time.monotonic() - start
            assert rb.link.rtt_delays == 4
            assert elapsed < 0.6  # serial would be >= 0.8


class TestLongPollFetch:
    def test_long_poll_parks_server_side_in_one_request(self, server, remote):
        """A blocking fetch is ONE wire request that parks on the broker —
        not a client-side poll loop re-sending requests."""
        remote.create_topic("t", 1)
        sent_before = remote.requests_sent
        out = []
        t = threading.Thread(
            target=lambda: out.extend(remote.fetch("t", 0, 0, timeout=5.0))
        )
        t.start()
        time.sleep(0.15)
        assert server.broker.stats()["long_polls_parked"] >= 1
        remote.append_many("t", 0, [b"v"])
        t.join(timeout=5)
        assert len(out) == 1
        # One fetch_batch + one append_batch; no re-poll traffic.
        assert remote.requests_sent - sent_before == 2

    def test_min_bytes_holds_fetch_until_enough_data(self):
        broker = Broker()
        broker.create_topic("t", 1)
        broker.append("t", 0, b"a")  # 1 byte available, threshold is 100

        def feed():
            time.sleep(0.1)
            broker.append("t", 0, b"b" * 200)

        threading.Thread(target=feed).start()
        start = time.monotonic()
        records = broker.fetch("t", 0, 0, timeout=5.0, min_bytes=100)
        elapsed = time.monotonic() - start
        assert len(records) == 2  # returned only once the big record landed
        assert elapsed >= 0.05

    def test_min_bytes_deadline_returns_partial(self):
        broker = Broker()
        broker.create_topic("t", 1)
        broker.append("t", 0, b"a")
        start = time.monotonic()
        records = broker.fetch("t", 0, 0, timeout=0.15, min_bytes=10_000)
        assert time.monotonic() - start >= 0.14
        assert [r.value for r in records] == [b"a"]  # best effort at deadline

    def test_full_batch_satisfies_min_bytes_early(self):
        broker = Broker()
        broker.create_topic("t", 1)
        for _ in range(4):
            broker.append("t", 0, b"x")
        start = time.monotonic()
        records = broker.fetch("t", 0, 0, max_records=4, timeout=2.0, min_bytes=10_000)
        assert len(records) == 4
        assert time.monotonic() - start < 1.0  # full batch returns immediately

    def test_min_bytes_travels_the_wire(self, server, remote):
        remote.create_topic("t", 1)
        remote.append_many("t", 0, [b"small"])

        def feed():
            time.sleep(0.1)
            with RemoteBroker(server.host, server.port) as rb:
                rb.append_many("t", 0, [b"y" * 500])

        threading.Thread(target=feed).start()
        records = remote.fetch("t", 0, 0, timeout=5.0, min_bytes=100)
        assert len(records) == 2


class TestDeadlineAccounting:
    def test_long_poll_longer_than_op_timeout_is_not_misdiagnosed(self, server):
        """A parked fetch waiting out its max_wait on an idle topic must
        return empty — not be declared a dead server — even when the wait
        exceeds op_timeout, and even with netem RTT on the link."""
        profile = LinkProfile("slow", 30.0, 30.0, 1_000.0, 1_000.0)
        with RemoteBroker(
            server.host,
            server.port,
            op_timeout=0.1,
            max_attempts=1,
            link=Link(profile, time_scale=1.0),
        ) as rb:
            rb.create_topic("t", 1)
            start = time.monotonic()
            records = rb.fetch("t", 0, 0, timeout=0.4)
            elapsed = time.monotonic() - start
            assert records == []
            assert rb.reconnects == 0
            assert elapsed >= 0.4  # genuinely parked the full wait

    def test_silent_server_still_times_out(self):
        """Deadline slack must not mask a truly dead server: a socket that
        accepts but never responds raises BrokerTimeoutError promptly."""
        import socket as socketlib

        sink = socketlib.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(1)
        host, port = sink.getsockname()
        try:
            rb = RemoteBroker(host, port, op_timeout=0.2, max_attempts=1)
            start = time.monotonic()
            with pytest.raises(BrokerTimeoutError):
                rb.list_topics()
            assert time.monotonic() - start < 5.0
            rb.close()
        finally:
            sink.close()
