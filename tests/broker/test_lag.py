"""Tests for consumer-lag accounting: position-based and committed-based."""

import time

import pytest

from repro.broker import Broker, Consumer, Producer
from repro.broker.remote import BrokerServer, RemoteBroker


def _fill(broker, n=8, topic="t", partition=0, payload=b"x"):
    Producer(broker).send_many(topic, [payload] * n, partition=partition)


def _drain(consumer, n, timeout=5.0):
    got = []
    deadline = time.monotonic() + timeout
    while len(got) < n and time.monotonic() < deadline:
        got.extend(consumer.poll(max_records=n, timeout=0.2))
    assert len(got) >= n, f"drained {len(got)}/{n}"
    return got


class TestConsumerPositionLag:
    def test_lag_counts_undelivered_records(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        _fill(broker, 8)
        consumer = Consumer(broker)
        consumer.assign([("t", 0)])
        assert consumer.lag() == {("t", 0): 8}
        _drain(consumer, 3)
        assert consumer.lag() == {("t", 0): 5}
        _drain(consumer, 5)
        assert consumer.lag() == {("t", 0): 0}

    def test_lag_after_seek(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        _fill(broker, 8)
        consumer = Consumer(broker)
        consumer.assign([("t", 0)])
        _drain(consumer, 8)
        assert consumer.lag() == {("t", 0): 0}
        # seeking backwards re-exposes records as lag...
        consumer.seek("t", 0, 2)
        assert consumer.lag() == {("t", 0): 6}
        # ...and seeking past the end clamps to zero, not negative
        consumer.seek("t", 0, 100)
        assert consumer.lag() == {("t", 0): 0}

    def test_rebalance_newly_assigned_partition_starts_at_committed(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=2)
        for p in (0, 1):
            _fill(broker, 6, partition=p)
        first = Consumer(broker, group_id="g", client_id="c1")
        first.subscribe("t")
        _drain(first, 12)
        # commit only partial progress (broker-side, like a crashed
        # consumer that last committed at offset 2)
        broker.commit_offset("g", "t", 0, 2)
        broker.commit_offset("g", "t", 1, 2)
        assert first.lag() == {("t", 0): 0, ("t", 1): 0}
        # a second member joining forces a rebalance; the partition that
        # changes owner starts from the committed offset, so the first
        # consumer's uncommitted progress re-appears as lag at the new
        # owner (records 2..6 will be redelivered)
        second = Consumer(broker, group_id="g", client_id="c2")
        second.subscribe("t")
        delivered = second.poll(max_records=1, timeout=0.5)  # adopt the assignment
        taken = list(second.assignment)
        assert taken, "rebalance assigned nothing to the new member"
        lag = second.lag()
        # committed at 2 of 6 -> 4 outstanding, minus whatever that first
        # poll already handed over
        expected = {tp: 4 for tp in taken}
        for rec in delivered:
            expected[(rec.topic, rec.partition)] -= 1
        assert lag == expected, (lag, expected)
        # the redelivered record is the first uncommitted one
        if delivered:
            assert delivered[0].offset == 2
        first.close()
        second.close()

    def test_prefetch_buffered_records_still_count_as_lag(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        _fill(broker, 8)
        consumer = Consumer(broker, fetch_prefetch_batches=4, fetch_max_wait_ms=10.0)
        consumer.assign([("t", 0)])
        # prime the prefetcher without consuming everything
        _drain(consumer, 1)
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            stats = consumer.stats()
            if stats.get("prefetch_buffered_records", 0) > 0:
                break
            time.sleep(0.01)
        assert stats["prefetch_buffered_records"] > 0
        # buffered-but-undelivered records are still outstanding
        assert consumer.lag()[("t", 0)] == 7
        consumer.close()


class TestBrokerCommittedLag:
    def test_lag_from_committed_offsets(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=2)
        _fill(broker, 6, partition=0)
        _fill(broker, 4, partition=1)
        consumer = Consumer(broker, group_id="g")
        consumer.subscribe("t")
        # nothing committed: full logs are lag
        assert broker.consumer_lag("g") == {("t", 0): 6, ("t", 1): 4}
        _drain(consumer, 10)
        assert broker.consumer_lag("g") == {("t", 0): 6, ("t", 1): 4}
        consumer.commit()
        assert broker.consumer_lag("g") == {("t", 0): 0, ("t", 1): 0}
        consumer.close()
        # committed offsets survive group shutdown
        assert broker.consumer_lag("g") == {("t", 0): 0, ("t", 1): 0}
        _fill(broker, 3, partition=0)
        assert broker.consumer_lag("g")[("t", 0)] == 3

    def test_unknown_group_is_empty(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        assert broker.consumer_lag("ghost") == {}

    def test_committed_offsets_accessors(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        _fill(broker, 5)
        consumer = Consumer(broker, group_id="g")
        consumer.subscribe("t")
        _drain(consumer, 5)
        consumer.commit()
        assert broker.committed_offsets("g") == {("t", 0): 5}
        assert broker.committed_offsets() == {("g", "t", 0): 5}
        # the coordinator exposes the same view for group tooling
        assert broker.coordinator.committed_offsets("g") == {("t", 0): 5}
        assert broker.coordinator.group_ids() == ["g"]
        assert broker.coordinator.group_topics("g") == ["t"]
        consumer.close()

    def test_partition_depths(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=2)
        _fill(broker, 3, partition=1, payload=b"abcd")
        depths = broker.partition_depths()
        assert depths[("t", 0)] == {"depth": 0, "end_offset": 0, "bytes": 0}
        assert depths[("t", 1)] == {"depth": 3, "end_offset": 3, "bytes": 12}


class TestRemoteLagOps:
    def test_lag_surface_over_the_wire(self):
        core = Broker(name="core")
        with BrokerServer(broker=core) as server:
            with RemoteBroker(server.host, server.port) as remote:
                remote.create_topic("t", num_partitions=1)
                Producer(remote).send_many("t", [b"xy"] * 4, partition=0)
                consumer = Consumer(remote, group_id="g")
                consumer.subscribe("t")
                assert remote.consumer_lag("g") == {("t", 0): 4}
                _drain(consumer, 4)
                consumer.commit()
                assert remote.consumer_lag("g") == {("t", 0): 0}
                assert remote.committed_offsets("g") == {("t", 0): 4}
                assert remote.partition_depths() == {
                    ("t", 0): {"depth": 4, "end_offset": 4, "bytes": 8}
                }
                assert remote.coordinator.group_ids() == ["g"]
                assert remote.coordinator.committed_offsets("g") == {("t", 0): 4}
                consumer.close()
