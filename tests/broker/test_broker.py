"""Tests for the broker node."""

import pytest

from repro.broker import (
    Broker,
    UnknownPartitionError,
    UnknownTopicError,
)
from repro.broker.errors import TopicExistsError
from repro.util.validation import ValidationError


class TestTopicManagement:
    def test_create_and_list(self, broker):
        broker.create_topic("a", 2)
        broker.create_topic("b", 1)
        assert broker.list_topics() == ["a", "b"]

    def test_duplicate_create_rejected(self, broker):
        broker.create_topic("a")
        with pytest.raises(TopicExistsError):
            broker.create_topic("a")

    def test_exist_ok(self, broker):
        t1 = broker.create_topic("a", 2)
        t2 = broker.create_topic("a", 9, exist_ok=True)
        assert t1 is t2
        assert t2.num_partitions == 2  # original config kept

    def test_unknown_topic(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.topic("missing")

    def test_delete(self, broker):
        broker.create_topic("a")
        broker.delete_topic("a")
        assert not broker.has_topic("a")

    def test_delete_unknown(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.delete_topic("missing")

    def test_auto_create(self):
        broker = Broker(auto_create_topics=True)
        broker.append("auto", 0, b"x")
        assert broker.has_topic("auto")

    def test_invalid_partition_count(self, broker):
        with pytest.raises(ValidationError):
            broker.create_topic("a", 0)


class TestDataPath:
    def test_append_returns_metadata(self, broker):
        broker.create_topic("t", 2)
        md = broker.append("t", 1, b"x")
        assert (md.topic, md.partition, md.offset) == ("t", 1, 0)

    def test_append_to_unknown_partition(self, broker):
        broker.create_topic("t", 1)
        with pytest.raises(UnknownPartitionError):
            broker.append("t", 5, b"x")

    def test_fetch_roundtrip(self, broker):
        broker.create_topic("t", 1)
        broker.append("t", 0, b"hello")
        records = broker.fetch("t", 0, 0)
        assert records[0].value == b"hello"

    def test_offsets_introspection(self, broker):
        broker.create_topic("t", 1)
        assert broker.earliest_offset("t", 0) == 0
        assert broker.latest_offset("t", 0) == 0
        broker.append("t", 0, b"x")
        assert broker.latest_offset("t", 0) == 1


class TestCommittedOffsets:
    def test_commit_and_read(self, broker):
        broker.create_topic("t", 1)
        broker.commit_offset("g", "t", 0, 5)
        assert broker.committed_offset("g", "t", 0) == 5

    def test_no_commit_returns_none(self, broker):
        broker.create_topic("t", 1)
        assert broker.committed_offset("g", "t", 0) is None

    def test_commits_are_monotonic(self, broker):
        broker.create_topic("t", 1)
        broker.commit_offset("g", "t", 0, 10)
        broker.commit_offset("g", "t", 0, 3)  # stale commit
        assert broker.committed_offset("g", "t", 0) == 10

    def test_commits_isolated_per_group(self, broker):
        broker.create_topic("t", 1)
        broker.commit_offset("g1", "t", 0, 5)
        assert broker.committed_offset("g2", "t", 0) is None

    def test_commit_unknown_topic(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.commit_offset("g", "missing", 0, 1)


class TestStats:
    def test_stats_shape(self, broker):
        broker.create_topic("t", 2)
        broker.append("t", 0, b"abc")
        stats = broker.stats()
        assert stats["topics"]["t"]["records_in"] == 1
        assert stats["topics"]["t"]["bytes_in"] == 3
        assert stats["topics"]["t"]["partitions"] == 2
