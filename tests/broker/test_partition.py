"""Tests for the partition log."""

import threading
import time

import pytest

from repro.broker import OffsetOutOfRangeError, PartitionLog


@pytest.fixture
def log():
    return PartitionLog("t", 0)


class TestAppend:
    def test_offsets_are_sequential(self, log):
        records = [log.append(b"x") for _ in range(5)]
        assert [r.offset for r in records] == [0, 1, 2, 3, 4]

    def test_record_carries_identity(self, log):
        r = log.append(b"payload", key=b"k", headers={"h": 1})
        assert r.topic == "t"
        assert r.partition == 0
        assert r.value == b"payload"
        assert r.key == b"k"
        assert r.headers == {"h": 1}

    def test_timestamps_stamped(self, log):
        r = log.append(b"x")
        assert r.append_ts > 0
        assert r.produce_ts > 0
        assert r.append_ts >= r.produce_ts or abs(r.append_ts - r.produce_ts) < 0.01

    def test_explicit_produce_ts_preserved(self, log):
        r = log.append(b"x", produce_ts=123.0)
        assert r.produce_ts == 123.0

    def test_counters(self, log):
        log.append(b"abc")
        log.append(b"de")
        assert log.total_appended == 2
        assert log.total_bytes_in == 5


class TestFetch:
    def test_fetch_from_start(self, log):
        for i in range(3):
            log.append(bytes([i]))
        records = log.fetch(0, max_records=10)
        assert [r.value for r in records] == [b"\x00", b"\x01", b"\x02"]

    def test_fetch_respects_max_records(self, log):
        for i in range(10):
            log.append(b"x")
        assert len(log.fetch(0, max_records=4)) == 4

    def test_fetch_from_middle(self, log):
        for i in range(5):
            log.append(bytes([i]))
        records = log.fetch(3)
        assert [r.offset for r in records] == [3, 4]

    def test_fetch_at_head_returns_empty(self, log):
        log.append(b"x")
        assert log.fetch(1) == []

    def test_fetch_beyond_head_raises(self, log):
        log.append(b"x")
        with pytest.raises(OffsetOutOfRangeError):
            log.fetch(5)

    def test_blocking_fetch_wakes_on_append(self, log):
        result = []

        def consume():
            result.extend(log.fetch(0, timeout=5.0))

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.05)
        log.append(b"wake")
        t.join(timeout=5.0)
        assert len(result) == 1
        assert result[0].value == b"wake"

    def test_blocking_fetch_times_out(self, log):
        t0 = time.monotonic()
        assert log.fetch(0, timeout=0.05) == []
        assert time.monotonic() - t0 >= 0.04


class TestRetention:
    def test_unlimited_by_default(self, log):
        for _ in range(100):
            log.append(b"x" * 100)
        assert len(log) == 100
        assert log.earliest_offset == 0

    def test_size_based_eviction(self):
        log = PartitionLog("t", 0, retention_bytes=250)
        for i in range(10):
            log.append(b"x" * 100)
        assert log.size_bytes <= 250
        assert log.earliest_offset > 0
        # Head offset is unaffected by retention.
        assert log.latest_offset == 10

    def test_fetch_below_retention_floor_raises(self):
        log = PartitionLog("t", 0, retention_bytes=150)
        for _ in range(5):
            log.append(b"x" * 100)
        with pytest.raises(OffsetOutOfRangeError):
            log.fetch(0)

    def test_keeps_at_least_one_record(self):
        log = PartitionLog("t", 0, retention_bytes=10)
        log.append(b"x" * 100)
        assert len(log) == 1


class TestConcurrency:
    def test_concurrent_appends_assign_unique_offsets(self, log):
        def produce():
            for _ in range(200):
                log.append(b"x")

        threads = [threading.Thread(target=produce) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.latest_offset == 800
        offsets = [r.offset for r in log.fetch(0, max_records=800)]
        assert offsets == sorted(set(offsets))
