"""Tests for the versioned store."""

import time

import pytest

from repro.params import CasConflict, KeyNotFound, VersionedStore


@pytest.fixture
def store():
    return VersionedStore()


class TestBasicOps:
    def test_set_and_get(self, store):
        store.set("k", 1)
        entry = store.get("k")
        assert entry.value == 1
        assert entry.version == 1

    def test_missing_key(self, store):
        with pytest.raises(KeyNotFound):
            store.get("nope")

    def test_versions_increment(self, store):
        store.set("k", 1)
        store.set("k", 2)
        assert store.get("k").version == 2

    def test_delete(self, store):
        store.set("k", 1)
        assert store.delete("k")
        assert not store.delete("k")
        assert not store.contains("k")

    def test_keys_with_prefix(self, store):
        store.set("model/a", 1)
        store.set("model/b", 2)
        store.set("other", 3)
        assert store.keys("model/") == ["model/a", "model/b"]
        assert len(store) == 3

    def test_counters(self, store):
        store.set("k", 1)
        store.get("k")
        assert store.total_sets == 1
        assert store.total_gets == 1


class TestCompareAndSet:
    def test_create_if_absent(self, store):
        entry = store.compare_and_set("k", 1, expected_version=0)
        assert entry.version == 1

    def test_create_conflicts_when_present(self, store):
        store.set("k", 1)
        with pytest.raises(CasConflict):
            store.compare_and_set("k", 2, expected_version=0)

    def test_successful_cas(self, store):
        store.set("k", 1)
        entry = store.compare_and_set("k", 2, expected_version=1)
        assert entry.version == 2
        assert store.get("k").value == 2

    def test_stale_cas_conflicts(self, store):
        store.set("k", 1)
        store.set("k", 2)
        with pytest.raises(CasConflict) as exc_info:
            store.compare_and_set("k", 99, expected_version=1)
        assert exc_info.value.expected == 1
        assert exc_info.value.actual == 2
        assert store.get("k").value == 2  # unchanged


class TestTtl:
    def test_expired_key_not_found(self, store):
        store.set("k", 1, ttl=0.01)
        time.sleep(0.03)
        with pytest.raises(KeyNotFound):
            store.get("k")

    def test_expired_key_resets_version(self, store):
        store.set("k", 1, ttl=0.01)
        time.sleep(0.03)
        assert store.set("k", 2).version == 1  # fresh key

    def test_purge_expired(self, store):
        store.set("a", 1, ttl=0.01)
        store.set("b", 2)
        time.sleep(0.03)
        assert store.purge_expired() == 1
        assert store.keys() == ["b"]

    def test_invalid_ttl(self, store):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            store.set("k", 1, ttl=0)
