"""Tests for the parameter server and client."""

import threading

import numpy as np
import pytest

from repro.netem import Link, LinkProfile
from repro.params import CasConflict, KeyNotFound, ParameterClient, ParameterServer


class TestParameterServer:
    def test_set_get(self, param_server):
        param_server.set("weights", [1, 2, 3])
        assert param_server.get("weights").value == [1, 2, 3]

    def test_get_value_default(self, param_server):
        assert param_server.get_value("missing", default="d") == "d"

    def test_cas_surface(self, param_server):
        param_server.set("k", 1)
        param_server.compare_and_set("k", 2, expected_version=1)
        with pytest.raises(CasConflict):
            param_server.compare_and_set("k", 3, expected_version=1)

    def test_watch_returns_newer_version(self, param_server):
        param_server.set("k", "v1")

        def writer():
            param_server.set("k", "v2")

        threading.Timer(0.02, writer).start()
        entry = param_server.watch("k", after_version=1, timeout=5.0)
        assert entry.value == "v2"
        assert entry.version == 2

    def test_watch_immediate_when_already_newer(self, param_server):
        param_server.set("k", "v")
        entry = param_server.watch("k", after_version=0, timeout=0.1)
        assert entry.value == "v"

    def test_watch_timeout(self, param_server):
        assert param_server.watch("never", timeout=0.05) is None

    def test_subscribe_callback(self, param_server):
        seen = []
        unsubscribe = param_server.subscribe("k", lambda e: seen.append(e.value))
        param_server.set("k", 1)
        param_server.set("k", 2)
        unsubscribe()
        param_server.set("k", 3)
        assert seen == [1, 2]

    def test_subscriber_error_isolated(self, param_server):
        param_server.subscribe("k", lambda e: 1 / 0)
        param_server.set("k", 1)  # must not raise

    def test_concurrent_cas_single_winner(self, param_server):
        param_server.set("counter", 0)
        wins = []

        def contender(tag):
            try:
                param_server.compare_and_set("counter", tag, expected_version=1)
                wins.append(tag)
            except CasConflict:
                pass

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert param_server.get("counter").version == 2

    def test_stats(self, param_server):
        param_server.set("k", 1)
        stats = param_server.stats()
        assert stats["keys"] == 1
        assert stats["total_sets"] == 1


class TestParameterClient:
    def test_namespace_isolation(self, param_server):
        a = ParameterClient(param_server, namespace="run-a")
        b = ParameterClient(param_server, namespace="run-b")
        a.set("model", 1)
        b.set("model", 2)
        assert a.get("model").value == 1
        assert b.get("model").value == 2
        assert a.keys() == ["model"]

    def test_no_namespace_passthrough(self, param_server):
        client = ParameterClient(param_server)
        client.set("k", "v")
        assert param_server.get("k").value == "v"

    def test_link_charges_network_time(self, param_server):
        profile = LinkProfile("slow", 10.0, 10.0, 100.0, 100.0)
        link = Link(profile, time_scale=0.0)  # report, don't sleep
        client = ParameterClient(param_server, link=link)
        weights = np.zeros((100, 100))  # 80 KB
        client.set("w", weights)
        assert client.network_seconds > 0
        assert link.bytes_moved == weights.nbytes

    def test_numpy_list_payload_size(self, param_server):
        link = Link(LinkProfile("l", 0.0, 0.0, 1.0, 1.0), time_scale=0.0)
        client = ParameterClient(param_server, link=link)
        arrays = [np.zeros(10), np.zeros(20)]
        client.set("w", arrays)
        assert link.bytes_moved == 30 * 8

    def test_watch_through_client(self, param_server):
        client = ParameterClient(param_server, namespace="ns")
        client.set("k", 1)
        entry = client.watch("k", after_version=0, timeout=1.0)
        assert entry.value == 1

    def test_delete_contains(self, param_server):
        client = ParameterClient(param_server, namespace="ns")
        client.set("k", 1)
        assert client.contains("k")
        assert client.delete("k")
        assert not client.contains("k")

    def test_get_missing_raises(self, param_server):
        client = ParameterClient(param_server)
        with pytest.raises(KeyNotFound):
            client.get("missing")


class TestGetCached:
    def test_hit_and_miss_accounting(self, param_server):
        client = ParameterClient(param_server, namespace="ns")
        client.set("w", [1, 2, 3])
        first = client.get_cached("w")
        again = client.get_cached("w")
        assert first.value == [1, 2, 3]
        assert again is first  # unchanged version: the cached entry itself
        assert (client.cache_misses, client.cache_hits) == (1, 1)

    def test_version_bump_invalidates(self, param_server):
        client = ParameterClient(param_server, namespace="ns")
        client.set("w", "v1")
        assert client.get_cached("w").value == "v1"
        client.set("w", "v2")
        entry = client.get_cached("w")
        assert entry.value == "v2"
        assert entry.version == 2
        assert client.cache_misses == 2

    def test_link_charged_only_on_miss(self, param_server):
        profile = LinkProfile("slow", 10.0, 10.0, 100.0, 100.0)
        link = Link(profile, time_scale=0.0)
        client = ParameterClient(param_server, link=link)
        client.set("w", np.zeros(1000))
        after_set = client.network_seconds
        client.get_cached("w")
        after_miss = client.network_seconds
        assert after_miss > after_set  # the miss pays one transfer
        for _ in range(5):
            client.get_cached("w")
        assert client.network_seconds == after_miss  # hits are free

    def test_missing_key_raises(self, param_server):
        client = ParameterClient(param_server)
        with pytest.raises(KeyNotFound):
            client.get_cached("missing")
        assert (client.cache_hits, client.cache_misses) == (0, 0)


class TestModelWeightSharing:
    """End-to-end: share model weights across 'sites' via the server."""

    def test_kmeans_weights_roundtrip(self, param_server, small_block):
        from repro.ml import StreamingKMeans

        trainer = ParameterClient(param_server, namespace="run")
        inference = ParameterClient(param_server, namespace="run")

        model = StreamingKMeans(n_clusters=4, seed=0).fit(small_block)
        trainer.set("kmeans", model.get_weights())

        replica = StreamingKMeans(n_clusters=4)
        replica.set_weights(inference.get_value("kmeans"))
        np.testing.assert_allclose(
            replica.decision_function(small_block),
            model.decision_function(small_block),
        )

    def test_autoencoder_weights_roundtrip(self, param_server, small_block):
        from repro.ml import AutoEncoder

        model = AutoEncoder(epochs=2, seed=0).fit(small_block)
        client = ParameterClient(param_server)
        client.set("ae", model.get_weights())
        replica = AutoEncoder()
        replica.set_weights(client.get_value("ae"))
        np.testing.assert_allclose(
            replica.decision_function(small_block),
            model.decision_function(small_block),
        )
