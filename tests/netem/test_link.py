"""Tests for link emulation."""

import pytest

from repro.netem import (
    CELLULAR_EDGE,
    LAN,
    LOOPBACK,
    REGIONAL_WAN,
    TRANSATLANTIC,
    Link,
    LinkProfile,
)
from repro.util.validation import ValidationError


class TestLinkProfile:
    def test_transatlantic_matches_paper(self):
        """Paper: 140-160 ms RTT, 60-100 Mbit/s between Jetstream and LRZ."""
        assert TRANSATLANTIC.rtt_ms_min == 140.0
        assert TRANSATLANTIC.rtt_ms_max == 160.0
        assert TRANSATLANTIC.bandwidth_mbps_min == 60.0
        assert TRANSATLANTIC.bandwidth_mbps_max == 100.0

    def test_means(self):
        assert TRANSATLANTIC.mean_rtt_ms == 150.0
        assert TRANSATLANTIC.mean_bandwidth_mbps == 80.0

    def test_invalid_ranges(self):
        with pytest.raises(ValidationError):
            LinkProfile("bad", 10.0, 5.0, 1.0, 2.0)
        with pytest.raises(ValidationError):
            LinkProfile("bad", 1.0, 2.0, 10.0, 5.0)

    def test_invalid_loss(self):
        with pytest.raises(ValidationError):
            LinkProfile("bad", 0, 0, 1, 1, loss_probability=2.0)

    def test_profile_ordering(self):
        # Profiles should be ordered by realism: loopback fastest.
        assert LOOPBACK.mean_rtt_ms < LAN.mean_rtt_ms < REGIONAL_WAN.mean_rtt_ms < TRANSATLANTIC.mean_rtt_ms


class TestLink:
    def test_samples_within_profile_ranges(self):
        link = Link(TRANSATLANTIC, seed=0)
        for _ in range(100):
            rtt = link.sample_rtt_s()
            assert 0.140 <= rtt <= 0.160
            bw = link.sample_bandwidth_bps()
            assert 60e6 <= bw <= 100e6

    def test_transfer_time_components(self):
        # Deterministic profile: 100 ms RTT, 80 Mbit/s.
        profile = LinkProfile("fixed", 100.0, 100.0, 80.0, 80.0)
        link = Link(profile, seed=0)
        t = link.transfer_time(1_000_000)  # 8 Mbit at 80 Mbit/s = 0.1 s
        assert t == pytest.approx(0.05 + 0.1, rel=1e-6)

    def test_transfer_time_scales_with_payload(self):
        link = Link(LinkProfile("f", 0.0, 0.0, 100.0, 100.0), seed=0)
        t1 = link.transfer_time(10_000)
        t2 = link.transfer_time(20_000)
        assert t2 == pytest.approx(2 * t1, rel=1e-6)

    def test_transfer_sleeps_scaled(self):
        import time

        profile = LinkProfile("s", 100.0, 100.0, 1000.0, 1000.0)
        link = Link(profile, time_scale=0.1, seed=0)
        t0 = time.monotonic()
        reported = link.transfer(1000)
        elapsed = time.monotonic() - t0
        assert reported == pytest.approx(0.05, abs=0.01)
        assert elapsed < 0.05  # slept only 10% of the modelled time

    def test_zero_time_scale_never_sleeps(self):
        import time

        link = Link(TRANSATLANTIC, time_scale=0.0, seed=0)
        t0 = time.monotonic()
        for _ in range(50):
            link.transfer(1_000_000)
        assert time.monotonic() - t0 < 0.5

    def test_loss_raises_connection_error(self):
        lossy = LinkProfile("lossy", 0.0, 0.0, 1000.0, 1000.0, loss_probability=1.0)
        link = Link(lossy, time_scale=0.0)
        with pytest.raises(ConnectionError):
            link.transfer(100)
        assert link.losses == 1

    def test_stats_accumulate(self):
        link = Link(LAN, time_scale=0.0, seed=0)
        link.transfer(1000)
        link.transfer(2000)
        stats = link.stats()
        assert stats["transfers"] == 2
        assert stats["bytes_moved"] == 3000
        assert stats["seconds_accumulated"] > 0

    def test_deterministic_given_seed(self):
        t1 = Link(TRANSATLANTIC, seed=3).transfer_time(10_000)
        t2 = Link(TRANSATLANTIC, seed=3).transfer_time(10_000)
        assert t1 == t2

    def test_cellular_profile_has_loss(self):
        assert CELLULAR_EDGE.loss_probability > 0
