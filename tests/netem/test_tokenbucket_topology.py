"""Tests for the token bucket and the continuum topology."""

import time

import pytest

from repro.netem import (
    LAN,
    REGIONAL_WAN,
    TRANSATLANTIC,
    ContinuumTopology,
    RouteError,
    TokenBucket,
)
from repro.util.validation import ValidationError


class TestTokenBucket:
    def test_initial_burst(self):
        bucket = TokenBucket(rate_bytes_per_s=1000, capacity_bytes=500)
        assert bucket.try_acquire(500)
        assert not bucket.try_acquire(1)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_bytes_per_s=100_000, capacity_bytes=1000)
        bucket.try_acquire(1000)
        time.sleep(0.02)
        assert bucket.try_acquire(500)

    def test_capacity_caps_refill(self):
        bucket = TokenBucket(rate_bytes_per_s=1_000_000, capacity_bytes=100)
        time.sleep(0.01)
        assert bucket.available <= 100

    def test_blocking_acquire(self):
        bucket = TokenBucket(rate_bytes_per_s=100_000, capacity_bytes=1000)
        bucket.try_acquire(1000)  # drain
        t0 = time.monotonic()
        assert bucket.acquire(500, timeout=5.0)
        assert time.monotonic() - t0 >= 0.003

    def test_acquire_timeout(self):
        bucket = TokenBucket(rate_bytes_per_s=1, capacity_bytes=1)
        bucket.try_acquire(1)
        assert not bucket.acquire(1000, timeout=0.05)

    def test_delay_for_virtual_time(self):
        bucket = TokenBucket(rate_bytes_per_s=1000, capacity_bytes=1000)
        assert bucket.delay_for(1000) == 0.0
        # Bucket now empty: next transfer queues behind the refill.
        delay = bucket.delay_for(500)
        assert delay == pytest.approx(0.5, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate_bytes_per_s=0)


class TestContinuumTopology:
    @pytest.fixture
    def topo(self):
        t = ContinuumTopology(time_scale=0.0, seed=0)
        t.add_site("edge-us", tier="edge", region="us")
        t.add_site("jetstream", tier="cloud", region="us")
        t.add_site("lrz", tier="cloud", region="eu")
        t.connect("edge-us", "jetstream", LAN)
        t.connect("jetstream", "lrz", TRANSATLANTIC)
        return t

    def test_sites_listed(self, topo):
        assert [s.name for s in topo.sites] == ["edge-us", "jetstream", "lrz"]

    def test_sites_by_tier(self, topo):
        assert [s.name for s in topo.sites_by_tier("edge")] == ["edge-us"]
        assert len(topo.sites_by_tier("cloud")) == 2

    def test_duplicate_site_rejected(self, topo):
        with pytest.raises(ValidationError):
            topo.add_site("lrz")

    def test_invalid_tier(self, topo):
        with pytest.raises(ValidationError):
            topo.add_site("x", tier="orbit")

    def test_self_connection_rejected(self, topo):
        with pytest.raises(ValidationError):
            topo.connect("lrz", "lrz", LAN)

    def test_duplicate_link_rejected(self, topo):
        with pytest.raises(ValidationError):
            topo.connect("jetstream", "edge-us", LAN)

    def test_direct_link_symmetric(self, topo):
        assert topo.direct_link("edge-us", "jetstream") is topo.direct_link(
            "jetstream", "edge-us"
        )

    def test_route_direct(self, topo):
        assert topo.route("jetstream", "lrz") == ["jetstream", "lrz"]

    def test_route_multi_hop(self, topo):
        assert topo.route("edge-us", "lrz") == ["edge-us", "jetstream", "lrz"]

    def test_route_to_self(self, topo):
        assert topo.route("lrz", "lrz") == ["lrz"]

    def test_no_route(self, topo):
        topo.add_site("island")
        with pytest.raises(RouteError):
            topo.route("island", "lrz")

    def test_path_rtt_sums_hops(self, topo):
        rtt = topo.path_rtt_ms("edge-us", "lrz")
        assert rtt == pytest.approx(LAN.mean_rtt_ms + TRANSATLANTIC.mean_rtt_ms)

    def test_same_site_link_is_loopback(self, topo):
        link = topo.link("lrz", "lrz")
        assert link.profile.name == "loopback"

    def test_multi_hop_link_is_bottleneck(self, topo):
        link = topo.link("edge-us", "lrz")
        assert link.profile.name == "transatlantic"  # lowest bandwidth hop

    def test_transfer_time_estimate_zero_same_site(self, topo):
        assert topo.transfer_time_estimate("lrz", "lrz", 1_000_000) == 0.0

    def test_transfer_time_estimate_scales(self, topo):
        small = topo.transfer_time_estimate("jetstream", "lrz", 10_000)
        large = topo.transfer_time_estimate("jetstream", "lrz", 10_000_000)
        assert large > small

    def test_transfer_estimate_transatlantic_magnitude(self, topo):
        # 2.56 MB at 80 Mbit/s mean + 75 ms one-way = ~0.33 s.
        est = topo.transfer_time_estimate("jetstream", "lrz", 2_560_000)
        assert est == pytest.approx(0.075 + 2_560_000 * 8 / 80e6, rel=0.01)

    def test_dijkstra_prefers_lower_rtt(self):
        t = ContinuumTopology()
        for name in ("a", "b", "c"):
            t.add_site(name)
        t.connect("a", "c", TRANSATLANTIC)     # direct but slow (150 ms)
        t.connect("a", "b", LAN)               # two fast hops (~0.4 + 22.5)
        t.connect("b", "c", REGIONAL_WAN)
        assert t.route("a", "c") == ["a", "b", "c"]

    def test_unknown_site_operations(self, topo):
        with pytest.raises(ValidationError):
            topo.site("ghost")
        with pytest.raises(ValidationError):
            topo.connect("ghost", "lrz", LAN)

    def test_stats_shape(self, topo):
        topo.link("jetstream", "lrz").transfer_time(1000)
        stats = topo.stats()
        assert "jetstream<->lrz" in stats["links"]
