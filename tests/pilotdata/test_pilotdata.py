"""Tests for the Pilot-Data abstraction."""

import numpy as np
import pytest

from repro.netem import LAN, TRANSATLANTIC, ContinuumTopology
from repro.pilotdata import (
    DataUnit,
    DataUnitState,
    PilotDataService,
    StorageError,
    StorageSite,
)
from repro.util.validation import ValidationError


def blocks(n=2, rows=10, cols=4, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(rows, cols)) for _ in range(n)]


class TestDataUnit:
    def test_size_accounting(self):
        unit = DataUnit("u", blocks=tuple(blocks(3, rows=10, cols=4)))
        assert unit.n_blocks == 3
        assert unit.n_rows == 30
        assert unit.size_bytes == 3 * 10 * 4 * 8

    def test_blocks_are_immutable(self):
        unit = DataUnit("u", blocks=tuple(blocks(1)))
        with pytest.raises(ValueError):
            unit.blocks[0][0, 0] = 1.0

    def test_concatenated(self):
        unit = DataUnit("u", blocks=tuple(blocks(2, rows=5, cols=3)))
        assert unit.concatenated().shape == (10, 3)

    def test_concatenated_mixed_widths_rejected(self):
        unit = DataUnit("u", blocks=(np.zeros((2, 3)), np.zeros((2, 4))))
        with pytest.raises(ValidationError, match="mixed widths"):
            unit.concatenated()

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            DataUnit("")

    def test_non_2d_block_rejected(self):
        with pytest.raises(ValidationError):
            DataUnit("u", blocks=(np.zeros(5),))


class TestStorageSite:
    def test_capacity_enforced(self):
        site = StorageSite("s", capacity_bytes=1000)
        small = DataUnit("small", blocks=(np.zeros((10, 10)),))  # 800 B
        site._admit(small)
        big = DataUnit("big", blocks=(np.zeros((10, 10)),))
        with pytest.raises(StorageError, match="free"):
            site._admit(big)

    def test_evict_frees_space(self):
        site = StorageSite("s", capacity_bytes=1000)
        unit = DataUnit("u", blocks=(np.zeros((10, 10)),))
        site._admit(unit)
        site._evict(unit)
        assert site.free_bytes == 1000


class TestPilotDataService:
    @pytest.fixture
    def topo(self):
        t = ContinuumTopology(time_scale=0.0, seed=0)
        t.add_site("edge", tier="edge")
        t.add_site("us", tier="cloud")
        t.add_site("eu", tier="cloud")
        t.connect("edge", "us", LAN)
        t.connect("us", "eu", TRANSATLANTIC)
        return t

    @pytest.fixture
    def service(self, topo):
        s = PilotDataService(topology=topo)
        s.register_site("edge", capacity_bytes=1e6)     # small edge box
        s.register_site("us", capacity_bytes=1e9)
        s.register_site("eu", capacity_bytes=1e9)
        return s

    def test_put_and_get(self, service):
        unit = service.put("sensor-archive", blocks(), site="edge")
        assert unit.state is DataUnitState.AVAILABLE
        assert service.get("sensor-archive") is unit
        assert unit.replicas == {"edge"}

    def test_duplicate_name_rejected(self, service):
        service.put("u", blocks(), site="us")
        with pytest.raises(ValidationError):
            service.put("u", blocks(), site="eu")

    def test_site_must_be_in_topology(self, service):
        with pytest.raises(ValidationError):
            service.register_site("mars", capacity_bytes=1e6)

    def test_replicate_adds_replica_and_pays_link(self, service, topo):
        service.put("u", blocks(4, rows=100, cols=32), site="us")
        seconds = service.replicate("u", "eu")
        unit = service.get("u")
        assert unit.replicas == {"us", "eu"}
        assert seconds > 0  # transatlantic cost was modelled
        link = topo.direct_link("us", "eu")
        assert link.bytes_moved == unit.size_bytes

    def test_replicate_idempotent(self, service):
        service.put("u", blocks(), site="us")
        service.replicate("u", "eu")
        assert service.replicate("u", "eu") == 0.0

    def test_replication_respects_capacity(self, service):
        big = blocks(20, rows=1000, cols=32)  # ~5 MB > edge capacity 1 MB
        service.put("big", big, site="us")
        with pytest.raises(StorageError):
            service.replicate("big", "edge")

    def test_failed_replication_rolls_back(self, topo):
        from repro.netem import LinkProfile

        lossy = LinkProfile("lossy", 0, 0, 1000, 1000, loss_probability=1.0)
        t = ContinuumTopology(time_scale=0.0, seed=0)
        t.add_site("a")
        t.add_site("b")
        t.connect("a", "b", lossy)
        s = PilotDataService(topology=t)
        s.register_site("a", 1e9)
        s.register_site("b", 1e9)
        s.put("u", blocks(), site="a")
        with pytest.raises(ConnectionError):
            s.replicate("u", "b")
        unit = s.get("u")
        assert unit.replicas == {"a"}
        assert unit.state is DataUnitState.AVAILABLE
        assert s.site("b").used_bytes == 0

    def test_drop_replica(self, service):
        service.put("u", blocks(), site="us")
        service.replicate("u", "eu")
        service.drop_replica("u", "us")
        assert service.get("u").replicas == {"eu"}

    def test_last_replica_protected(self, service):
        service.put("u", blocks(), site="us")
        with pytest.raises(StorageError, match="last replica"):
            service.drop_replica("u", "us")

    def test_delete_frees_all_sites(self, service):
        service.put("u", blocks(), site="us")
        service.replicate("u", "eu")
        service.delete("u")
        assert service.site("us").used_bytes == 0
        assert service.site("eu").used_bytes == 0
        with pytest.raises(ValidationError):
            service.get("u")

    def test_affinity_local_replica_is_free(self, service):
        service.put("u", blocks(), site="eu")
        site, cost = service.closest_replica("u", "eu")
        assert (site, cost) == ("eu", 0.0)

    def test_affinity_prefers_cheap_link(self, service):
        service.put("u", blocks(4, rows=100, cols=32), site="us")
        service.replicate("u", "eu")
        # From the edge, the US replica is one LAN hop; EU is transatlantic.
        site, cost = service.closest_replica("u", "edge")
        assert site == "us"
        assert cost > 0

    def test_list_units_by_site(self, service):
        service.put("a", blocks(seed=1), site="us")
        service.put("b", blocks(seed=2), site="eu")
        assert [u.name for u in service.list_units("us")] == ["a"]
        assert [u.name for u in service.list_units()] == ["a", "b"]

    def test_stats(self, service):
        service.put("u", blocks(), site="us")
        service.replicate("u", "eu")
        stats = service.stats()
        assert stats["units"] == 1
        assert stats["bytes_transferred"] > 0

    def test_without_topology_transfers_free(self):
        s = PilotDataService()
        s.register_site("x", 1e9)
        s.register_site("y", 1e9)
        s.put("u", blocks(), site="x")
        assert s.replicate("u", "y") == 0.0
        assert s.closest_replica("u", "z")[1] == 0.0
