"""Headline quantitative claims from the paper's conclusion.

1. "k-means can achieve five times the throughput of isolation forests
   for large message sizes (10,000 points)" — we assert k-means wins by
   a large factor and report the measured multiple (our from-scratch
   NumPy isolation forest is slower than the Cython/sklearn forest the
   paper used via PyOD, so the measured factor is larger than 5x; the
   ordering and the who-wins structure hold).
2. "auto-encoders proved unsuitable for the investigated resource
   configurations due to their high computational demands" — the
   auto-encoder must be the slowest model by throughput and latency.
"""

import pytest

from harness import print_table, run_live

POINTS = 10_000


def _run_models():
    results = {}
    for model in ("kmeans", "iforest", "autoencoder"):
        messages = 6 if model != "kmeans" else 12
        result = run_live(points=POINTS, devices=2, model=model, messages=messages)
        assert result.completed, result.errors
        results[model] = result
    rows = [
        (m, results[m].report.row()["MB/s"], results[m].report.row()["lat_mean_ms"])
        for m in results
    ]
    print_table(
        "Headline claims — 10,000-point messages",
        ["model", "MB/s", "lat_mean_ms"],
        rows,
    )
    factor = results["kmeans"].report.throughput_mb_s / results["iforest"].report.throughput_mb_s
    print(f"\nmeasured k-means / isolation-forest throughput factor: {factor:.1f}x "
          f"(paper: ~5x with sklearn-backed PyOD)")
    return results


def test_kmeans_beats_iforest_by_large_factor(benchmark):
    results = benchmark.pedantic(_run_models, rounds=1, iterations=1)
    factor = (
        results["kmeans"].report.throughput_mb_s
        / results["iforest"].report.throughput_mb_s
    )
    # Paper: ~5x. Our Python forest is slower than sklearn's Cython one,
    # so the factor can only be larger; assert the claim's direction and
    # minimum magnitude.
    assert factor >= 3.0


def test_autoencoder_is_unsuitable_for_streaming(benchmark):
    results = benchmark.pedantic(
        lambda: {
            m: run_live(points=POINTS, devices=2, model=m, messages=6)
            for m in ("kmeans", "iforest", "autoencoder")
        },
        rounds=1,
        iterations=1,
    )
    ae = results["autoencoder"].report
    assert ae.throughput_mb_s < results["kmeans"].report.throughput_mb_s
    assert ae.throughput_mb_s < results["iforest"].report.throughput_mb_s
    assert ae.latency_mean_s > results["kmeans"].report.latency_mean_s
