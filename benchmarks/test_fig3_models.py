"""Figure 3 (model columns) — throughput & latency by model type and size.

Paper setup: cloud-centric deployment; data generator at the edge;
pre-processing + training + inference in the cloud on the LRZ large VM
(10 cores / 44 GB); models k-means (25 clusters), isolation forest
(100 trees), auto-encoder ([64,32,32,64], 11,552 params); model updated
on every incoming block via partial fit.

Expected shape (asserted): k-means > isolation forest > auto-encoder in
throughput at the large message size; latency ordering is the reverse.
"""

import pytest

from harness import MESSAGE_SIZES, print_table, run_live

SIZES = (25, 1000, 10_000)
MODELS = ("baseline", "kmeans", "iforest", "autoencoder")


def _sweep():
    results = {}
    rows = []
    for model in MODELS:
        for points in SIZES:
            # Heavy models get fewer messages; throughput is steady-state.
            messages = 6 if model in ("iforest", "autoencoder") else None
            result = run_live(points=points, devices=2, model=model, messages=messages)
            assert result.completed, result.errors
            results[(model, points)] = result
            r = result.report.row()
            rows.append((model, points, r["MB/s"], r["msgs/s"], r["lat_mean_ms"], r["lat_p50_ms"]))
    print_table(
        "Fig. 3 — throughput/latency by model type and message size (cloud-centric)",
        ["model", "points", "MB/s", "msgs/s", "lat_mean_ms", "lat_p50_ms"],
        rows,
        artifact="fig3_models",
    )
    return results


def test_fig3_model_complexity_ordering(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    def mbps(model, points=10_000):
        return results[(model, points)].report.throughput_mb_s

    def lat(model, points=10_000):
        return results[(model, points)].report.latency_mean_s

    # Fig. 3's central finding: model complexity orders the metrics.
    assert mbps("baseline") >= mbps("kmeans")
    assert mbps("kmeans") > mbps("iforest")
    assert mbps("iforest") > mbps("autoencoder")
    assert lat("autoencoder") > lat("iforest") > lat("kmeans")

    # The heavy models are processing-bound (not transfer-bound).
    assert results[("iforest", 10_000)].bottleneck["bottleneck"] == "processing"
    assert results[("autoencoder", 10_000)].bottleneck["bottleneck"] == "processing"
