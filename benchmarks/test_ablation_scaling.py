"""Ablation — consumer scaling per model (the adaptivity story).

Section II-D: when a bottleneck arises, "the allocated resources can be
adapted, i.e., expanded and scaled-down, dynamically at runtime". This
ablation quantifies what scaling the consumer tier buys each model:
compute-bound models (isolation forest, auto-encoder) scale nearly
linearly until another stage binds; the baseline is transfer-bound and
gains little.
"""

import pytest

from harness import print_table, processor_for
from repro.netem import LAN
from repro.sim import SimConfig, SimulatedPipeline, StageCostModel, calibrate_model_cost

#: Fixed production cost so the producer-side bound is deterministic:
#: 4 devices x 1/10ms = 400 msgs/s ceiling.
PRODUCE_COST = StageCostModel("produce", 0.01, jitter=0.0)

POINTS = 10_000
DEVICES = 4
MESSAGES = 48
CONSUMERS = (1, 2, 4, 8)
MODELS = ("baseline", "kmeans", "iforest")


def _sweep():
    costs = {m: calibrate_model_cost(processor_for(m), points=POINTS, reps=3) for m in MODELS}
    results = {}
    rows = []
    for model in MODELS:
        for consumers in CONSUMERS:
            cfg = SimConfig(
                num_devices=DEVICES,
                messages_per_device=MESSAGES,
                points=POINTS,
                uplink=LAN,
                num_consumers=consumers,
                process_cost=costs[model],
                produce_cost=PRODUCE_COST,
                seed=13,
            )
            result = SimulatedPipeline(cfg).run()
            results[(model, consumers)] = result
            rows.append(
                (model, consumers, result.report.row()["msgs/s"],
                 result.bottleneck["bottleneck"])
            )
    print_table(
        "Ablation — throughput vs consumer count (10,000-point blocks, LAN)",
        ["model", "consumers", "msgs/s", "bottleneck"],
        rows,
        artifact="ablation_scaling",
    )
    return results


def test_scaling_helps_compute_bound_models(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    def rate(model, consumers):
        return results[(model, consumers)].report.throughput_msgs_s

    # Compute-bound models scale near-linearly with consumers.
    assert rate("iforest", 4) > rate("iforest", 1) * 2.5
    assert rate("iforest", 8) > rate("iforest", 4) * 1.5
    # Scaling past the bottleneck flattens: the baseline saturates at
    # the deterministic 400 msgs/s producer ceiling.
    assert rate("baseline", 8) == pytest.approx(400.0, rel=0.15)
    assert rate("baseline", 8) < rate("baseline", 4) * 1.5
