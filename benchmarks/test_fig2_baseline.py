"""Figure 2 — baseline throughput and latency by message size and partitions.

Paper setup: edge data source, broker and processing co-located on the
LRZ cloud; one partition per simulated edge device (a 1-core/4-GB Dask
task); message sizes 25..10,000 points x 32 features; pass-through
processing. The figure plots throughput (top) and latency (bottom)
against message size for 1, 2 and 4 partitions.

Expected shape (asserted): throughput grows with message size and with
partition count; latency grows with message size.
"""

import pytest

from harness import LIVE_MESSAGES, MESSAGE_SIZES, print_table, run_live


def _sweep():
    rows = []
    results = {}
    for partitions in (1, 2, 4):
        for points in MESSAGE_SIZES:
            result = run_live(points=points, devices=partitions, model="baseline")
            assert result.completed, result.errors
            r = result.report
            results[(partitions, points)] = result
            rows.append(
                (
                    partitions,
                    points,
                    round(points * 32 * 8 / 1e3, 1),
                    r.messages,
                    r.row()["MB/s"],
                    r.row()["msgs/s"],
                    r.row()["lat_mean_ms"],
                    r.row()["lat_p50_ms"],
                )
            )
    print_table(
        f"Fig. 2 — baseline, {LIVE_MESSAGES} msgs/device (paper: 512 total)",
        ["partitions", "points", "KB", "msgs", "MB/s", "msgs/s", "lat_mean_ms", "lat_p50_ms"],
        rows,
        artifact="fig2_baseline",
    )
    return results


def test_fig2_baseline_shape(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    def mbps(partitions, points):
        return results[(partitions, points)].report.throughput_mb_s

    # Throughput grows with message size (per partition count).
    for partitions in (1, 2, 4):
        assert mbps(partitions, 10_000) > mbps(partitions, 25) * 3

    # Total throughput increases with the number of edge devices /
    # partitions (the paper's headline Fig. 2 observation).
    assert mbps(4, 10_000) > mbps(1, 10_000)

    # Latency grows with message size.
    lat = lambda p, n: results[(p, n)].report.latency_mean_s
    assert lat(1, 10_000) > lat(1, 25)

    # Broker-side observation: at 4 partitions the broker has ingested
    # everything while consumers still lag — broker is not the bottleneck.
    big = results[(4, 10_000)]
    assert big.broker_stats["topics"]["pilot-edge-data"]["records_in"] == big.report.messages
