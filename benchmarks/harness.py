"""Shared helpers for the benchmark suite.

Every figure/table in the paper's evaluation has one bench module; they
all build pipelines through these helpers so configurations stay
comparable. Scale knobs:

- ``REPRO_BENCH_MESSAGES`` — messages per device for live runs
  (default scaled down from the paper's 512 so the suite finishes in
  minutes; set to 512 to reproduce the paper's run length),
- ``REPRO_BENCH_SIM_MESSAGES`` — messages per device for simulated runs
  (cheap; defaults to the paper's shape).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import (
    ContinuumTopology,
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    make_model_processor,
    passthrough_processor,
)
from repro.ml import AutoEncoder, IsolationForest, StreamingKMeans
from repro.netem import LinkProfile

#: VM-to-VM network inside one cloud, standing in for the paper's LRZ
#: deployment where generator, broker and processing run on separate
#: VMs: sub-millisecond RTT, ~1 Gbit/s effective per flow (cloud virtual
#: NICs + broker framing overhead). This is what makes small messages
#: per-message-overhead-bound and large messages bandwidth-bound — the
#: paper's Fig. 2 shape.
CLOUD_LAN = LinkProfile("cloud-lan", 0.2, 0.6, 900.0, 1100.0)

#: Live-run messages per device (paper: 512 total messages per run).
LIVE_MESSAGES = int(os.environ.get("REPRO_BENCH_MESSAGES", "8"))
#: Simulated-run messages per device (virtual time is cheap).
SIM_MESSAGES = int(os.environ.get("REPRO_BENCH_SIM_MESSAGES", "128"))

#: The paper's message-size sweep: 25 to 10,000 points x 32 features,
#: i.e. 7 KB to 2.6 MB serialized.
MESSAGE_SIZES = (25, 100, 1000, 5000, 10_000)
FEATURES = 32

#: Model factories exactly as evaluated in section III-2.
MODEL_FACTORIES = {
    "baseline": None,  # pass-through
    "kmeans": lambda: StreamingKMeans(n_clusters=25),
    "iforest": lambda: IsolationForest(n_estimators=100, refresh_fraction=0.25),
    "autoencoder": lambda: AutoEncoder(hidden_neurons=(64, 32, 32, 64), epochs=10),
}


def processor_for(model_name: str):
    factory = MODEL_FACTORIES[model_name]
    if factory is None:
        return passthrough_processor
    return make_model_processor(factory)


def acquire_pilots(devices: int, service: PilotComputeService):
    """Edge devices + LRZ-large processing VM, as in the paper."""
    edge = service.submit_pilot(
        PilotDescription(
            resource="ssh",
            site="edge",
            nodes=devices,
            node_spec=ResourceSpec(cores=1, memory_gb=4),
        )
    )
    cloud = service.submit_pilot(
        PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
    )
    if not service.wait_all(timeout=60):
        raise RuntimeError("pilot acquisition failed")
    return edge, cloud


def make_cloud_topology(profile: LinkProfile = CLOUD_LAN, time_scale: float = 1.0):
    """Edge site and cloud site joined by a datacenter-class link."""
    topo = ContinuumTopology(time_scale=time_scale, seed=0)
    topo.add_site("edge", tier="edge")
    topo.add_site("lrz", tier="cloud")
    topo.connect("edge", "lrz", profile)
    return topo


def run_live(
    points: int,
    devices: int = 1,
    messages: int | None = None,
    model: str = "baseline",
    topology=None,
    placement=None,
    edge_fn=None,
    use_cloud_lan: bool = True,
):
    """One live pipeline run; returns its PipelineResult.

    By default the run crosses an emulated datacenter network
    (``CLOUD_LAN``) between the edge and cloud sites, matching the
    paper's multi-VM deployment; pass ``use_cloud_lan=False`` for a pure
    in-process run.
    """
    if topology is None and use_cloud_lan:
        topology = make_cloud_topology()
    service = PilotComputeService(time_scale=0.0, plugins={})
    # A fresh SSH pool per run so device counts never collide.
    from repro.pilot.plugins.ssh_edge import SshEdgePlugin

    service.register_plugin("ssh", SshEdgePlugin(devices=max(devices, 4)))
    try:
        edge, cloud = acquire_pilots(devices, service)
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(
                points=points, features=FEATURES, clusters=25
            ),
            process_cloud_function_handler=processor_for(model),
            process_edge_function_handler=edge_fn,
            config=PipelineConfig(
                num_devices=devices,
                messages_per_device=messages if messages is not None else LIVE_MESSAGES,
                max_duration=600.0,
            ),
            topology=topology,
            placement=placement,
        )
        return pipeline.run()
    finally:
        service.close()


#: Where per-bench CSV artefacts land (git-ignorable, regenerated).
ARTIFACTS_DIR = Path(__file__).parent / "artifacts"


def print_table(title: str, header: list, rows: list, artifact: str | None = None) -> None:
    """Render one figure's data as the rows the paper plots.

    With *artifact* set, the same rows are written to
    ``benchmarks/artifacts/<artifact>.csv`` for offline plotting.
    """
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if artifact:
        import csv

        ARTIFACTS_DIR.mkdir(exist_ok=True)
        path = ARTIFACTS_DIR / f"{artifact}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            writer.writerows(rows)
        print(f"[artifact: {path}]")
