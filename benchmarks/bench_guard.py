"""Fast perf-regression guard for the broker batching fast path.

A reduced-size version of ``test_broker_micro.py`` that finishes in a
couple of seconds, so it can run on every change (CI smoke job or
``python benchmarks/bench_guard.py`` locally) without the full
pytest-benchmark machinery. It measures single-record vs batched
produce plus the consumer drain rate, writes the numbers to
``benchmarks/artifacts/BENCH_broker.json``, and fails (exit 1 / test
failure) if the batched path drops below ``MIN_SPEEDUP``x the
per-record path — the guard that keeps ``append_many`` an actual fast
path rather than a synonym.

The pytest entry point is marked ``bench`` and benchmarks/ is outside
``testpaths``, so tier-1 runs never pay for it; select it explicitly
with ``pytest -m bench benchmarks/bench_guard.py``.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.broker import Broker, Consumer, Producer
from repro.data import encode_block

ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_broker.json"

#: Reduced size: enough work to dominate timer noise, small enough for
#: a per-change smoke run.
MESSAGES = 128
POINTS = 1000
BATCH = 32
ROUNDS = 3
#: The full micro-bench holds the batched path to 3x at 256 KB; the
#: guard runs smaller and colder, so it alerts a little below that.
MIN_SPEEDUP = 2.0


def _payload() -> bytes:
    return encode_block(np.random.default_rng(0).normal(size=(POINTS, 32)))


def _single_rate(payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("guard", 1)
    producer = Producer(broker)
    t0 = time.perf_counter()
    for _ in range(MESSAGES):
        producer.send("guard", payload, partition=0)
    return MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6


def _batched_rate(payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("guard", 1)
    producer = Producer(broker)
    chunks = [
        [payload] * min(BATCH, MESSAGES - start)
        for start in range(0, MESSAGES, BATCH)
    ]
    t0 = time.perf_counter()
    for chunk in chunks:
        producer.send_many("guard", chunk, partition=0)
    return MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6


def _fetch_rate(payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("guard", 1)
    Producer(broker).send_many("guard", [payload] * MESSAGES, partition=0)
    consumer = Consumer(broker)
    consumer.assign([("guard", 0)])
    t0 = time.perf_counter()
    got = 0
    while got < MESSAGES:
        got += len(consumer.poll(max_records=BATCH))
    return MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6


def run_guard() -> dict:
    """Measure, persist the artifact, and return the results."""
    payload = _payload()
    best = lambda fn: max(fn(payload) for _ in range(ROUNDS))
    single = best(_single_rate)
    batched = best(_batched_rate)
    fetch = best(_fetch_rate)
    results = {
        "messages": MESSAGES,
        "message_bytes": len(payload),
        "batch_records": BATCH,
        "produce_single_mb_s": round(single, 1),
        "produce_batched_mb_s": round(batched, 1),
        "fetch_mb_s": round(fetch, 1),
        "batched_speedup": round(batched / single, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


@pytest.mark.bench
def test_batched_fast_path_guard():
    results = run_guard()
    assert results["batched_speedup"] >= MIN_SPEEDUP, (
        f"batched produce regressed to {results['batched_speedup']}x the "
        f"single-record path ({results['produce_batched_mb_s']} vs "
        f"{results['produce_single_mb_s']} MB/s); see {ARTIFACT}"
    )


def main() -> int:
    results = run_guard()
    for key, value in results.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {ARTIFACT}]")
    if results["batched_speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: batched speedup {results['batched_speedup']}x "
            f"< required {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: batched speedup {results['batched_speedup']}x >= {MIN_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
