"""Fast perf-regression guard for the broker batching fast path.

A reduced-size version of ``test_broker_micro.py`` that finishes in a
couple of seconds, so it can run on every change (CI smoke job or
``python benchmarks/bench_guard.py`` locally) without the full
pytest-benchmark machinery. It measures single-record vs batched
produce plus the consumer drain rate, writes the numbers to
``benchmarks/artifacts/BENCH_broker.json``, and fails (exit 1 / test
failure) if the batched path drops below ``MIN_SPEEDUP``x the
per-record path — the guard that keeps ``append_many`` an actual fast
path rather than a synonym.

A second guard covers the end-to-end consume fast path through
:class:`EdgeToCloudPipeline`: it pre-fills the broker with framed
2048x32 blocks (the paper's block shape) and drains them through the
pipeline's consumer tasks in per-message (``poll_batch=1``,
``consume_batch=1``) vs batched (``poll_batch=32``, ``consume_batch=32``)
configuration, writing ``benchmarks/artifacts/BENCH_pipeline.json``.
The gated pair runs with ``check_crcs=False`` so both paths measure the
pipeline's per-message overhead (poll, stamps, completion accounting,
dispatch) rather than the payload-proportional CRC scan, which is
identical per frame in both modes — the same reasoning that keeps serde
cost out of the broker guard above. The default-config (CRC-verifying)
rates are reported alongside for context.

A fourth guard covers the pipelined-transport work: it drains a
pre-filled multi-partition topic through a :class:`RemoteBroker` over an
emulated fixed-RTT WAN link (``repro.netem``), synchronous consumer vs
prefetching consumer, writing ``benchmarks/artifacts/BENCH_prefetch.json``
— the prefetcher must beat the synchronous baseline by
``MIN_PREFETCH_WAN_SPEEDUP``x under RTT, while costing at most
``MAX_PREFETCH_INPROC_REGRESSION`` on the zero-RTT in-proc pipeline.

The storage guard (``BENCH_storage.json``) covers the durable
segment-backed partition logs: group-commit batching must hold durable
produce within ``MIN_DURABLE_RATIO`` of the in-memory deque, steady-
state mmap fetch of sealed segments within
``MAX_MMAP_FETCH_REGRESSION`` of the deque fetch, a SIGKILLed rf=1
shard must replay every fsync-acked record from its own segment files,
and boot recovery must scan only the active segment regardless of
total log size.

The reactor guard (``BENCH_reactor.json``) covers the event-loop server:
1k+ concurrent mixed-role clients on one reactor with zero extra threads
and flat per-connection memory, plus interleaved drain-rate pairs
against the thread-per-connection baseline (in-proc and 24 ms WAN). The
telemetry guard gates both the disabled (<= 5%) and fully-enabled
(<= 10%) overhead of the tracing/metrics hot path.

The pytest entry point is marked ``bench`` and benchmarks/ is outside
``testpaths``, so tier-1 runs never pay for it; select it explicitly
with ``pytest -m bench benchmarks/bench_guard.py``. Set
``BENCH_GUARD_FAST=1`` for the reduced-trials CI smoke mode.
"""

import gc
import json
import multiprocessing
import os
import resource
import shutil
import socket
import sys
import tempfile
import threading
import time
import tracemalloc
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.broker import Broker, Consumer, Producer
from repro.broker.reactor import ReactorBrokerServer
from repro.broker.remote import BrokerServer, RemoteBroker, ThreadedBrokerServer
from repro.broker.wire import b64, recv_frame, send_frame
from repro.compute import ResourceSpec
from repro.core import EdgeToCloudPipeline, PipelineConfig
from repro.data import encode_block
from repro.faults import FaultInjector, FaultyBroker
from repro.netem import Link, LinkProfile
from repro.pilot import PilotComputeService, PilotDescription

ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_broker.json"
PIPELINE_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_pipeline.json"
ROBUSTNESS_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_robustness.json"
REACTOR_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_reactor.json"
PREFETCH_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_prefetch.json"
TELEMETRY_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_telemetry.json"
OBSERVABILITY_ARTIFACT = (
    Path(__file__).parent / "artifacts" / "BENCH_observability.json"
)
#: Sample incident artifacts from the observability guard's 4-shard
#: scrape leg, uploaded by CI next to the BENCH_*.json files.
OBSERVABILITY_EVENTS_JSONL = Path(__file__).parent / "artifacts" / "events.jsonl"
OBSERVABILITY_EXPOSITION = (
    Path(__file__).parent / "artifacts" / "cluster_metrics.prom"
)
MULTICORE_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_multicore.json"
REPLICATION_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_replication.json"
STORAGE_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_storage.json"
#: Sampler time series from the fully-enabled telemetry round, uploaded
#: by CI next to the BENCH_*.json artifacts.
TELEMETRY_JSONL = Path(__file__).parent / "artifacts" / "telemetry.jsonl"

#: Reduced-trials mode for CI smoke runs (set BENCH_GUARD_FAST=1):
#: fewer best-of rounds and smaller sweeps. The gates stay the same;
#: this trades confidence intervals for wall-clock, not coverage.
FAST = bool(os.environ.get("BENCH_GUARD_FAST"))

#: Reduced size: enough work to dominate timer noise, small enough for
#: a per-change smoke run.
MESSAGES = 128
POINTS = 1000
BATCH = 32
ROUNDS = 1 if FAST else 3
#: The full micro-bench holds the batched path to 3x at 256 KB; the
#: guard runs smaller and colder, so it alerts a little below that.
MIN_SPEEDUP = 2.0

#: Pipeline guard shape: the paper's 2048x32 float64 block (512 KiB).
PIPE_MESSAGES = 256
PIPE_POINTS = 2048
PIPE_FEATURES = 32
PIPE_BATCH = 32
PIPE_ROUNDS = 1 if FAST else 3
#: Observed ~2-3x on the overhead-isolating pair; alert below 1.5x.
MIN_PIPELINE_SPEEDUP = 1.5


def _payload() -> bytes:
    return encode_block(np.random.default_rng(0).normal(size=(POINTS, 32)))


def _single_rate(payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("guard", 1)
    producer = Producer(broker)
    t0 = time.perf_counter()
    for _ in range(MESSAGES):
        producer.send("guard", payload, partition=0)
    return MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6


def _batched_rate(payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("guard", 1)
    producer = Producer(broker)
    chunks = [
        [payload] * min(BATCH, MESSAGES - start)
        for start in range(0, MESSAGES, BATCH)
    ]
    t0 = time.perf_counter()
    for chunk in chunks:
        producer.send_many("guard", chunk, partition=0)
    return MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6


def _fetch_rate(payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("guard", 1)
    Producer(broker).send_many("guard", [payload] * MESSAGES, partition=0)
    consumer = Consumer(broker)
    consumer.assign([("guard", 0)])
    t0 = time.perf_counter()
    got = 0
    while got < MESSAGES:
        got += len(consumer.poll(max_records=BATCH))
    return MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6


def run_guard() -> dict:
    """Measure, persist the artifact, and return the results."""
    payload = _payload()
    best = lambda fn: max(fn(payload) for _ in range(ROUNDS))
    single = best(_single_rate)
    batched = best(_batched_rate)
    fetch = best(_fetch_rate)
    results = {
        "messages": MESSAGES,
        "message_bytes": len(payload),
        "batch_records": BATCH,
        "produce_single_mb_s": round(single, 1),
        "produce_batched_mb_s": round(batched, 1),
        "fetch_mb_s": round(fetch, 1),
        "batched_speedup": round(batched / single, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


# -- end-to-end pipeline consume guard --------------------------------------


def _no_produce(context):
    return None


def _guard_process(context, data):
    return {"points": int(data.shape[0])}


def _guard_process_batch(context, blocks):
    return [{"points": int(b.shape[0])} for b in blocks]


_guard_process.process_cloud_batch = _guard_process_batch


def _pipeline_rate(
    payload: bytes,
    batched: bool,
    check_crcs: bool,
    prefetch: bool = False,
    telemetry: tuple | None = None,
) -> float:
    """Messages/s through the pipeline's consumer for a pre-filled topic.

    The producer function yields nothing; the topic is pre-filled with
    correctly-addressed frames, so the timed region is purely the
    consume side: poll -> stamps -> decode -> process -> completion.
    The rate comes from the message traces (first ``dequeue`` to last
    ``process_end``), which excludes pilot/task setup time.
    """
    service = PilotComputeService(time_scale=0.0)
    edge = service.submit_pilot(
        PilotDescription(
            resource="ssh",
            site="edge-site",
            nodes=1,
            node_spec=ResourceSpec(cores=1, memory_gb=4),
        )
    )
    cloud = service.submit_pilot(
        PilotDescription(resource="cloud", site="cloud-site", instance_type="lrz.large")
    )
    service.wait_all(timeout=30)
    try:
        batch_knobs = (
            dict(poll_batch=PIPE_BATCH, consume_batch=PIPE_BATCH)
            if batched
            else dict(poll_batch=1, consume_batch=1)
        )
        if prefetch:
            batch_knobs.update(fetch_prefetch_batches=2, fetch_max_wait_ms=50.0)
        config = PipelineConfig(
            num_devices=1,
            messages_per_device=PIPE_MESSAGES,
            max_duration=120.0,
            check_crcs=check_crcs,
            **batch_knobs,
        )
        registry, tracer, sampler = telemetry if telemetry is not None else (None,) * 3
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=_no_produce,
            process_cloud_function_handler=_guard_process,
            config=config,
            run_id="bench",
            registry=registry,
            tracer=tracer,
            sampler=sampler,
        )
        pipeline.broker.create_topic(config.topic, num_partitions=1, exist_ok=True)
        Producer(pipeline.broker, tracer=tracer, trace_site="edge-site").send_many(
            config.topic,
            [payload] * PIPE_MESSAGES,
            partition=0,
            headers=[
                {"message_id": f"bench/d0/m{i}", "device": "device-0"}
                for i in range(PIPE_MESSAGES)
            ],
        )
        result = pipeline.run()
        assert result.completed and len(result.results) == PIPE_MESSAGES, (
            result.completed,
            result.errors[:2],
        )
        traces = pipeline.collector.traces()
        start = min(t.at("dequeue") for t in traces if t.has("dequeue"))
        end = max(t.at("process_end") for t in traces if t.has("process_end"))
        return PIPE_MESSAGES / (end - start)
    finally:
        service.close()


def run_pipeline_guard() -> dict:
    """Measure the consume fast path, persist the artifact, return results."""
    payload = encode_block(
        np.random.default_rng(0).normal(size=(PIPE_POINTS, PIPE_FEATURES))
    )
    mb = len(payload) / 1e6

    def best(batched: bool, check_crcs: bool, rounds: int) -> float:
        return max(_pipeline_rate(payload, batched, check_crcs) for _ in range(rounds))

    single = best(batched=False, check_crcs=False, rounds=PIPE_ROUNDS)
    batched = best(batched=True, check_crcs=False, rounds=PIPE_ROUNDS)
    # Default-config (CRC-verifying) context numbers: one round each —
    # both paths pay the identical per-frame CRC scan, so the pair is
    # checksum-bound and not gated.
    single_crc = best(batched=False, check_crcs=True, rounds=1)
    batched_crc = best(batched=True, check_crcs=True, rounds=1)
    results = {
        "messages": PIPE_MESSAGES,
        "message_bytes": len(payload),
        "block_shape": [PIPE_POINTS, PIPE_FEATURES],
        "batch_records": PIPE_BATCH,
        "check_crcs": False,
        "per_message_msgs_s": round(single, 1),
        "per_message_mb_s": round(single * mb, 1),
        "batched_msgs_s": round(batched, 1),
        "batched_mb_s": round(batched * mb, 1),
        "per_message_msgs_s_crc": round(single_crc, 1),
        "batched_msgs_s_crc": round(batched_crc, 1),
        "batched_speedup": round(batched / single, 2),
        "min_speedup": MIN_PIPELINE_SPEEDUP,
    }
    PIPELINE_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    PIPELINE_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


# -- prefetch guard: WAN pipelined consume + in-proc no-regression -----------

#: The WAN leg drains a pre-filled topic over an emulated fixed-RTT link
#: (paid client-side per request, so pipelined requests overlap delays).
#: The synchronous baseline pays ~one RTT per poll round; the prefetcher
#: pays RTTs concurrently across partitions and ahead of the consumer.
WAN_PARTITIONS = 4
WAN_MSGS = 24 if FAST else 48  # per partition
WAN_RTT_MS = 24.0  # >= the issue's 20 ms WAN floor
WAN_ROUNDS = 1 if FAST else 2
PREFETCH_POLL_BATCH = 16
#: RTT-bound drain should improve far more than 2x; alert below it.
MIN_PREFETCH_WAN_SPEEDUP = 2.0
#: In-proc (zero-RTT) the prefetcher only adds a thread handoff; it must
#: stay within 10% of the direct batched consume path.
MAX_PREFETCH_INPROC_REGRESSION = 0.10
#: The in-proc pair interleaves base/prefetch rounds and keeps the best
#: of each, so whole-run load drift hits both paths alike. Not reduced
#: in FAST mode: a single round of each is dominated by scheduler noise
#: (especially on small CI runners) and the 10% gate would be vacuous.
PREFETCH_INPROC_ROUNDS = 3


def _wan_consume_rate(server, prefetch: bool) -> float:
    """Records/s draining the pre-filled topic over an emulated WAN link."""
    link = Link(
        LinkProfile("wan-guard", WAN_RTT_MS, WAN_RTT_MS, 1_000.0, 1_000.0),
        time_scale=1.0,
    )
    knobs = (
        dict(fetch_prefetch_batches=4, fetch_max_wait_ms=100.0) if prefetch else {}
    )
    total = WAN_PARTITIONS * WAN_MSGS
    with RemoteBroker(server.host, server.port, link=link) as rb:
        consumer = Consumer(rb, **knobs)
        consumer.assign([("guard", p) for p in range(WAN_PARTITIONS)])
        try:
            t0 = time.perf_counter()
            got = 0
            while got < total:
                got += len(
                    consumer.poll(max_records=PREFETCH_POLL_BATCH, timeout=0.5)
                )
            return total / (time.perf_counter() - t0)
        finally:
            consumer.close()


def run_prefetch_guard() -> dict:
    """Measure the prefetch path, persist the artifact, return results."""
    with BrokerServer() as server:
        with RemoteBroker(server.host, server.port) as admin:
            admin.create_topic("guard", WAN_PARTITIONS)
            for p in range(WAN_PARTITIONS):
                admin.append_many("guard", p, [b"x" * 1024] * WAN_MSGS)
        sync = max(
            _wan_consume_rate(server, prefetch=False) for _ in range(WAN_ROUNDS)
        )
        prefetched = max(
            _wan_consume_rate(server, prefetch=True) for _ in range(WAN_ROUNDS)
        )

    payload = encode_block(
        np.random.default_rng(0).normal(size=(PIPE_POINTS, PIPE_FEATURES))
    )
    pairs = []
    for _ in range(PREFETCH_INPROC_ROUNDS):
        base = _pipeline_rate(payload, batched=True, check_crcs=False)
        pref = _pipeline_rate(payload, batched=True, check_crcs=False, prefetch=True)
        pairs.append((base, pref))
    inproc_base = max(b for b, _ in pairs)
    inproc_prefetch = max(p for _, p in pairs)
    # Gate on the cleanest adjacent pair (the robustness guard's trick):
    # each pair runs back-to-back under the same machine load, so one
    # clean pair is evidence of no regression even when other rounds
    # were preempted — single-shot pipeline rates swing well past 10%
    # on small runners.
    inproc_regression = min(max(0.0, 1.0 - p / b) for b, p in pairs)
    results = {
        "wan_rtt_ms": WAN_RTT_MS,
        "wan_partitions": WAN_PARTITIONS,
        "wan_messages": WAN_PARTITIONS * WAN_MSGS,
        "wan_sync_msgs_s": round(sync, 1),
        "wan_prefetch_msgs_s": round(prefetched, 1),
        "wan_speedup": round(prefetched / sync, 2),
        "min_wan_speedup": MIN_PREFETCH_WAN_SPEEDUP,
        "inproc_messages": PIPE_MESSAGES,
        "inproc_rounds": PREFETCH_INPROC_ROUNDS,
        "inproc_batched_msgs_s": round(inproc_base, 1),
        "inproc_prefetch_msgs_s": round(inproc_prefetch, 1),
        "inproc_pair_regressions": [
            round(max(0.0, 1.0 - p / b), 3) for b, p in pairs
        ],
        "inproc_regression": round(inproc_regression, 3),
        "max_inproc_regression": MAX_PREFETCH_INPROC_REGRESSION,
    }
    PREFETCH_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    PREFETCH_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_prefetch(results: dict) -> list:
    failures = []
    if results["wan_speedup"] < MIN_PREFETCH_WAN_SPEEDUP:
        failures.append(
            f"prefetch WAN consume speedup {results['wan_speedup']}x "
            f"< required {MIN_PREFETCH_WAN_SPEEDUP}x "
            f"({results['wan_prefetch_msgs_s']} vs "
            f"{results['wan_sync_msgs_s']} msgs/s at {WAN_RTT_MS} ms RTT)"
        )
    if results["inproc_regression"] > MAX_PREFETCH_INPROC_REGRESSION:
        failures.append(
            f"prefetch in-proc consume regression "
            f"{results['inproc_regression']:.1%} > allowed "
            f"{MAX_PREFETCH_INPROC_REGRESSION:.0%} "
            f"({results['inproc_prefetch_msgs_s']} vs "
            f"{results['inproc_batched_msgs_s']} msgs/s)"
        )
    return failures


@pytest.mark.bench
def test_prefetch_guard():
    results = run_prefetch_guard()
    failures = _check_prefetch(results)
    assert not failures, "; ".join(failures) + f"; see {PREFETCH_ARTIFACT}"


# -- telemetry guard: disabled-hook overhead + enabled-run artifact ----------

#: Telemetry attached but *disabled* (tracer at sample_rate=0 plus a
#: metrics registry, no sampler thread) must stay within 5% of the bare
#: pipeline: the per-record hook cost is a header check and a sampled-out
#: (no-op) span. This is the issue's "disabled-by-default overhead" gate.
MAX_TELEMETRY_OFF_OVERHEAD = 0.05
#: Fully *enabled* telemetry (tracing every message + live registry +
#: background sampler) is real per-record work, but since the hot path
#: went batch-shaped (``record_hops``/``observe_many``, lazy span attrs)
#: it must stay within 10% of the bare pipeline — down from the ~45%
#: the per-span-object path cost.
MAX_TELEMETRY_ON_OVERHEAD = 0.10
#: Interleaved bare/disabled/enabled rounds, each gate taking the
#: cleanest adjacent pair (same trick as the prefetch in-proc gate).
#: Not reduced in FAST mode: a single pair is dominated by scheduler
#: noise and the 5%/10% gates would be vacuous.
TELEMETRY_ROUNDS = 3


def _telemetry_objects(enabled: bool) -> tuple:
    """(registry, tracer, sampler) — sampler only when *enabled*."""
    from repro.monitoring import MetricsRegistry, TelemetrySampler, Tracer

    registry = MetricsRegistry()
    tracer = Tracer("bench", sample_rate=1.0 if enabled else 0.0)
    sampler = (
        TelemetrySampler(registry=registry, interval_s=0.05) if enabled else None
    )
    return registry, tracer, sampler


def run_telemetry_guard() -> dict:
    """Measure telemetry overhead, persist artifact + JSONL, return results."""
    payload = encode_block(
        np.random.default_rng(0).normal(size=(PIPE_POINTS, PIPE_FEATURES))
    )
    pairs = []
    enabled_pairs = []
    tracer = sampler = None
    for _ in range(TELEMETRY_ROUNDS):
        bare = _pipeline_rate(payload, batched=True, check_crcs=False)
        off = _pipeline_rate(
            payload, batched=True, check_crcs=False,
            telemetry=_telemetry_objects(enabled=False),
        )
        # Fully-enabled round in the same interleave: every message
        # traced (producer stamp -> broker.append -> consumer.poll
        # spans), live registry histograms, background sampler thread.
        registry, tracer, sampler = _telemetry_objects(enabled=True)
        on = _pipeline_rate(
            payload, batched=True, check_crcs=False,
            telemetry=(registry, tracer, sampler),
        )
        pairs.append((bare, off))
        enabled_pairs.append((bare, on))
    off_overhead = min(max(0.0, 1.0 - o / b) for b, o in pairs)
    on_overhead = min(max(0.0, 1.0 - o / b) for b, o in enabled_pairs)

    # The last enabled round's sampler series is the CI artifact.
    TELEMETRY_JSONL.parent.mkdir(parents=True, exist_ok=True)
    sampler.write_jsonl(TELEMETRY_JSONL)
    bare_best = max(b for b, _ in pairs)
    results = {
        "messages": PIPE_MESSAGES,
        "message_bytes": len(payload),
        "rounds": TELEMETRY_ROUNDS,
        "bare_msgs_s": round(bare_best, 1),
        "disabled_msgs_s": round(max(o for _, o in pairs), 1),
        "enabled_msgs_s": round(max(o for _, o in enabled_pairs), 1),
        "pair_overheads": [round(max(0.0, 1.0 - o / b), 3) for b, o in pairs],
        "disabled_overhead": round(off_overhead, 3),
        "max_disabled_overhead": MAX_TELEMETRY_OFF_OVERHEAD,
        "enabled_pair_overheads": [
            round(max(0.0, 1.0 - o / b), 3) for b, o in enabled_pairs
        ],
        "enabled_overhead": round(on_overhead, 3),
        "max_enabled_overhead": MAX_TELEMETRY_ON_OVERHEAD,
        "enabled_spans": tracer.stats()["spans_retained"],
        "enabled_sample_rounds": sampler.sample_rounds,
        "telemetry_jsonl": str(TELEMETRY_JSONL),
    }
    TELEMETRY_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    TELEMETRY_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_telemetry(results: dict) -> list:
    failures = []
    if results["disabled_overhead"] > MAX_TELEMETRY_OFF_OVERHEAD:
        failures.append(
            f"disabled-telemetry consume overhead "
            f"{results['disabled_overhead']:.1%} > allowed "
            f"{MAX_TELEMETRY_OFF_OVERHEAD:.0%} "
            f"({results['disabled_msgs_s']} vs {results['bare_msgs_s']} msgs/s)"
        )
    if results["enabled_overhead"] > MAX_TELEMETRY_ON_OVERHEAD:
        failures.append(
            f"enabled-telemetry consume overhead "
            f"{results['enabled_overhead']:.1%} > allowed "
            f"{MAX_TELEMETRY_ON_OVERHEAD:.0%} "
            f"({results['enabled_msgs_s']} vs {results['bare_msgs_s']} msgs/s)"
        )
    if results["enabled_spans"] == 0:
        failures.append(
            "enabled-telemetry round recorded no spans: the overhead "
            "numbers are vacuous"
        )
    return failures


@pytest.mark.bench
def test_telemetry_guard():
    results = run_telemetry_guard()
    failures = _check_telemetry(results)
    assert not failures, "; ".join(failures) + f"; see {TELEMETRY_ARTIFACT}"


# -- reactor guard: connection scale + no server throughput regression -------

#: The connection-scale leg must hold 1k+ concurrent clients (mixed
#: idle / long-polling / pipelined-producing) on ONE reactor with zero
#: extra threads and flat per-connection Python-heap memory.
REACTOR_CONNECTIONS = 1000
REACTOR_PRODUCERS = 100
REACTOR_LONG_POLLERS = 200
REACTOR_APPENDS_PER_PRODUCER = 5
MAX_REACTOR_PER_CONN_BYTES = 32 * 1024
#: Throughput legs: draining the prefetch-guard topic through a
#: RemoteBroker against the reactor must stay within 10% of the
#: thread-per-connection baseline, in-proc and at the 24 ms WAN RTT.
#: Interleaved baseline/reactor pairs, gated on the cleanest pair.
MAX_REACTOR_INPROC_REGRESSION = 0.10
MAX_REACTOR_WAN_REGRESSION = 0.10
REACTOR_INPROC_ROUNDS = 3
REACTOR_WAN_ROUNDS = 1 if FAST else 2


def _ensure_fds(needed: int) -> bool:
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= needed:
        return True
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))
    except (ValueError, OSError):
        return False
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0] >= needed


def _reactor_connection_scale() -> dict:
    """1k concurrent mixed-role clients against one reactor, measured."""
    if not _ensure_fds(2 * REACTOR_CONNECTIONS + 256):
        return {"connections": 0, "error": "cannot raise RLIMIT_NOFILE"}
    server = ReactorBrokerServer(num_workers=4).start()
    server.broker.create_topic("lp", 1)
    server.broker.create_topic("prod", 1)
    socks: list = []
    try:
        baseline_threads = threading.active_count()

        def connect() -> socket.socket:
            sock = socket.create_connection((server.host, server.port), timeout=30)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(30)
            socks.append(sock)
            return sock

        producers = [connect() for _ in range(REACTOR_PRODUCERS)]
        pollers = [connect() for _ in range(REACTOR_LONG_POLLERS)]
        n_idle = REACTOR_CONNECTIONS - REACTOR_PRODUCERS - REACTOR_LONG_POLLERS
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(n_idle):
            connect()
        deadline = time.monotonic() + 30
        while (
            server.connections_active < REACTOR_CONNECTIONS
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        per_conn = (after - before) / n_idle

        for sock in pollers:
            send_frame(
                sock,
                {"op": "fetch", "topic": "lp", "partition": 0, "offset": 0,
                 "timeout": 60.0, "cid": 0},
            )
        deadline = time.monotonic() + 30
        while (
            server.parked_fetches < REACTOR_LONG_POLLERS
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        threads_added = threading.active_count() - baseline_threads

        t0 = time.perf_counter()
        answered = 0
        for i, sock in enumerate(producers):
            for j in range(REACTOR_APPENDS_PER_PRODUCER):
                send_frame(
                    sock,
                    {"op": "append", "topic": "prod", "partition": 0,
                     "value": b64(b"m%d-%d" % (i, j)), "cid": j},
                )
        for sock in producers:
            for _ in range(REACTOR_APPENDS_PER_PRODUCER):
                response, _ = recv_frame(sock)
                answered += response["ok"]
        server.broker.append("lp", 0, b"wake")
        for sock in pollers:
            response, _ = recv_frame(sock)
            answered += response["ok"] and len(response["result"]) == 1
        elapsed = time.perf_counter() - t0
        expected = (
            REACTOR_PRODUCERS * REACTOR_APPENDS_PER_PRODUCER
            + REACTOR_LONG_POLLERS
        )
        return {
            "connections": server.connections_active,
            "long_polls_parked_peak": REACTOR_LONG_POLLERS,
            "threads_added": threads_added,
            "per_conn_bytes": round(per_conn),
            "requests_expected": expected,
            "requests_answered": int(answered),
            "mixed_load_s": round(elapsed, 3),
        }
    finally:
        if tracemalloc.is_tracing():
            tracemalloc.stop()
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        server.stop()


def _prefilled_server(server_cls):
    server = server_cls()
    server.start()
    with RemoteBroker(server.host, server.port) as admin:
        admin.create_topic("guard", WAN_PARTITIONS)
        for p in range(WAN_PARTITIONS):
            admin.append_many("guard", p, [b"x" * 1024] * WAN_MSGS)
    return server


def _server_drain_rate(server, rtt_ms: float) -> float:
    """Records/s draining the pre-filled topic from *server*."""
    link = None
    if rtt_ms > 0:
        link = Link(
            LinkProfile("reactor-guard", rtt_ms, rtt_ms, 1_000.0, 1_000.0),
            time_scale=1.0,
        )
    total = WAN_PARTITIONS * WAN_MSGS
    with RemoteBroker(server.host, server.port, link=link) as rb:
        consumer = Consumer(
            rb, fetch_prefetch_batches=4, fetch_max_wait_ms=100.0
        )
        consumer.assign([("guard", p) for p in range(WAN_PARTITIONS)])
        try:
            t0 = time.perf_counter()
            got = 0
            while got < total:
                got += len(
                    consumer.poll(max_records=PREFETCH_POLL_BATCH, timeout=0.5)
                )
            return total / (time.perf_counter() - t0)
        finally:
            consumer.close()


def _server_drain_pair(rtt_ms: float) -> tuple:
    """(threaded, reactor) drain rates measured back to back."""
    rates = []
    for server_cls in (ThreadedBrokerServer, ReactorBrokerServer):
        server = _prefilled_server(server_cls)
        try:
            rates.append(_server_drain_rate(server, rtt_ms))
        finally:
            server.stop()
    return tuple(rates)


def run_reactor_guard() -> dict:
    """Measure the reactor server, persist the artifact, return results."""
    scale = _reactor_connection_scale()
    inproc_pairs = [_server_drain_pair(0.0) for _ in range(REACTOR_INPROC_ROUNDS)]
    wan_pairs = [_server_drain_pair(WAN_RTT_MS) for _ in range(REACTOR_WAN_ROUNDS)]
    inproc_regression = min(max(0.0, 1.0 - r / b) for b, r in inproc_pairs)
    wan_regression = min(max(0.0, 1.0 - r / b) for b, r in wan_pairs)
    results = {
        **scale,
        "wan_rtt_ms": WAN_RTT_MS,
        "drain_messages": WAN_PARTITIONS * WAN_MSGS,
        "inproc_threaded_msgs_s": round(max(b for b, _ in inproc_pairs), 1),
        "inproc_reactor_msgs_s": round(max(r for _, r in inproc_pairs), 1),
        "inproc_pair_regressions": [
            round(max(0.0, 1.0 - r / b), 3) for b, r in inproc_pairs
        ],
        "inproc_regression": round(inproc_regression, 3),
        "max_inproc_regression": MAX_REACTOR_INPROC_REGRESSION,
        "wan_threaded_msgs_s": round(max(b for b, _ in wan_pairs), 1),
        "wan_reactor_msgs_s": round(max(r for _, r in wan_pairs), 1),
        "wan_regression": round(wan_regression, 3),
        "max_wan_regression": MAX_REACTOR_WAN_REGRESSION,
        "max_per_conn_bytes": MAX_REACTOR_PER_CONN_BYTES,
    }
    REACTOR_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    REACTOR_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_reactor(results: dict) -> list:
    failures = []
    if results["connections"] < REACTOR_CONNECTIONS:
        failures.append(
            f"connection-scale leg held {results['connections']} concurrent "
            f"connections < required {REACTOR_CONNECTIONS} "
            f"({results.get('error', 'connections dropped or not accepted')})"
        )
    else:
        if results["threads_added"] > 0:
            failures.append(
                f"{results['connections']} connections grew the thread count "
                f"by {results['threads_added']} (must be 0: O(1) threads)"
            )
        if results["per_conn_bytes"] > MAX_REACTOR_PER_CONN_BYTES:
            failures.append(
                f"per-connection heap {results['per_conn_bytes']} B > allowed "
                f"{MAX_REACTOR_PER_CONN_BYTES} B"
            )
        if results["requests_answered"] != results["requests_expected"]:
            failures.append(
                f"only {results['requests_answered']}/"
                f"{results['requests_expected']} requests answered"
            )
    if results["inproc_regression"] > MAX_REACTOR_INPROC_REGRESSION:
        failures.append(
            f"reactor in-proc drain regression "
            f"{results['inproc_regression']:.1%} > allowed "
            f"{MAX_REACTOR_INPROC_REGRESSION:.0%} "
            f"({results['inproc_reactor_msgs_s']} vs "
            f"{results['inproc_threaded_msgs_s']} msgs/s)"
        )
    if results["wan_regression"] > MAX_REACTOR_WAN_REGRESSION:
        failures.append(
            f"reactor WAN drain regression {results['wan_regression']:.1%} "
            f"> allowed {MAX_REACTOR_WAN_REGRESSION:.0%} "
            f"({results['wan_reactor_msgs_s']} vs "
            f"{results['wan_threaded_msgs_s']} msgs/s at {WAN_RTT_MS} ms RTT)"
        )
    return failures


@pytest.mark.bench
def test_reactor_guard():
    results = run_reactor_guard()
    failures = _check_reactor(results)
    assert not failures, "; ".join(failures) + f"; see {REACTOR_ARTIFACT}"


# -- robustness guard: idempotence overhead + lossy-path delivery ------------

#: Idempotent batched produce must stay within 10% of the plain batched
#: path on a clean (fault-free) broker — the dedup bookkeeping is O(1)
#: per batch and must not tax the fast path. Measured cost is ~6% at 32
#: records/batch (fixed ~1.5 us of sequence bookkeeping against a
#: ~25 us batch append), amortizing toward 0 at larger batches.
MAX_IDEMPOTENCE_OVERHEAD = 0.10
#: Interleaved sweeps per trial. A single 4-batch sweep finishes in
#: ~100 us, where one GC pause or scheduler preemption swamps the 10%
#: gate; taking the min over many alternating plain/idempotent sweeps
#: (GC disabled) samples both paths under the same noise and keeps the
#: cleanest pass of each.
ROBUST_REPS = 40
#: Trials whose median decides the overhead — rejects whole-trial drift
#: (measured noise floor for identical producers is ~+-6%).
ROBUST_TRIALS = 5
#: Injected drop probability for the lossy-delivery leg (the paper's
#: cellular-edge loss rate).
LOSS_PROBABILITY = 0.01
#: Per-message sends in the lossy leg: enough broker calls that a 1%
#: drop plan fires several times (expected ~5 for 512 sends).
LOSSY_MESSAGES = 512


def _produce_sweep_pair(payload: bytes) -> tuple:
    """One interleaved trial: (plain, idempotent) best sweep rates, MB/s.

    Both producers are warmed up first (registration + first-contact
    partition state happen outside the timed region), then their batch
    sweeps alternate inside a single GC-disabled loop so scheduler drift
    and allocator state hit both paths identically; the min sweep of
    each is the cleanest pass.
    """

    def setup(**producer_kwargs):
        broker = Broker()
        broker.create_topic("guard", 1)
        producer = Producer(broker, **producer_kwargs)
        chunks = [
            [payload] * min(BATCH, MESSAGES - start)
            for start in range(0, MESSAGES, BATCH)
        ]
        for chunk in chunks:  # warm-up
            producer.send_many("guard", chunk, partition=0)
        return producer, chunks

    def sweep(producer, chunks) -> float:
        t0 = time.perf_counter()
        for chunk in chunks:
            producer.send_many("guard", chunk, partition=0)
        return time.perf_counter() - t0

    plain = setup()
    idem = setup(retries=3, retry_backoff_ms=0.0)
    gc.collect()
    gc.disable()
    try:
        best_plain = best_idem = float("inf")
        for _ in range(ROBUST_REPS):
            best_plain = min(best_plain, sweep(*plain))
            best_idem = min(best_idem, sweep(*idem))
    finally:
        gc.enable()
    volume = MESSAGES * len(payload) / 1e6
    return volume / best_plain, volume / best_idem


def _lossy_delivery() -> dict:
    """Produce through a 1%-drop broker with retries; count what landed."""
    broker = Broker()
    broker.create_topic("guard", 1)
    injector = FaultInjector(seed=17)
    injector.drop_next(10**9, op="append", probability=LOSS_PROBABILITY)
    producer = Producer(
        FaultyBroker(broker, injector),
        client_id="guard-lossy",
        retries=20,
        retry_backoff_ms=0.0,
    )
    for i in range(LOSSY_MESSAGES):
        producer.send("guard", b"%d" % i, partition=0)
    consumer = Consumer(broker)
    consumer.assign([("guard", 0)])
    values = [r.value for r in consumer.poll(max_records=10 * LOSSY_MESSAGES)]
    return {
        "sent": LOSSY_MESSAGES,
        "delivered": len(values),
        "distinct": len(set(values)),
        "retries": producer.produce_retries,
        "faults_fired": injector.fired.get("drop", 0),
    }


def run_robustness_guard() -> dict:
    """Measure the delivery layer, persist the artifact, return results."""
    payload = _payload()
    trials = sorted(
        _produce_sweep_pair(payload) for _ in range(ROBUST_TRIALS)
    )
    overheads = sorted(max(0.0, 1.0 - idem / plain) for plain, idem in trials)
    plain, idempotent = trials[len(trials) // 2]
    lossy = _lossy_delivery()
    results = {
        "messages": MESSAGES,
        "message_bytes": len(payload),
        "batch_records": BATCH,
        "timed_reps": ROBUST_REPS,
        "trials": ROBUST_TRIALS,
        "produce_batched_mb_s": round(plain, 1),
        "produce_idempotent_mb_s": round(idempotent, 1),
        "idempotence_overhead": round(overheads[len(overheads) // 2], 3),
        "idempotence_overhead_trials": [round(o, 3) for o in overheads],
        "max_idempotence_overhead": MAX_IDEMPOTENCE_OVERHEAD,
        "loss_probability": LOSS_PROBABILITY,
        "lossy": lossy,
        "lossy_delivery_rate": round(lossy["distinct"] / lossy["sent"], 4),
    }
    ROBUSTNESS_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ROBUSTNESS_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_robustness(results: dict) -> list:
    failures = []
    if results["idempotence_overhead"] > MAX_IDEMPOTENCE_OVERHEAD:
        failures.append(
            f"idempotent produce overhead {results['idempotence_overhead']:.1%} "
            f"> allowed {MAX_IDEMPOTENCE_OVERHEAD:.0%} "
            f"({results['produce_idempotent_mb_s']} vs "
            f"{results['produce_batched_mb_s']} MB/s)"
        )
    lossy = results["lossy"]
    if lossy["faults_fired"] == 0:
        failures.append(
            "lossy run never fired a fault: the delivery check is vacuous"
        )
    if lossy["distinct"] != lossy["sent"]:
        failures.append(
            f"lossy run delivered {lossy['distinct']}/{lossy['sent']} "
            f"distinct messages (retries={lossy['retries']})"
        )
    if lossy["delivered"] != lossy["distinct"]:
        failures.append(
            f"lossy run duplicated offsets: {lossy['delivered']} delivered "
            f"vs {lossy['distinct']} distinct"
        )
    return failures


@pytest.mark.bench
def test_robustness_guard():
    results = run_robustness_guard()
    failures = _check_robustness(results)
    assert not failures, "; ".join(failures) + f"; see {ROBUSTNESS_ARTIFACT}"


# ---------------------------------------------------------------------------
# Multi-core shard guard
# ---------------------------------------------------------------------------
# The sharded broker exists to buy CPU parallelism: N worker processes,
# each owning a disjoint slice of the partition space. This guard drives
# a CPU-bound produce+consume workload — every record is CRC32-stamped on
# the way out and re-verified on the way back, with telemetry sampling
# running — from *client processes* (client threads would serialise
# behind the GIL and hide any server-side scaling) and checks two gates:
#
# - scaling: 4 shards sustain >= MIN_MULTICORE_SPEEDUP x the aggregate
#   throughput of 1 shard. Gated only on runners with >= 4 cores; below
#   that the kernel timeslices the shards over the same cores and the
#   ratio is noise (the artifact still records the measured value, with
#   ``gated: false``).
# - no toll on the small case: a one-shard ClusterBrokerSupervisor stays
#   within MAX_SINGLE_SHARD_REGRESSION of a plain ReactorBrokerServer on
#   the same workload — the ownership checks and metadata hop must be
#   near-free. Interleaved pairs, cleanest pair wins (same rationale as
#   the reactor guard: a one-sided scheduler hiccup should not page).

MC_PARTITIONS = 8
MC_CLIENTS = 4
MC_BATCH = 16
MC_BATCHES = 4 if FAST else 8
MC_PAYLOAD = 2048 if FAST else 8192
#: Not reduced in FAST mode: the regression metric takes the cleanest of
#: the interleaved pairs, and a single pair is dominated by scheduler
#: noise (client processes, shard processes and the sampler all compete
#: for the same cores).
MC_PAIRS = 3
MIN_MULTICORE_SPEEDUP = 2.0
MAX_SINGLE_SHARD_REGRESSION = 0.10


def _mc_client_main(index: int, bootstrap: list, out_queue) -> None:
    """One bench client (runs in its own process).

    Produces CRC-stamped batches to its own slice of the partition
    space, consumes them back, and re-verifies every checksum. Works
    unchanged against a sharded cluster or a plain single broker:
    ``Producer(bootstrap=...)`` probes the endpoint and picks the
    matching client.
    """
    mine = [p for p in range(MC_PARTITIONS) if p % MC_CLIENTS == index]
    payload = bytes(MC_PAYLOAD)
    producer = Producer(bootstrap=bootstrap, client_id=f"mc-{index}", retries=5)
    try:
        sent = dict.fromkeys(mine, 0)
        for batch in range(MC_BATCHES):
            for p in mine:
                records = [
                    payload + (f"{index}:{batch}:{i}").encode()
                    for i in range(MC_BATCH)
                ]
                sent[p] += sum(zlib.crc32(r) for r in records)
                producer.send_many("mc", records, partition=p)
        consumer = Consumer(producer.broker)
        consumer.assign([("mc", p) for p in mine])
        expect = MC_BATCHES * MC_BATCH * len(mine)
        got = dict.fromkeys(mine, 0)
        count = 0
        deadline = time.monotonic() + 60.0
        while count < expect and time.monotonic() < deadline:
            for record in consumer.poll(max_records=64, timeout=1.0):
                got[record.partition] += zlib.crc32(record.value)
                count += 1
        out_queue.put((index, count, count == expect and got == sent))
    finally:
        producer.close()


def _mc_rate(bootstrap: list) -> float:
    """Aggregate records/s across MC_CLIENTS concurrent client processes."""
    ctx = multiprocessing.get_context()
    out = ctx.Queue()
    procs = [
        ctx.Process(
            target=_mc_client_main, args=(i, bootstrap, out), daemon=True
        )
        for i in range(MC_CLIENTS)
    ]
    t0 = time.perf_counter()
    for proc in procs:
        proc.start()
    reports = [out.get(timeout=120.0) for _ in procs]
    elapsed = time.perf_counter() - t0
    for proc in procs:
        proc.join(10.0)
    bad = [index for index, _, ok in reports if not ok]
    if bad:
        raise RuntimeError(f"multicore bench clients {bad} failed CRC verification")
    return sum(count for _, count, _ in reports) / elapsed


def _mc_cluster_rate(num_shards: int) -> float:
    from repro.broker import ClusterBroker, ClusterBrokerSupervisor
    from repro.monitoring import MetricsRegistry, TelemetrySampler

    with ClusterBrokerSupervisor(
        num_shards=num_shards, topics=[("mc", MC_PARTITIONS)]
    ) as supervisor:
        handle = ClusterBroker(supervisor.bootstrap)
        sampler = TelemetrySampler(registry=MetricsRegistry(), interval_s=0.25)
        sampler.watch_cluster(handle)
        sampler.start()
        try:
            return _mc_rate(supervisor.bootstrap)
        finally:
            sampler.stop()
            handle.close()


def _mc_plain_rate() -> float:
    from repro.monitoring import MetricsRegistry, TelemetrySampler

    broker = Broker()
    broker.create_topic("mc", MC_PARTITIONS)
    server = ReactorBrokerServer(broker)
    server.start()
    # Telemetry parity with the cluster leg: sample the lone server too.
    sampler = TelemetrySampler(registry=MetricsRegistry(), interval_s=0.25)
    sampler.watch_server(server)
    sampler.start()
    try:
        return _mc_rate([(server.host, server.port)])
    finally:
        sampler.stop()
        server.stop()


def run_multicore_guard() -> dict:
    """Measure, persist the artifact, and return the results."""
    cores = os.cpu_count() or 1
    scale_pairs = []
    for _ in range(MC_PAIRS):
        one = _mc_cluster_rate(1)
        four = _mc_cluster_rate(4)
        scale_pairs.append((one, four))
    speedup = max(four / one for one, four in scale_pairs)
    regression_pairs = []
    for _ in range(MC_PAIRS):
        base = _mc_plain_rate()
        shard = _mc_cluster_rate(1)
        regression_pairs.append((base, shard))
    regression = min(
        max(0.0, 1.0 - shard / base) for base, shard in regression_pairs
    )
    results = {
        "cpu_count": cores,
        "gated": cores >= 4,
        "clients": MC_CLIENTS,
        "partitions": MC_PARTITIONS,
        "records_per_trial": MC_PARTITIONS * MC_BATCHES * MC_BATCH,
        "payload_bytes": MC_PAYLOAD,
        "one_shard_rates": [round(one, 1) for one, _ in scale_pairs],
        "four_shard_rates": [round(four, 1) for _, four in scale_pairs],
        "four_shard_speedup": round(speedup, 3),
        "plain_server_rates": [round(b, 1) for b, _ in regression_pairs],
        "single_shard_rates": [round(s, 1) for _, s in regression_pairs],
        "single_shard_regression": round(regression, 4),
        "fast_mode": FAST,
    }
    MULTICORE_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    MULTICORE_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_multicore(results: dict) -> list:
    failures = []
    if results["gated"] and results["four_shard_speedup"] < MIN_MULTICORE_SPEEDUP:
        failures.append(
            f"4-shard aggregate speedup {results['four_shard_speedup']}x < "
            f"required {MIN_MULTICORE_SPEEDUP}x on a "
            f"{results['cpu_count']}-core runner"
        )
    if results["single_shard_regression"] > MAX_SINGLE_SHARD_REGRESSION:
        failures.append(
            f"single-shard cluster throughput regressed "
            f"{results['single_shard_regression']:.1%} vs the plain reactor "
            f"server (allowed {MAX_SINGLE_SHARD_REGRESSION:.0%})"
        )
    return failures


@pytest.mark.bench
def test_multicore_guard():
    results = run_multicore_guard()
    failures = _check_multicore(results)
    assert not failures, "; ".join(failures) + f"; see {MULTICORE_ARTIFACT}"


# --------------------------------------------------------------------------
# replication guard: the acks=leader fast path stays fast, failover is fast
# --------------------------------------------------------------------------
# Replication buys durability, and its price must stay bounded on the
# path nobody asked to slow down: with acks=leader (the default), the
# leader acks before followers catch up, so the only cost is the async
# replicator stealing cycles. Two gates:
#
# - overhead: a replication_factor=2 cluster sustains acks=leader
#   produce throughput within MAX_REPLICATION_OVERHEAD of the same
#   cluster at replication_factor=1. Interleaved pairs, cleanest pair
#   wins (same rationale as the reactor guard).
# - failover MTTR: after the leader of a partition holding acks="all"
#   records is SIGKILLed, a fresh acks="all" send to that partition
#   succeeds within MAX_FAILOVER_MTTR_S — election, client re-route and
#   respawn included — and every previously acked record is still
#   readable (zero loss, recorded in the artifact as a hard boolean).

REP_PARTITIONS = 4
REP_BATCH = 16
REP_BATCHES = 4 if FAST else 8
REP_PAYLOAD = 2048 if FAST else 8192
#: Not reduced in FAST mode, same reasoning as MC_PAIRS: the overhead
#: metric takes the cleanest interleaved pair and one pair is noise.
REP_PAIRS = 3
REP_SEED_RECORDS = 16
MAX_REPLICATION_OVERHEAD = 0.25
MAX_FAILOVER_MTTR_S = 10.0


def _rep_produce_rate(replication_factor: int) -> float:
    """acks=leader produce records/s against a 2-shard cluster."""
    from repro.broker import ClusterBrokerSupervisor

    with ClusterBrokerSupervisor(
        num_shards=2,
        topics=[("rep", REP_PARTITIONS)],
        replication_factor=replication_factor,
    ) as supervisor:
        payload = bytes(REP_PAYLOAD)
        producer = Producer(
            bootstrap=supervisor.bootstrap, client_id="rep-bench", retries=5
        )
        try:
            # Warm the connections (and the replica links) out of band.
            for p in range(REP_PARTITIONS):
                producer.send_many("rep", [payload], partition=p)
            count = 0
            t0 = time.perf_counter()
            for batch in range(REP_BATCHES):
                for p in range(REP_PARTITIONS):
                    records = [
                        payload + f"{batch}:{i}".encode()
                        for i in range(REP_BATCH)
                    ]
                    producer.send_many("rep", records, partition=p)
                    count += REP_BATCH
            elapsed = time.perf_counter() - t0
        finally:
            producer.close()
        return count / elapsed


def _rep_failover_mttr() -> tuple:
    """(mttr_s, zero_loss) for a leader SIGKILL under acks="all" load."""
    from repro.broker import (
        ClusterBroker,
        ClusterBrokerSupervisor,
        shard_for_partition,
    )
    from repro.broker.errors import BrokerError

    with ClusterBrokerSupervisor(
        num_shards=2,
        topics=[("rep", 2)],
        restart=True,
        replication_factor=2,
    ) as supervisor:
        doomed = shard_for_partition("rep", 0, 2)
        broker = ClusterBroker(supervisor.bootstrap)
        producer = Producer(
            broker,
            client_id="rep-mttr",
            acks="all",
            retries=30,
            retry_backoff_ms=25.0,
        )
        try:
            seed = [f"seed:{i}".encode() for i in range(REP_SEED_RECORDS)]
            # Fully replicated before the kill — acks="all" guarantees it.
            producer.send_many("rep", seed, partition=0)

            supervisor.kill_shard(doomed)
            t0 = time.perf_counter()
            deadline = t0 + 3 * MAX_FAILOVER_MTTR_S
            while True:
                try:
                    producer.send("rep", b"post-failover", partition=0)
                    break
                except (BrokerError, ConnectionError, OSError):
                    if time.perf_counter() >= deadline:
                        raise
                    time.sleep(0.02)
            mttr = time.perf_counter() - t0

            consumer = Consumer(broker)
            consumer.assign([("rep", 0)])
            got: list[bytes] = []
            fetch_deadline = time.monotonic() + 30.0
            while (
                len(got) < REP_SEED_RECORDS + 1
                and time.monotonic() < fetch_deadline
            ):
                try:
                    got.extend(
                        r.value
                        for r in consumer.poll(max_records=64, timeout=0.5)
                    )
                except (BrokerError, ConnectionError, OSError):
                    time.sleep(0.05)
            zero_loss = got[:REP_SEED_RECORDS] == seed and len(got) == (
                REP_SEED_RECORDS + 1
            )
        finally:
            producer.close()
            broker.close()
        return mttr, zero_loss


def run_replication_guard() -> dict:
    """Measure, persist the artifact, and return the results."""
    pairs = []
    for _ in range(REP_PAIRS):
        base = _rep_produce_rate(1)
        replicated = _rep_produce_rate(2)
        pairs.append((base, replicated))
    overhead = min(
        max(0.0, 1.0 - replicated / base) for base, replicated in pairs
    )
    mttr, zero_loss = _rep_failover_mttr()
    results = {
        "partitions": REP_PARTITIONS,
        "records_per_trial": REP_PARTITIONS * REP_BATCHES * REP_BATCH,
        "payload_bytes": REP_PAYLOAD,
        "unreplicated_rates": [round(b, 1) for b, _ in pairs],
        "replicated_rates": [round(r, 1) for _, r in pairs],
        "replication_overhead": round(overhead, 4),
        "failover_mttr_s": round(mttr, 4),
        "failover_zero_loss": zero_loss,
        "fast_mode": FAST,
    }
    REPLICATION_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    REPLICATION_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_replication(results: dict) -> list:
    failures = []
    if results["replication_overhead"] > MAX_REPLICATION_OVERHEAD:
        failures.append(
            f"replication_factor=2 cut acks=leader produce throughput by "
            f"{results['replication_overhead']:.1%} (allowed "
            f"{MAX_REPLICATION_OVERHEAD:.0%})"
        )
    if results["failover_mttr_s"] > MAX_FAILOVER_MTTR_S:
        failures.append(
            f"leader failover took {results['failover_mttr_s']}s before "
            f"acks=all sends resumed (allowed {MAX_FAILOVER_MTTR_S}s)"
        )
    if not results["failover_zero_loss"]:
        failures.append(
            "acknowledged records went missing across the leader failover"
        )
    return failures


@pytest.mark.bench
def test_replication_guard():
    results = run_replication_guard()
    failures = _check_replication(results)
    assert not failures, "; ".join(failures) + f"; see {REPLICATION_ARTIFACT}"


# -- durable segment-backed log guard (BENCH_storage.json) -------------------
#
# Four legs for the storage engine under ``repro/broker/storage/``:
#
# 1. Durable produce: group-commit batching must keep the default
#    durable mode (background write+fsync on the flush window) within
#    ``MIN_DURABLE_RATIO`` of the in-memory deque on the cleanest of
#    interleaved pairs. The opt-in ``fsync_acks`` rate (every ack waits
#    for its fsync) is reported alongside for context, ungated — it is
#    disk-latency-bound by design.
# 2. mmap fetch: steady-state reads of sealed segments (zero-copy
#    ``memoryview`` values off the page cache, decode-cached batches)
#    must stay within ``MAX_MMAP_FETCH_REGRESSION`` of the in-memory
#    deque fetch on the cleanest pair.
# 3. SIGKILL recovery: a 1-shard, rf=1 cluster (no peer to resync from)
#    is killed holding fsync-acked records; the respawned worker must
#    serve every acked record back *from its own segment files* —
#    proven by the storage recovery counters, not just the fetch.
# 4. Recovery linearity: boot scans only the active segment. A log
#    with many sealed segments must reopen scanning exactly the active
#    file's bytes, independent of total log size.

STORAGE_VALUE_BYTES = 1024
STORAGE_BATCH = 64
STORAGE_BATCHES = 96 if FAST else 192
STORAGE_PAIRS = 4 if FAST else 6
STORAGE_FETCH_TOTAL = 2048 if FAST else 4096
STORAGE_FETCH_MAX_RECORDS = 512
STORAGE_FETCH_SEGMENT_BYTES = 256 * 1024
STORAGE_KILL_ROUNDS = 4 if FAST else 6
STORAGE_KILL_BATCH = 16
STORAGE_LINEAR_SEGMENTS = 8
MIN_DURABLE_RATIO = 0.5
MAX_MMAP_FETCH_REGRESSION = 0.10


def _storage_produce_pair() -> tuple:
    """(in_memory_rate, durable_rate, counters) for one interleaved pair."""
    from repro.broker.partition import PartitionLog
    from repro.broker.storage import StorageConfig

    payload = b"\xa5" * STORAGE_VALUE_BYTES
    batch = [payload] * STORAGE_BATCH

    def sweep(log):
        t0 = time.perf_counter()
        for _ in range(STORAGE_BATCHES):
            log.append_many(batch)
        return STORAGE_BATCHES * STORAGE_BATCH / (time.perf_counter() - t0)

    mem = PartitionLog("bench", 0)
    tmp = tempfile.mkdtemp(prefix="bench-storage-")
    durable = PartitionLog(
        "bench",
        0,
        log_dir=tmp,
        storage=StorageConfig(flush_ms=5.0, segment_bytes=1 << 30),
    )
    try:
        # Warm both paths (allocator, flusher thread spin-up).
        for log in (mem, durable):
            for _ in range(8):
                log.append_many(batch)
        mem_rate = sweep(mem)
        durable_rate = sweep(durable)
        store = durable.storage
        store.wait_durable(store.next_offset, timeout=30.0)
        counters = dict(store.counters)
    finally:
        durable.close()
        shutil.rmtree(tmp, ignore_errors=True)
    return mem_rate, durable_rate, counters


def _storage_fsync_acks_rate() -> float:
    """records/s when every produce ack waits for its group-commit fsync."""
    from repro.broker.partition import PartitionLog
    from repro.broker.storage import StorageConfig

    payload = b"\xa5" * STORAGE_VALUE_BYTES
    batch = [payload] * STORAGE_BATCH
    tmp = tempfile.mkdtemp(prefix="bench-storage-sync-")
    log = PartitionLog(
        "bench",
        0,
        log_dir=tmp,
        storage=StorageConfig(
            fsync_acks=True, flush_ms=2.0, segment_bytes=1 << 30
        ),
    )
    try:
        for _ in range(4):
            log.append_many(batch)
        batches = max(8, STORAGE_BATCHES // 8)
        t0 = time.perf_counter()
        for _ in range(batches):
            log.append_many(batch)
        elapsed = time.perf_counter() - t0
        return batches * STORAGE_BATCH / elapsed
    finally:
        log.close()
        shutil.rmtree(tmp, ignore_errors=True)


def _storage_fetch_rates() -> dict:
    """Steady-state sealed-mmap fetch vs deque fetch, interleaved pairs."""
    from repro.broker.partition import PartitionLog
    from repro.broker.storage import StorageConfig

    payload = b"\xa5" * STORAGE_VALUE_BYTES
    batch = [payload] * STORAGE_BATCH
    tmp = tempfile.mkdtemp(prefix="bench-storage-fetch-")
    durable = PartitionLog(
        "bench",
        0,
        log_dir=tmp,
        storage=StorageConfig(
            flush_ms=5.0, segment_bytes=STORAGE_FETCH_SEGMENT_BYTES
        ),
    )
    mem = PartitionLog("bench", 0)
    try:
        for _ in range(STORAGE_FETCH_TOTAL // STORAGE_BATCH):
            durable.append_many(batch)
            mem.append_many(batch)
        durable.storage.flush()
        # One more append so the deque evicts everything just sealed —
        # the sweep below must be served off the mmap, not the tail.
        durable.append_many([payload] * 4)
        limit = STORAGE_FETCH_TOTAL - STORAGE_FETCH_MAX_RECORDS

        def sweep(log):
            t0 = time.perf_counter()
            count = 0
            offset = 0
            while offset < limit:
                records = log.fetch(
                    offset, max_records=STORAGE_FETCH_MAX_RECORDS
                )
                count += len(records)
                offset += len(records)
            return count / (time.perf_counter() - t0)

        probe = durable.fetch(0, max_records=1)
        zero_copy = isinstance(probe[0].value, memoryview)
        sweep(durable)  # warm: decode once, fill the batch cache
        sweep(mem)
        pairs = []
        for _ in range(STORAGE_PAIRS):
            deque_rate = sweep(mem)
            mmap_rate = sweep(durable)
            pairs.append((deque_rate, mmap_rate))
        regression = min(
            max(0.0, 1.0 - mmap_rate / deque_rate)
            for deque_rate, mmap_rate in pairs
        )
        counters = durable.storage.counters
        lookups = (
            counters["decode_cache_hits"] + counters["decode_cache_misses"]
        )
        return {
            "deque_fetch_rates": [round(d, 1) for d, _ in pairs],
            "mmap_fetch_rates": [round(m, 1) for _, m in pairs],
            "mmap_fetch_regression": round(regression, 4),
            "mmap_zero_copy": zero_copy,
            "decode_cache_hit_rate": round(
                counters["decode_cache_hits"] / lookups, 4
            )
            if lookups
            else 0.0,
        }
    finally:
        durable.close()
        shutil.rmtree(tmp, ignore_errors=True)


def _storage_kill_recovery() -> dict:
    """SIGKILL a 1-shard durable cluster; acked records must come back
    from its segment files (rf=1: there is no peer to copy from)."""
    from repro.broker import ClusterBroker, ClusterBrokerSupervisor
    from repro.broker.errors import RetriableError
    from repro.broker.storage import StorageConfig

    total = STORAGE_KILL_ROUNDS * STORAGE_KILL_BATCH
    tmp = tempfile.mkdtemp(prefix="bench-storage-kill-")
    try:
        with ClusterBrokerSupervisor(
            num_shards=1,
            topics=[("t", 1)],
            restart=True,
            log_dir=tmp,
            storage=StorageConfig(fsync_acks=True, flush_ms=5.0),
        ) as supervisor:
            client = ClusterBroker(supervisor.bootstrap)
            producer = Producer(client, client_id="bench-storage-kill")

            def shard_stats() -> dict:
                host, port = supervisor.addresses[0]
                remote = RemoteBroker(host, port)
                try:
                    return remote.stats()
                finally:
                    remote.close()

            expected = []
            try:
                for round_no in range(STORAGE_KILL_ROUNDS):
                    values = [
                        f"{round_no}:{i}".encode()
                        for i in range(STORAGE_KILL_BATCH)
                    ]
                    producer.send_many("t", values, partition=0)
                    expected.extend(values)

                supervisor.kill_shard(0)
                deadline = time.monotonic() + 60.0
                while supervisor.restarts < 1 and time.monotonic() < deadline:
                    time.sleep(0.05)
                while time.monotonic() < deadline:
                    try:
                        if shard_stats()["topics"]["t"]["records_in"] >= total:
                            break
                    except (RetriableError, ConnectionError, OSError):
                        pass
                    time.sleep(0.05)
                stats = shard_stats()
                records = client.fetch("t", 0, 0, max_records=total * 2)
                intact = [bytes(r.value) for r in records] == expected
                recovered = stats["storage"]["recovered_records"]
                return {
                    "acked_records": total,
                    "recovered_records": recovered,
                    "recovery_scan_bytes": stats["storage"][
                        "recovery_scan_bytes"
                    ],
                    "zero_acked_loss_from_disk": bool(
                        intact and recovered >= total
                    ),
                }
            finally:
                producer.close()
                client.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _storage_recovery_linearity() -> dict:
    """Reopen a many-segment log; boot must scan only the active file."""
    from repro.broker.message import Record
    from repro.broker.storage import SegmentStore, StorageConfig

    config = StorageConfig(
        segment_bytes=64 * 1024, flush_ms=60_000.0, flush_bytes=1 << 30
    )
    payload = b"\xa5" * STORAGE_VALUE_BYTES
    tmp = tempfile.mkdtemp(prefix="bench-storage-linear-")
    directory = os.path.join(tmp, "t-0")

    def records_at(offset: int, count: int) -> list:
        return [
            Record("t", 0, offset + i, payload, None, {}, 0.0, 0.0)
            for i in range(count)
        ]

    store = SegmentStore(directory, "t", 0, config=config)
    try:
        offset = 0
        # Each flushed batch overflows segment_bytes, so every flush
        # seals a segment — the log ends up dominated by sealed files.
        for _ in range(STORAGE_LINEAR_SEGMENTS):
            store.append_batch(records_at(offset, STORAGE_BATCH))
            offset += STORAGE_BATCH
            store.flush()
        # A small unsealed tail so the active segment is non-empty.
        store.append_batch(records_at(offset, 8))
    finally:
        store.close()  # flushes the tail

    reopened = SegmentStore(directory, "t", 0, config=config)
    try:
        stats = reopened.stats()
        return {
            "sealed_segments": stats["sealed_segments"],
            "log_bytes": reopened.size_bytes,
            "active_bytes": stats["active_bytes"],
            "recovery_scan_bytes": reopened.recovered.scan_bytes,
            "recovery_truncated_bytes": reopened.recovered.truncated_bytes,
        }
    finally:
        reopened.close()
        shutil.rmtree(tmp, ignore_errors=True)


def run_storage_guard() -> dict:
    """Measure, persist the artifact, and return the results."""
    pairs = []
    counters: dict = {}
    for _ in range(STORAGE_PAIRS):
        mem_rate, durable_rate, counters = _storage_produce_pair()
        pairs.append((mem_rate, durable_rate))
    produce_regression = min(
        max(0.0, 1.0 - durable / mem) for mem, durable in pairs
    )
    fsync_acks_rate = _storage_fsync_acks_rate()
    fetch = _storage_fetch_rates()
    recovery = _storage_kill_recovery()
    linearity = _storage_recovery_linearity()
    results = {
        "value_bytes": STORAGE_VALUE_BYTES,
        "batch_records": STORAGE_BATCH,
        "in_memory_produce_rates": [round(m, 1) for m, _ in pairs],
        "durable_produce_rates": [round(d, 1) for _, d in pairs],
        "durable_produce_regression": round(produce_regression, 4),
        "durable_fsyncs": counters.get("fsyncs", 0),
        "durable_appended_batches": counters.get("appended_batches", 0),
        "fsync_acks_produce_rate": round(fsync_acks_rate, 1),
        **fetch,
        **recovery,
        **linearity,
        "fast_mode": FAST,
    }
    STORAGE_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    STORAGE_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_storage(results: dict) -> list:
    failures = []
    if results["durable_produce_regression"] > 1.0 - MIN_DURABLE_RATIO:
        failures.append(
            f"durable produce fell to "
            f"{1.0 - results['durable_produce_regression']:.2f}x the "
            f"in-memory log (required >= {MIN_DURABLE_RATIO}x on the "
            f"cleanest pair)"
        )
    if not results["mmap_zero_copy"]:
        failures.append(
            "sealed-segment fetch returned materialized bytes instead of "
            "zero-copy memoryview slices"
        )
    if results["mmap_fetch_regression"] > MAX_MMAP_FETCH_REGRESSION:
        failures.append(
            f"mmap fetch of sealed segments ran "
            f"{results['mmap_fetch_regression']:.1%} behind the deque "
            f"fetch (allowed {MAX_MMAP_FETCH_REGRESSION:.0%})"
        )
    if not results["zero_acked_loss_from_disk"]:
        failures.append(
            "fsync-acked records did not all come back from the killed "
            "shard's segment files"
        )
    if results["recovered_records"] < results["acked_records"]:
        failures.append(
            f"disk recovery replayed {results['recovered_records']} of "
            f"{results['acked_records']} acked records"
        )
    if results["recovery_scan_bytes"] > results["active_bytes"]:
        failures.append(
            f"boot scanned {results['recovery_scan_bytes']} bytes for a "
            f"{results['active_bytes']}-byte active segment — recovery is "
            f"no longer linear in the active segment"
        )
    if (
        results["sealed_segments"] >= 4
        and results["recovery_scan_bytes"] * 2 > results["log_bytes"]
    ):
        failures.append(
            f"boot scan covered {results['recovery_scan_bytes']} of "
            f"{results['log_bytes']} log bytes — recovery cost is "
            f"tracking total log size"
        )
    return failures


@pytest.mark.bench
def test_storage_guard():
    results = run_storage_guard()
    failures = _check_storage(results)
    assert not failures, "; ".join(failures) + f"; see {STORAGE_ARTIFACT}"


@pytest.mark.bench
def test_batched_fast_path_guard():
    results = run_guard()
    assert results["batched_speedup"] >= MIN_SPEEDUP, (
        f"batched produce regressed to {results['batched_speedup']}x the "
        f"single-record path ({results['produce_batched_mb_s']} vs "
        f"{results['produce_single_mb_s']} MB/s); see {ARTIFACT}"
    )


@pytest.mark.bench
def test_pipeline_consume_guard():
    results = run_pipeline_guard()
    assert results["batched_speedup"] >= MIN_PIPELINE_SPEEDUP, (
        f"batched consume regressed to {results['batched_speedup']}x the "
        f"per-message path ({results['batched_msgs_s']} vs "
        f"{results['per_message_msgs_s']} msgs/s); see {PIPELINE_ARTIFACT}"
    )


# -- cluster observability guard (BENCH_observability.json) ------------------
#
# Two legs for the cluster-wide observability plane:
#
# - enabled-plane overhead: durable acks="all" produce throughput with
#   FULL instrumentation on (per-shard registries, journals, tracers
#   with a sampled traced producer, plus a live sampler scraping the
#   federated aggregator) must stay within MAX_OBSERVABILITY_OVERHEAD
#   of the same cluster with telemetry off. Interleaved pairs, cleanest
#   pair wins (same rationale as the in-proc telemetry guard above).
# - scrape latency: ONE aggregator scrape of a 4-shard cluster — four
#   wire round-trips plus the counter sync and histogram merges — must
#   complete within MAX_SCRAPE_MS, so scraping on the sampler tick can
#   never stall the sampler. The same cluster exports the sample
#   incident artifacts CI uploads (events.jsonl, merged exposition).

OBS_PARTITIONS = 4
OBS_BATCH = 16
OBS_BATCHES = 4 if FAST else 8
OBS_PAYLOAD = 2048
#: Not reduced in FAST mode: the overhead metric takes the cleanest of
#: the interleaved pairs, and a single pair is scheduler noise.
OBS_PAIRS = 3
OBS_SCRAPE_SHARDS = 4
OBS_SCRAPE_ROUNDS = 5
#: Production tracing is sampled; tracing 100% of records is a client
#: decision with a client cost, not cluster instrumentation overhead.
#: The shard-side plane (registries, journals, hop spans for sampled
#: contexts, aggregator scrapes) stays fully enabled under this rate.
OBS_TRACE_SAMPLE = 0.1
MAX_OBSERVABILITY_OVERHEAD = 0.10
MAX_SCRAPE_MS = 50.0


def _obs_produce_rate(telemetry: bool) -> float:
    """Durable acks="all" records/s on a 2-shard rf=2 cluster.

    The enabled round runs the whole plane: shard registries + journals
    + tracers, a sampled traced producer (so sampled records carry a
    context and the leader/follower hop spans are recorded for them),
    and a background sampler scraping the federated aggregator on its
    tick.
    """
    from repro.broker import ClusterBroker, ClusterBrokerSupervisor
    from repro.monitoring import TelemetrySampler, Tracer
    from repro.monitoring.cluster import ClusterMetricsAggregator

    tmp = tempfile.mkdtemp(prefix="bench-obs-")
    try:
        with ClusterBrokerSupervisor(
            num_shards=2,
            topics=[("obs", OBS_PARTITIONS)],
            replication_factor=2,
            log_dir=tmp,
            telemetry=telemetry,
            trace_sample=OBS_TRACE_SAMPLE if telemetry else 1.0,
        ) as supervisor:
            broker = ClusterBroker(supervisor.bootstrap)
            producer = Producer(
                broker,
                client_id="obs-bench",
                acks="all",
                retries=5,
                tracer=(
                    Tracer("obs-bench", sample_rate=OBS_TRACE_SAMPLE)
                    if telemetry
                    else None
                ),
            )
            sampler = None
            try:
                if telemetry:
                    sampler = TelemetrySampler(interval_s=0.1)
                    sampler.watch_cluster(broker)
                    ClusterMetricsAggregator(broker).attach(sampler)
                    sampler.start()
                payload = bytes(OBS_PAYLOAD)
                # Warm the connections and the replica links out of band.
                for p in range(OBS_PARTITIONS):
                    producer.send_many("obs", [payload], partition=p)
                count = 0
                t0 = time.perf_counter()
                for batch in range(OBS_BATCHES):
                    for p in range(OBS_PARTITIONS):
                        records = [
                            payload + f"{batch}:{i}".encode()
                            for i in range(OBS_BATCH)
                        ]
                        producer.send_many("obs", records, partition=p)
                        count += OBS_BATCH
                elapsed = time.perf_counter() - t0
            finally:
                if sampler is not None:
                    sampler.stop(final_sample=False)
                producer.close()
                broker.close()
            return count / elapsed
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _obs_scrape_and_artifacts() -> dict:
    """Scrape latency on a 4-shard cluster + the exported sample artifacts."""
    from repro.broker import ClusterBroker, ClusterBrokerSupervisor
    from repro.monitoring.cluster import (
        ClusterEventCollector,
        ClusterMetricsAggregator,
    )

    tmp = tempfile.mkdtemp(prefix="bench-obs-scrape-")
    try:
        with ClusterBrokerSupervisor(
            num_shards=OBS_SCRAPE_SHARDS,
            topics=[("obs", OBS_SCRAPE_SHARDS * 2)],
            replication_factor=2,
            log_dir=tmp,
            telemetry=True,
        ) as supervisor:
            broker = ClusterBroker(supervisor.bootstrap)
            producer = Producer(broker, client_id="obs-scrape", acks="all")
            try:
                payload = bytes(OBS_PAYLOAD)
                for p in range(OBS_SCRAPE_SHARDS * 2):
                    producer.send_many("obs", [payload] * OBS_BATCH, partition=p)

                aggregator = ClusterMetricsAggregator(broker)
                collector = ClusterEventCollector(
                    cluster=broker, journals=[supervisor.events]
                )
                aggregator.scrape()  # warm the scrape connections
                times = []
                for _ in range(OBS_SCRAPE_ROUNDS):
                    t0 = time.perf_counter()
                    merged = aggregator.scrape()
                    times.append(time.perf_counter() - t0)
                collector.poll()

                OBSERVABILITY_EVENTS_JSONL.parent.mkdir(
                    parents=True, exist_ok=True
                )
                journal_events = collector.write_jsonl(
                    OBSERVABILITY_EVENTS_JSONL
                )
                OBSERVABILITY_EXPOSITION.write_text(aggregator.to_prometheus())
                return {
                    "scrape_shards": len(
                        [s for s in merged["shards"] if s != "local"]
                    ),
                    "scrape_ms": round(min(times) * 1e3, 3),
                    "scrape_ms_all": [round(t * 1e3, 3) for t in times],
                    "journal_events": journal_events,
                    "merged_counters": len(merged["counters"]),
                    "merged_histograms": len(merged["histograms"]),
                }
            finally:
                producer.close()
                broker.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_observability_guard() -> dict:
    """Measure, persist the artifact, and return the results."""
    pairs = []
    for _ in range(OBS_PAIRS):
        disabled = _obs_produce_rate(telemetry=False)
        enabled = _obs_produce_rate(telemetry=True)
        pairs.append((disabled, enabled))
    overhead = min(
        max(0.0, 1.0 - enabled / disabled) for disabled, enabled in pairs
    )
    scrape = _obs_scrape_and_artifacts()
    results = {
        "partitions": OBS_PARTITIONS,
        "records_per_trial": OBS_PARTITIONS * OBS_BATCHES * OBS_BATCH,
        "payload_bytes": OBS_PAYLOAD,
        "disabled_rates": [round(d, 1) for d, _ in pairs],
        "enabled_rates": [round(e, 1) for _, e in pairs],
        "observability_overhead": round(overhead, 4),
        **scrape,
        "fast_mode": FAST,
    }
    OBSERVABILITY_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    OBSERVABILITY_ARTIFACT.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _check_observability(results: dict) -> list:
    failures = []
    if results["observability_overhead"] > MAX_OBSERVABILITY_OVERHEAD:
        failures.append(
            f"full instrumentation cut durable acks=all produce "
            f"throughput by {results['observability_overhead']:.1%} "
            f"(allowed {MAX_OBSERVABILITY_OVERHEAD:.0%} on the cleanest "
            f"pair)"
        )
    if results["scrape_shards"] < OBS_SCRAPE_SHARDS:
        failures.append(
            f"aggregator scraped {results['scrape_shards']} of "
            f"{OBS_SCRAPE_SHARDS} shards"
        )
    if results["scrape_ms"] > MAX_SCRAPE_MS:
        failures.append(
            f"one {OBS_SCRAPE_SHARDS}-shard aggregator scrape took "
            f"{results['scrape_ms']}ms (allowed {MAX_SCRAPE_MS}ms)"
        )
    if results["journal_events"] <= 0:
        failures.append("the exported events.jsonl artifact is empty")
    return failures


@pytest.mark.bench
def test_observability_guard():
    results = run_observability_guard()
    failures = _check_observability(results)
    assert not failures, "; ".join(failures) + f"; see {OBSERVABILITY_ARTIFACT}"


def main() -> int:
    status = 0
    results = run_guard()
    for key, value in results.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {ARTIFACT}]")
    if results["batched_speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: batched produce speedup {results['batched_speedup']}x "
            f"< required {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        status = 1
    else:
        print(f"OK: batched speedup {results['batched_speedup']}x >= {MIN_SPEEDUP}x")

    robust = run_robustness_guard()
    for key, value in robust.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {ROBUSTNESS_ARTIFACT}]")
    robust_failures = _check_robustness(robust)
    for failure in robust_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    if not robust_failures:
        print(
            f"OK: idempotence overhead {robust['idempotence_overhead']:.1%} "
            f"<= {MAX_IDEMPOTENCE_OVERHEAD:.0%}, lossy delivery "
            f"{robust['lossy_delivery_rate']:.2%}"
        )

    pipe = run_pipeline_guard()
    for key, value in pipe.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {PIPELINE_ARTIFACT}]")
    if pipe["batched_speedup"] < MIN_PIPELINE_SPEEDUP:
        print(
            f"FAIL: batched consume speedup {pipe['batched_speedup']}x "
            f"< required {MIN_PIPELINE_SPEEDUP}x",
            file=sys.stderr,
        )
        status = 1
    else:
        print(
            f"OK: batched consume speedup {pipe['batched_speedup']}x "
            f">= {MIN_PIPELINE_SPEEDUP}x"
        )

    prefetch = run_prefetch_guard()
    for key, value in prefetch.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {PREFETCH_ARTIFACT}]")
    prefetch_failures = _check_prefetch(prefetch)
    for failure in prefetch_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    if not prefetch_failures:
        print(
            f"OK: prefetch WAN speedup {prefetch['wan_speedup']}x "
            f">= {MIN_PREFETCH_WAN_SPEEDUP}x, in-proc regression "
            f"{prefetch['inproc_regression']:.1%} "
            f"<= {MAX_PREFETCH_INPROC_REGRESSION:.0%}"
        )

    telemetry = run_telemetry_guard()
    for key, value in telemetry.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {TELEMETRY_ARTIFACT}]")
    telemetry_failures = _check_telemetry(telemetry)
    for failure in telemetry_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    if not telemetry_failures:
        print(
            f"OK: disabled-telemetry overhead "
            f"{telemetry['disabled_overhead']:.1%} <= "
            f"{MAX_TELEMETRY_OFF_OVERHEAD:.0%}, enabled "
            f"{telemetry['enabled_overhead']:.1%} <= "
            f"{MAX_TELEMETRY_ON_OVERHEAD:.0%}"
        )

    reactor = run_reactor_guard()
    for key, value in reactor.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {REACTOR_ARTIFACT}]")
    reactor_failures = _check_reactor(reactor)
    for failure in reactor_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    if not reactor_failures:
        print(
            f"OK: reactor served {reactor['connections']} connections with "
            f"{reactor['threads_added']} extra threads, in-proc regression "
            f"{reactor['inproc_regression']:.1%}, WAN regression "
            f"{reactor['wan_regression']:.1%}"
        )

    multicore = run_multicore_guard()
    for key, value in multicore.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {MULTICORE_ARTIFACT}]")
    multicore_failures = _check_multicore(multicore)
    for failure in multicore_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    if not multicore_failures:
        gate = "gated" if multicore["gated"] else "ungated (<4 cores)"
        print(
            f"OK: 4-shard speedup {multicore['four_shard_speedup']}x "
            f"({gate}), single-shard regression "
            f"{multicore['single_shard_regression']:.1%} <= "
            f"{MAX_SINGLE_SHARD_REGRESSION:.0%}"
        )

    replication = run_replication_guard()
    for key, value in replication.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {REPLICATION_ARTIFACT}]")
    replication_failures = _check_replication(replication)
    for failure in replication_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    if not replication_failures:
        print(
            f"OK: replication overhead "
            f"{replication['replication_overhead']:.1%} <= "
            f"{MAX_REPLICATION_OVERHEAD:.0%}, failover MTTR "
            f"{replication['failover_mttr_s']}s <= {MAX_FAILOVER_MTTR_S}s, "
            f"zero acked loss"
        )

    storage = run_storage_guard()
    for key, value in storage.items():
        print(f"{key:>24}: {value}")
    print(f"[artifact: {STORAGE_ARTIFACT}]")
    storage_failures = _check_storage(storage)
    for failure in storage_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    if not storage_failures:
        print(
            f"OK: durable produce at "
            f"{1.0 - storage['durable_produce_regression']:.2f}x in-memory "
            f"(>= {MIN_DURABLE_RATIO}x), mmap fetch regression "
            f"{storage['mmap_fetch_regression']:.1%} <= "
            f"{MAX_MMAP_FETCH_REGRESSION:.0%}, SIGKILL recovery replayed "
            f"{storage['recovered_records']} acked records from disk, "
            f"boot scanned {storage['recovery_scan_bytes']} bytes of a "
            f"{storage['log_bytes']}-byte log"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
