"""Ablation — energy accounting across placements (paper future work).

The paper's future work names energy consumption as a next investigation
axis. The simulator accounts busy-time energy per station (RasPi-class
devices at ~4 W, busy cloud cores at ~95 W), so placements can be
compared by joules per processed message as well as by throughput.

Expected shape: edge processing costs far fewer joules per message
(low-power devices) at far lower throughput — the classic energy/latency
trade of the continuum.
"""

import pytest

from harness import print_table, processor_for
from repro.netem import LAN, TRANSATLANTIC
from repro.sim import SimConfig, SimulatedPipeline, StageCostModel, calibrate_model_cost

POINTS = 1000
MESSAGES = 64
DEVICES = 4
#: Edge devices are slower per block but draw a fraction of the power.
EDGE_SLOWDOWN = 8.0


def _sweep():
    cloud_cost = calibrate_model_cost(processor_for("kmeans"), points=POINTS, reps=3)
    results = {}
    rows = []
    scenarios = {
        # Cloud-centric: transfer raw blocks, burn cloud cores.
        "cloud": dict(
            uplink=TRANSATLANTIC,
            process_cost=cloud_cost,
            cloud_power_watts=95.0,
        ),
        # Edge-centric: no transfer, burn device cores (slower, cheaper).
        "edge": dict(
            uplink=LAN,
            process_cost=StageCostModel("kmeans-edge", cloud_cost.mean_s * EDGE_SLOWDOWN),
            cloud_power_watts=4.0,  # the "consumers" stand in for devices
        ),
    }
    for name, opts in scenarios.items():
        cfg = SimConfig(
            num_devices=DEVICES,
            messages_per_device=MESSAGES,
            points=POINTS,
            uplink=opts["uplink"],
            process_cost=opts["process_cost"],
            cloud_power_watts=opts["cloud_power_watts"],
            seed=5,
        )
        result = SimulatedPipeline(cfg).run()
        results[name] = result
        joules_per_msg = result.energy_joules["total_joules"] / result.report.messages
        rows.append(
            (
                name,
                result.report.row()["msgs/s"],
                round(result.energy_joules["total_joules"], 1),
                round(joules_per_msg, 3),
            )
        )
    print_table(
        "Ablation — energy by placement (k-means, 1,000-point blocks)",
        ["placement", "msgs/s", "total_J", "J/msg"],
        rows,
    )
    return results


def test_energy_latency_tradeoff(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    def joules_per_msg(name):
        r = results[name]
        return r.energy_joules["total_joules"] / r.report.messages

    def rate(name):
        return results[name].report.throughput_msgs_s

    # The trade: cloud is faster, edge is cheaper per message.
    assert rate("cloud") != rate("edge")
    assert joules_per_msg("edge") < joules_per_msg("cloud")
    # Busy-time energy scales with power x service time: the 95 W cloud
    # at 1x time vs 4 W devices at 8x time → ~3x advantage for the edge.
    assert joules_per_msg("cloud") / joules_per_msg("edge") > 1.5
