"""Section III infrastructure table — resource classes and acquisition.

Paper: "we use the Leibniz Supercomputing Center (LRZ) und XSEDE
Jetstream clouds and different VM types: 4 core/18 GB (medium),
10 cores/44 GB (large) (LRZ) and 6 cores/16 GB (medium) (Jetstream)";
edge devices are 1-core/4-GB Raspberry-Pi-class.

This bench reproduces the table from the pilot plugins' catalogues and
measures the emulated acquisition state machine for each resource class.
"""

import time

import pytest

from harness import print_table
from repro import PilotComputeService, PilotDescription, PilotState, ResourceSpec
from repro.pilot.plugins.cloud_vm import DEFAULT_CATALOG
from repro.pilot.plugins.ssh_edge import RASPBERRY_PI


def _acquire_all():
    """Acquire one pilot of each class; returns per-class timings."""
    service = PilotComputeService(time_scale=1e-4)  # emulated delays, scaled
    rows = []
    try:
        descriptions = {
            "edge (RasPi via SSH)": PilotDescription(
                resource="ssh", site="edge", nodes=2, node_spec=RASPBERRY_PI
            ),
            "lrz.medium": PilotDescription(
                resource="cloud", site="lrz", instance_type="lrz.medium"
            ),
            "lrz.large": PilotDescription(
                resource="cloud", site="lrz", instance_type="lrz.large"
            ),
            "jetstream.medium": PilotDescription(
                resource="cloud", site="jetstream", instance_type="jetstream.medium"
            ),
            "hpc (4 nodes)": PilotDescription(
                resource="hpc", site="hpc", nodes=4,
                node_spec=ResourceSpec(cores=24, memory_gb=96),
            ),
            "serverless (10 slots)": PilotDescription(
                resource="serverless", site="lrz", nodes=10,
                node_spec=ResourceSpec(cores=1, memory_gb=2),
            ),
        }
        pilots = {}
        t0 = time.monotonic()
        for name, desc in descriptions.items():
            pilots[name] = (service.submit_pilot(desc), time.monotonic())
        for name, (pilot, submitted) in pilots.items():
            ok = pilot.wait(PilotState.RUNNING, timeout=30)
            assert ok, f"{name}: {pilot.state} {pilot.error}"
            spec = pilot.cluster.worker_resources
            rows.append(
                (
                    name,
                    pilot.description.nodes,
                    spec.cores,
                    spec.memory_gb,
                    round((time.monotonic() - submitted) * 1e3, 1),
                )
            )
        return rows, service
    except Exception:
        service.close()
        raise


def test_infrastructure_table(benchmark):
    rows, service = benchmark.pedantic(_acquire_all, rounds=1, iterations=1)
    try:
        print_table(
            "Infrastructure (paper section III) — acquired resource classes",
            ["resource class", "nodes", "cores/node", "GB/node", "acquire_ms (scaled)"],
            rows,
        )
        by_name = {r[0]: r for r in rows}
        # The paper's exact VM classes.
        assert by_name["lrz.medium"][2:4] == (4, 18)
        assert by_name["lrz.large"][2:4] == (10, 44)
        assert by_name["jetstream.medium"][2:4] == (6, 16)
        assert by_name["edge (RasPi via SSH)"][2:4] == (1, 4)
        # Catalogue completeness.
        assert set(DEFAULT_CATALOG) == {"lrz.medium", "lrz.large", "jetstream.medium"}
    finally:
        service.close()
