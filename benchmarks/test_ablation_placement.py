"""Ablation — deployment placement across link profiles (section II-D).

The paper's discussion argues that bandwidth-bound geographic scenarios
"would benefit from a hybrid edge-to-cloud deployment, e.g., by adding a
data compression step before the data transfer". This ablation
quantifies that: for each link profile we simulate cloud-centric (raw),
hybrid (4x mean-pool compression at the edge) and edge-centric
(process on-device, ship results) placements of the k-means workload,
and cross-checks the CostBasedPlacement policy's choice against the
measured winner.
"""

import pytest

from harness import print_table, processor_for
from repro import ContinuumTopology, CostBasedPlacement
from repro.netem import LAN, REGIONAL_WAN, TRANSATLANTIC
from repro.sim import SimConfig, SimulatedPipeline, StageCostModel, calibrate_model_cost, calibrate_produce_cost

POINTS = 10_000
MESSAGES = 64
DEVICES = 4
COMPRESSION = 4
#: Emulated edge devices are ~8x slower than the LRZ large VM per block.
EDGE_SLOWDOWN = 8.0

LINKS = {"lan": LAN, "regional-wan": REGIONAL_WAN, "transatlantic": TRANSATLANTIC}


def _simulate(uplink, points, process_cost, produce_cost, consumers=DEVICES):
    cfg = SimConfig(
        num_devices=DEVICES,
        messages_per_device=MESSAGES,
        points=points,
        uplink=uplink,
        produce_cost=produce_cost,
        process_cost=process_cost,
        num_consumers=consumers,
        seed=3,
    )
    return SimulatedPipeline(cfg).run()


def _sweep():
    produce = calibrate_produce_cost(points=POINTS, reps=3)
    cloud_cost = calibrate_model_cost(processor_for("kmeans"), points=POINTS, reps=3)
    edge_cost = StageCostModel("kmeans-on-edge", cloud_cost.mean_s * EDGE_SLOWDOWN)
    results = {}
    rows = []
    for link_name, profile in LINKS.items():
        # Cloud-centric: raw blocks cross the link, cloud does the work.
        cloud = _simulate(profile, POINTS, cloud_cost, produce)
        # Hybrid: compressed blocks cross, cloud does the work.
        hybrid = _simulate(profile, POINTS // COMPRESSION, cloud_cost, produce)
        # Edge-centric: only tiny results cross; devices do the work
        # (modelled as the processing stage running at edge speed with
        # one server per device and a negligible transfer).
        edge = _simulate(LAN, 1, edge_cost, produce, consumers=DEVICES)
        results[link_name] = {"cloud": cloud, "hybrid": hybrid, "edge": edge}
        for placement, res in results[link_name].items():
            rows.append(
                (link_name, placement, res.report.row()["msgs/s"],
                 round(res.report.latency_p50_s, 3), res.bottleneck["bottleneck"])
            )
    print_table(
        "Ablation — placement x link profile (k-means, 10,000-point blocks)",
        ["link", "placement", "msgs/s", "lat_p50_s", "bottleneck"],
        rows,
    )
    return results, produce, cloud_cost


def test_hybrid_wins_on_bandwidth_bound_links(benchmark):
    results, produce, cloud_cost = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    def rate(link, placement):
        return results[link][placement].report.throughput_msgs_s

    # On the LAN, compressing at the edge buys nothing fundamental —
    # cloud-centric is already compute/produce-bound.
    assert rate("lan", "cloud") > rate("transatlantic", "cloud") * 2
    # On the transatlantic link, hybrid (compressed) beats raw by ~the
    # compression factor, the paper's recommendation.
    assert rate("transatlantic", "hybrid") > rate("transatlantic", "cloud") * 2

    # The cost-based policy agrees with the measured transatlantic winner.
    topo = ContinuumTopology(time_scale=0.0)
    topo.add_site("jetstream", tier="cloud")
    topo.add_site("lrz", tier="cloud")
    topo.connect("jetstream", "lrz", TRANSATLANTIC)
    decision = CostBasedPlacement(edge_preprocess_s=produce.mean_s).decide(
        message_bytes=POINTS * 32 * 8,
        edge_site="jetstream",
        cloud_site="lrz",
        topology=topo,
        edge_compute_s=cloud_cost.mean_s * EDGE_SLOWDOWN,
        cloud_compute_s=cloud_cost.mean_s,
        compression_ratio=1.0 / COMPRESSION,
    )
    measured = {
        "cloud-centric": rate("transatlantic", "cloud"),
        "hybrid": rate("transatlantic", "hybrid"),
        "edge-centric": rate("transatlantic", "edge"),
    }
    winner = max(measured, key=measured.get)
    decided = {
        ("cloud", False): "cloud-centric",
        ("cloud", True): "hybrid",
        ("edge", True): "edge-centric",
    }[(decision.processing_tier, decision.edge_preprocess)]
    print(f"\nmeasured winner: {winner}; cost-based policy chose: {decided}")
    print(f"policy rationale: {decision.rationale}")
    # The policy must not pick the measured loser.
    loser = min(measured, key=measured.get)
    assert decided != loser
