"""Supporting microbenchmark — broker ingest vs consumer drain rates.

Fig. 2's diagnostic observation: "for four partitions, it is apparent
that the Kafka broker can process more data than the consuming
processing tasks in the cloud". This bench measures the broker's raw
produce and fetch rates per partition count, independent of any
processing, so that the pipeline throughputs in fig2/fig3 can be
compared against the broker's ceiling.

Two fast-path comparisons ride along:

- batched vs single-record produce (``Producer.send_many`` stamps a
  whole batch under one partition-lock acquisition) — the batched path
  must be at least 3x the per-record path at the paper's 256 KB point;
- local vs remote wire: the batched remote ops move payloads as
  length-prefixed binary frames (one socket round-trip per batch, no
  base64 inflation), versus one JSON+base64 round-trip per record.
"""

import time

import numpy as np
import pytest

from harness import print_table
from repro.broker import Broker, Consumer, Producer
from repro.broker.remote import BrokerServer, RemoteBroker
from repro.data import encode_block

MESSAGES = 256
POINTS = 1000
BATCH = 64
#: Remote runs push real bytes through a socket; keep them smaller.
REMOTE_MESSAGES = 64


def _producer_rate(partitions: int, payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("bench", partitions)
    producer = Producer(broker)
    t0 = time.perf_counter()
    for i in range(MESSAGES):
        producer.send("bench", payload, partition=i % partitions)
    elapsed = time.perf_counter() - t0
    return MESSAGES * len(payload) / elapsed / 1e6


def _producer_rate_batched(partitions: int, payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("bench", partitions)
    producer = Producer(broker)
    per_partition = MESSAGES // partitions
    batches = [
        (p, [payload] * min(BATCH, per_partition - start))
        for p in range(partitions)
        for start in range(0, per_partition, BATCH)
    ]
    t0 = time.perf_counter()
    for partition, batch in batches:
        producer.send_many("bench", batch, partition=partition)
    elapsed = time.perf_counter() - t0
    return MESSAGES * len(payload) / elapsed / 1e6


def _consumer_rate(partitions: int, payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("bench", partitions)
    producer = Producer(broker)
    for p in range(partitions):
        producer.send_many(
            "bench", [payload] * (MESSAGES // partitions), partition=p
        )
    consumer = Consumer(broker)
    consumer.assign([("bench", p) for p in range(partitions)])
    t0 = time.perf_counter()
    got = 0
    while got < MESSAGES:
        got += len(consumer.poll(max_records=64))
    elapsed = time.perf_counter() - t0
    return MESSAGES * len(payload) / elapsed / 1e6


def _remote_rates(payload: bytes) -> tuple[float, float, float]:
    """(per-record append, batched append, batched fetch) MB/s over TCP."""
    with BrokerServer() as server:
        with RemoteBroker(server.host, server.port) as remote:
            remote.create_topic("bench", 1)
            producer = Producer(remote)
            t0 = time.perf_counter()
            for _ in range(REMOTE_MESSAGES):
                producer.send("bench", payload, partition=0)
            single = REMOTE_MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6

            t0 = time.perf_counter()
            for start in range(0, REMOTE_MESSAGES, BATCH):
                producer.send_many(
                    "bench",
                    [payload] * min(BATCH, REMOTE_MESSAGES - start),
                    partition=0,
                )
            batched = REMOTE_MESSAGES * len(payload) / (time.perf_counter() - t0) / 1e6

            consumer = Consumer(remote)
            consumer.assign([("bench", 0)])
            total = 2 * REMOTE_MESSAGES
            t0 = time.perf_counter()
            got = 0
            while got < total:
                got += len(consumer.poll(max_records=64))
            fetch = total * len(payload) / (time.perf_counter() - t0) / 1e6
    return single, batched, fetch


def _best_of(fn, *args, rounds: int = 3) -> float:
    """Best-of-N rate: microbench runs are tiny, warmup/jitter dominate."""
    return max(fn(*args) for _ in range(rounds))


def _sweep():
    payload = encode_block(np.random.default_rng(0).normal(size=(POINTS, 32)))
    rows = []
    rates = {}
    for partitions in (1, 2, 4):
        p_rate = _best_of(_producer_rate, partitions, payload)
        b_rate = _best_of(_producer_rate_batched, partitions, payload)
        c_rate = _best_of(_consumer_rate, partitions, payload)
        rates[partitions] = (p_rate, b_rate, c_rate)
        rows.append(
            (
                partitions,
                round(p_rate, 1),
                round(b_rate, 1),
                round(b_rate / p_rate, 2),
                round(c_rate, 1),
            )
        )
    print_table(
        f"Broker micro — raw rates, {MESSAGES} x {len(payload)/1e3:.0f} KB messages",
        ["partitions", "produce MB/s", f"batch({BATCH}) MB/s", "speedup", "fetch MB/s"],
        rows,
    )
    r_single, r_batched, r_fetch = _remote_rates(payload)
    print_table(
        f"Remote wire — {REMOTE_MESSAGES} x {len(payload)/1e3:.0f} KB over TCP loopback",
        ["append (json+b64) MB/s", "append_batch (binary) MB/s", "speedup", "fetch_batch MB/s"],
        [
            (
                round(r_single, 1),
                round(r_batched, 1),
                round(r_batched / r_single, 2),
                round(r_fetch, 1),
            )
        ],
    )
    rates["remote"] = (r_single, r_batched, r_fetch)
    return rates


def test_broker_is_not_the_bottleneck(benchmark):
    rates = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    remote_single, remote_batched, remote_fetch = rates.pop("remote")
    # The broker's raw ingest rate must exceed what any model-processing
    # pipeline achieves end to end (hundreds of MB/s vs tens) — this is
    # the structural reason the consuming tasks, not the broker, limit
    # Fig. 2's four-partition scenario.
    for partitions, (p_rate, b_rate, c_rate) in rates.items():
        assert p_rate > 100.0, f"produce rate too low at {partitions} partitions"
        assert c_rate > 100.0, f"fetch rate too low at {partitions} partitions"
        # The batch fast path amortises lock/notify/ack per record; at
        # the paper's 256 KB point it must beat per-record produce 3x.
        assert b_rate >= 3.0 * p_rate, (
            f"batched produce only {b_rate / p_rate:.2f}x the single-record "
            f"path at {partitions} partitions"
        )
    # Binary batched frames must beat per-record JSON+base64 on the wire.
    assert remote_batched > remote_single, (
        f"remote batched append ({remote_batched:.0f} MB/s) not faster than "
        f"per-record JSON append ({remote_single:.0f} MB/s)"
    )
    assert remote_fetch > 0
