"""Supporting microbenchmark — broker ingest vs consumer drain rates.

Fig. 2's diagnostic observation: "for four partitions, it is apparent
that the Kafka broker can process more data than the consuming
processing tasks in the cloud". This bench measures the broker's raw
produce and fetch rates per partition count, independent of any
processing, so that the pipeline throughputs in fig2/fig3 can be
compared against the broker's ceiling.
"""

import time

import numpy as np
import pytest

from harness import print_table
from repro.broker import Broker, Consumer, Producer
from repro.data import encode_block

MESSAGES = 256
POINTS = 1000


def _producer_rate(partitions: int, payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("bench", partitions)
    producer = Producer(broker)
    t0 = time.perf_counter()
    for i in range(MESSAGES):
        producer.send("bench", payload, partition=i % partitions)
    elapsed = time.perf_counter() - t0
    return MESSAGES * len(payload) / elapsed / 1e6


def _consumer_rate(partitions: int, payload: bytes) -> float:
    broker = Broker()
    broker.create_topic("bench", partitions)
    producer = Producer(broker)
    for i in range(MESSAGES):
        producer.send("bench", payload, partition=i % partitions)
    consumer = Consumer(broker)
    consumer.assign([("bench", p) for p in range(partitions)])
    t0 = time.perf_counter()
    got = 0
    while got < MESSAGES:
        got += len(consumer.poll(max_records=64))
    elapsed = time.perf_counter() - t0
    return MESSAGES * len(payload) / elapsed / 1e6


def _sweep():
    payload = encode_block(np.random.default_rng(0).normal(size=(POINTS, 32)))
    rows = []
    rates = {}
    for partitions in (1, 2, 4):
        p_rate = _producer_rate(partitions, payload)
        c_rate = _consumer_rate(partitions, payload)
        rates[partitions] = (p_rate, c_rate)
        rows.append((partitions, round(p_rate, 1), round(c_rate, 1)))
    print_table(
        f"Broker micro — raw rates, {MESSAGES} x {len(payload)/1e3:.0f} KB messages",
        ["partitions", "produce MB/s", "fetch MB/s"],
        rows,
    )
    return rates


def test_broker_is_not_the_bottleneck(benchmark):
    rates = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # The broker's raw ingest rate must exceed what any model-processing
    # pipeline achieves end to end (hundreds of MB/s vs tens) — this is
    # the structural reason the consuming tasks, not the broker, limit
    # Fig. 2's four-partition scenario.
    for partitions, (p_rate, c_rate) in rates.items():
        assert p_rate > 100.0, f"produce rate too low at {partitions} partitions"
        assert c_rate > 100.0, f"fetch rate too low at {partitions} partitions"
