"""Figure 3 (geographic columns) — transatlantic deployment.

Paper setup: data source on Jetstream/XSEDE (US), processing at LRZ
(Europe); measured link 140-160 ms RTT, 60-100 Mbit/s; four partitions.

The sweep runs in the discrete-event simulator with per-model compute
costs calibrated from the real implementations at bench start — the
paper's wall-clock-minutes runs complete in virtual time.

Expected shape (asserted):
- baseline and k-means become network-bound: geo throughput collapses to
  the link bandwidth (60-100 Mbit/s = 7.5-12.5 MB/s),
- isolation forest and auto-encoder stay compute-bound: "the network is
  not the bottleneck for the compute-intensive models".
"""

import pytest

from harness import SIM_MESSAGES, print_table, processor_for
from repro.netem import LAN, TRANSATLANTIC
from repro.sim import SimConfig, SimulatedPipeline, calibrate_model_cost, calibrate_produce_cost

POINTS = 10_000
DEVICES = 4
MODELS = ("baseline", "kmeans", "iforest", "autoencoder")


def _calibrate():
    produce = calibrate_produce_cost(points=POINTS, reps=3)
    costs = {}
    for model in MODELS:
        costs[model] = calibrate_model_cost(processor_for(model), points=POINTS, reps=3)
    return produce, costs


def _sweep():
    produce, costs = _calibrate()
    results = {}
    rows = []
    for model in MODELS:
        # The paper's ML runs train ONE model per pipeline ("the model is
        # updated based on the incoming data; model updates are managed
        # via the parameter service"), so model updates serialise on a
        # single trainer; only the model-free baseline consumes all four
        # partitions in parallel.
        consumers = DEVICES if model == "baseline" else 1
        for scenario, uplink in (("local", LAN), ("geo", TRANSATLANTIC)):
            cfg = SimConfig(
                num_devices=DEVICES,
                messages_per_device=SIM_MESSAGES,
                points=POINTS,
                uplink=uplink,
                num_consumers=consumers,
                produce_cost=produce,
                process_cost=costs[model],
                seed=11,
            )
            result = SimulatedPipeline(cfg).run()
            results[(model, scenario)] = result
            r = result.report.row()
            rows.append(
                (model, scenario, r["MB/s"], r["msgs/s"],
                 round(r["lat_p50_ms"] / 1e3, 2), result.bottleneck["bottleneck"])
            )
    print_table(
        f"Fig. 3 — geographic distribution (Jetstream -> LRZ, {DEVICES} partitions, "
        f"{SIM_MESSAGES} msgs/device, 10,000-point messages)",
        ["model", "scenario", "MB/s", "msgs/s", "lat_p50_s", "bottleneck"],
        rows,
        artifact="fig3_geo",
    )
    return results


def test_fig3_geo_shape(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    def mbps(model, scenario):
        return results[(model, scenario)].report.throughput_mb_s

    # Baseline and k-means collapse onto the transatlantic bandwidth
    # (60-100 Mbit/s = 7.5-12.5 MB/s).
    for model in ("baseline", "kmeans"):
        assert mbps(model, "geo") < 13.0
        assert mbps(model, "geo") > 5.0
        # And the local deployment is dramatically faster.
        assert mbps(model, "local") > mbps(model, "geo") * 3

    # Compute-intensive models: the network is NOT the bottleneck —
    # geo throughput stays close to local throughput.
    for model in ("iforest", "autoencoder"):
        assert mbps(model, "geo") > mbps(model, "local") * 0.5
        assert results[(model, "geo")].bottleneck["bottleneck"] == "processing"
