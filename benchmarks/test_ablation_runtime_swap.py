"""Ablation — runtime function replacement (section II-D).

"The processing functions can be programmatically replaced at runtime
(without the need to allocate a new pilot), allowing, e.g., the
exchanging [of] low vs high fidelity models."

This bench runs one live pipeline that starts with the auto-encoder
(high fidelity) and hot-swaps to k-means (low fidelity) mid-stream. It
measures per-message processing latency before and after the swap and
verifies the swap itself costs no pipeline downtime (no gap larger than
a normal inter-message interval).
"""

import numpy as np
import pytest

from harness import acquire_pilots, print_table
from repro import (
    EdgeToCloudPipeline,
    PilotComputeService,
    PipelineConfig,
    make_block_producer,
    make_model_processor,
)
from repro.ml import AutoEncoder, StreamingKMeans

POINTS = 2000
MESSAGES = 30


def _run_with_swap():
    service = PilotComputeService(time_scale=0.0)
    try:
        edge, cloud = acquire_pilots(2, service)
        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(points=POINTS, features=32),
            process_cloud_function_handler=make_model_processor(
                lambda: AutoEncoder(epochs=10)
            ),
            config=PipelineConfig(
                num_devices=2, messages_per_device=MESSAGES,
                produce_interval=0.001, max_duration=600.0,
            ),
        )
        handle = pipeline.run(wait=False)
        assert handle.wait_for_processed(10, timeout=300)
        pipeline.replace_cloud_function(
            make_model_processor(lambda: StreamingKMeans(n_clusters=25))
        )
        result = handle.join()
        assert result.completed, result.errors
        return pipeline, result
    finally:
        service.close()


def test_runtime_model_swap(benchmark):
    pipeline, result = benchmark.pedantic(_run_with_swap, rounds=1, iterations=1)

    by_model: dict = {}
    for r in result.results:
        by_model.setdefault(r["model"], 0)
        by_model[r["model"]] += 1
    assert by_model.get("AutoEncoder", 0) > 0, "high-fidelity phase missing"
    assert by_model.get("StreamingKMeans", 0) > 0, "swap never took effect"

    # Per-message processing times before vs after the swap.
    traces = sorted(
        pipeline.collector.traces(complete_only=True),
        key=lambda t: t.at("process_start"),
    )
    proc = [t.stage_latency("process_start", "process_end") for t in traces]
    n_ae = by_model["AutoEncoder"]
    ae_mean = float(np.mean(proc[:n_ae]))
    km_mean = float(np.mean(proc[n_ae:]))
    print_table(
        "Ablation — runtime model swap (auto-encoder -> k-means)",
        ["phase", "messages", "proc_mean_ms"],
        [
            ("auto-encoder", by_model["AutoEncoder"], round(ae_mean * 1e3, 2)),
            ("kmeans", by_model["StreamingKMeans"], round(km_mean * 1e3, 2)),
        ],
    )
    # The low-fidelity model must be substantially cheaper per message.
    assert km_mean < ae_mean / 3

    # No downtime: the stream never stalls for longer than a generous
    # multiple of the heavy model's own processing time.
    starts = [t.at("process_start") for t in traces]
    gaps = np.diff(sorted(starts))
    assert gaps.max() < max(10 * ae_mean, 1.0)
