#!/usr/bin/env python3
"""Real-time visual inspection across the continuum.

The paper's industrial motivation (its reference [3]) is a cloud
pipeline for "real-time visual inspection using fast streaming
high-definition images". This example rebuilds that scenario on
Pilot-Edge:

- *cameras* (edge devices) emit frames as feature blocks — each row is
  one image patch's feature vector (brightness/texture statistics, the
  kind a lightweight on-camera extractor produces),
- the *edge function* is an event trigger: only frames containing
  patches that deviate from calibration are forwarded (quiet production
  lines send almost nothing),
- the *cloud function* scores forwarded frames with a streaming
  isolation forest and flags defect patches,
- a :class:`DataTrigger` on a separate alerts topic fires a task per
  defect batch (the "notify the line operator" hook).

Run:  python examples/visual_inspection.py
"""

import threading

import numpy as np

from repro import (
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_model_processor,
)
from repro.core import HybridPlacement, make_threshold_filter
from repro.broker import JsonSerde, Producer
from repro.core.triggers import DataTrigger
from repro.ml import IsolationForest

CAMERAS = 3
FRAMES_PER_CAMERA = 40
PATCHES = 64          # patches per frame
FEATURES = 12         # per-patch statistics
DEFECT_RATE = 0.15    # fraction of frames containing a defect


def make_camera_producer():
    """Per-camera frame source; most frames are clean."""
    rngs: dict = {}

    def produce_edge(context):
        device = context.get("pilot_edge.device_id", "cam")
        rng = rngs.setdefault(device, np.random.default_rng(hash(device) % 2**31))
        frame = rng.normal(0.0, 1.0, size=(PATCHES, FEATURES))
        if rng.random() < DEFECT_RATE:
            # A defect: a few patches with a strong signature in feature 0.
            idx = rng.integers(0, PATCHES, size=3)
            frame[idx, 0] += rng.uniform(8.0, 12.0)
        return frame

    return produce_edge


def main() -> None:
    pcs = PilotComputeService(time_scale=0.0)
    try:
        cameras = pcs.submit_pilot(
            PilotDescription(resource="ssh", site="factory", nodes=CAMERAS,
                             node_spec=ResourceSpec(cores=1, memory_gb=4))
        )
        cloud = pcs.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
        )
        assert pcs.wait_all(timeout=30)

        # Cloud function: score with iforest, publish defect alerts.
        score = make_model_processor(lambda: IsolationForest(n_estimators=50))
        alerts: list = []
        alert_lock = threading.Lock()

        def inspect(context=None, data=None):
            result = score(context, data)
            if result["outliers"] > 0:
                with alert_lock:
                    alerts.append(result)
            return result

        pipeline = EdgeToCloudPipeline(
            pilot_edge=cameras,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_camera_producer(),
            # Event-triggered transmission: forward only frames with any
            # patch whose defect feature exceeds the calibration band.
            process_edge_function_handler=make_threshold_filter(
                feature=0, threshold=5.0
            ),
            process_cloud_function_handler=inspect,
            # Hybrid placement activates the edge pre-processing stage.
            placement=HybridPlacement(),
            config=PipelineConfig(
                num_devices=CAMERAS,
                messages_per_device=FRAMES_PER_CAMERA,
                max_duration=120.0,
            ),
        )

        # Alert fan-out: a DataTrigger fires a task per defect batch.
        pipeline.broker.create_topic("defect-alerts", 1)
        alert_producer = Producer(pipeline.broker, serde=JsonSerde())
        notified: list = []

        def notify(records):
            notified.extend(records)

        trigger = DataTrigger(
            pipeline.broker, "defect-alerts", cloud.cluster, notify,
            poll_timeout=0.05,
        ).start()

        result = pipeline.run()

        # Publish one alert per defect frame (post-run for determinism).
        for alert in alerts:
            alert_producer.send("defect-alerts", alert, partition=0)
        trigger.wait_for_invocations(1, timeout=10)
        trigger.stop()

        total_frames = CAMERAS * FRAMES_PER_CAMERA
        forwarded = result.report.messages
        absorbed = pipeline.collector.counter("messages_absorbed_at_edge")
        print(f"frames captured:     {total_frames}")
        print(f"forwarded to cloud:  {forwarded} "
              f"({forwarded / total_frames:.0%} — event-triggered transmission)")
        print(f"suppressed at edge:  {int(absorbed)}")
        print(f"defect frames:       {len(alerts)}")
        print(f"operator alerts:     {len(notified)} (via DataTrigger)")
        print(f"bottleneck:          {result.bottleneck['bottleneck']}")
        assert forwarded + absorbed == total_frames
        print("\naccounting verified: every frame was forwarded or suppressed.")
    finally:
        pcs.close()


if __name__ == "__main__":
    main()
