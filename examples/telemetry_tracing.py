#!/usr/bin/env python3
"""Telemetry & tracing: observe a pipeline across the continuum.

Demonstrates the observability stack end to end:

1. a shared ``Tracer`` follows every message from the edge producer
   through the broker to the cloud consumer, one span tree per message,
2. a ``MetricsRegistry`` collects typed instruments (counters, gauges,
   a live-percentile latency histogram) from the pipeline,
3. a background ``TelemetrySampler`` records consumer lag over time and
   exports the series as JSONL,
4. the run report gains lag and span-bottleneck sections.

Run:  python examples/telemetry_tracing.py
"""

import tempfile
from pathlib import Path

from repro import (
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    passthrough_processor,
)
from repro.monitoring import MetricsRegistry, TelemetrySampler, Tracer


def main() -> None:
    # -- acquire resources -------------------------------------------------
    pcs = PilotComputeService(time_scale=0.0)
    pilot_edge = pcs.submit_pilot(
        PilotDescription(
            resource="ssh",
            site="edge-site",
            nodes=2,
            node_spec=ResourceSpec(cores=1, memory_gb=4),
        )
    )
    pilot_cloud = pcs.submit_pilot(
        PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
    )
    if not pcs.wait_all(timeout=30):
        raise SystemExit("pilot acquisition failed")

    # -- wire up the observability stack ----------------------------------
    registry = MetricsRegistry()
    tracer = Tracer("example", sample_rate=1.0)
    sampler = TelemetrySampler(interval_s=0.05, registry=registry)

    pipeline = EdgeToCloudPipeline(
        pilot_edge=pilot_edge,
        pilot_cloud_processing=pilot_cloud,
        produce_function_handler=make_block_producer(points=200, features=8),
        process_cloud_function_handler=passthrough_processor,
        config=PipelineConfig(num_devices=2, messages_per_device=16),
        registry=registry,
        tracer=tracer,
        sampler=sampler,
    )
    result = pipeline.run()
    print(f"completed: {result.completed}, messages: {result.report.messages}")

    # -- one trace per message, spanning all three tiers -------------------
    roots = [
        tracer.span_tree(tid)
        for tid in tracer.trace_ids()
    ]
    message_trees = [
        t for t in roots if t is not None and t["span"].name == "producer.send"
    ]
    sites = set()
    for tree in message_trees:
        stack = [tree]
        while stack:
            node = stack.pop()
            sites.add(node["span"].site)
            stack.extend(node["children"])
    print(f"message traces: {len(message_trees)}, sites touched: {sorted(sites)}")
    spans = result.report.spans
    print(f"slowest span: {spans['slowest']} across {spans['traces']} traces")

    # -- consumer lag over time, back to zero by the end -------------------
    lag = result.report.lag
    print(f"lag peak: {lag['peak']:.0f}, returned to zero: {lag['returned_to_zero']}")

    # -- typed instruments + exports ---------------------------------------
    hist = registry.histogram("pipeline_e2e_latency_s")
    print(
        f"e2e latency: count={hist.count} "
        f"p50={hist.percentile(50) * 1e3:.1f}ms p99={hist.percentile(99) * 1e3:.1f}ms"
    )
    out = Path(tempfile.mkdtemp(prefix="telemetry-"))
    sampler.write_jsonl(out / "telemetry.jsonl")
    (out / "metrics.prom").write_text(registry.to_prometheus())
    lines = (out / "telemetry.jsonl").read_text().strip().splitlines()
    print(f"exported {len(lines)} telemetry samples to {out}")
    print("telemetry accounting verified" if result.completed else "run failed")
    pcs.close()


if __name__ == "__main__":
    main()
