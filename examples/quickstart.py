#!/usr/bin/env python3
"""Quickstart: a minimal Pilot-Edge application.

Mirrors the paper's three-step flow (Fig. 1):

1. acquire edge and cloud resources through the pilot framework,
2. deploy an edge-to-cloud pipeline built from three FaaS functions,
3. read the linked monitoring report.

Run:  python examples/quickstart.py
"""

from repro import (
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    passthrough_processor,
)


def main() -> None:
    # -- step 1: acquire resources via the pilot abstraction --------------
    pcs = PilotComputeService(time_scale=0.0)  # instant emulated acquisition
    pilot_edge = pcs.submit_pilot(
        PilotDescription(
            resource="ssh",              # Raspberry-Pi-class devices over SSH
            site="edge-site",
            nodes=2,                     # two simulated edge devices
            node_spec=ResourceSpec(cores=1, memory_gb=4),
        )
    )
    pilot_cloud = pcs.submit_pilot(
        PilotDescription(
            resource="cloud",
            site="lrz",
            instance_type="lrz.large",   # 10 cores / 44 GB, as in the paper
        )
    )
    if not pcs.wait_all(timeout=30):
        raise SystemExit("pilot acquisition failed")
    print(f"edge pilot:  {pilot_edge}")
    print(f"cloud pilot: {pilot_cloud}")

    # -- step 2: define + run the application -----------------------------
    pipeline = EdgeToCloudPipeline(
        pilot_edge=pilot_edge,
        pilot_cloud_processing=pilot_cloud,
        # produce_edge: synthetic sensor blocks (1,000 points x 32 features)
        produce_function_handler=make_block_producer(points=1000, features=32),
        # process_cloud: the baseline pass-through processor
        process_cloud_function_handler=passthrough_processor,
        config=PipelineConfig(num_devices=2, messages_per_device=32),
    )
    result = pipeline.run()

    # -- step 3: monitoring ------------------------------------------------
    from repro.monitoring.ascii import render_run

    print(f"\ncompleted: {result.completed}")
    print("report:   ", result.report.row())
    print("bottleneck:", result.bottleneck["bottleneck"], "-", result.bottleneck["reason"])
    print("broker:    ", result.broker_stats["topics"])
    print()
    print(render_run(pipeline.collector, title="run timeline"))
    pcs.close()


if __name__ == "__main__":
    main()
