#!/usr/bin/env python3
"""Objective-driven resource planning (paper future work).

The paper envisions Pilot-Edge growing into "a distributed workload
management system that can select, acquire and dynamically scale
resources across the continuum at runtime based on the application's
objectives". This example exercises that planner:

1. calibrate the workload's per-message compute cost from the real
   k-means implementation,
2. ask the planner for plans under three different objectives
   (cheapest / lowest latency / lowest energy),
3. validate the chosen plan in the discrete-event simulator,
4. acquire the planned pilots for real through the pilot service.

Run:  python examples/objective_planning.py
"""

def main() -> None:
    from repro import ContinuumTopology, PilotComputeService, TRANSATLANTIC
    from repro.core import make_model_processor
    from repro.ml import StreamingKMeans
    from repro.planner import (
        ApplicationObjective,
        ResourcePlanner,
        WorkloadProfile,
        validate_plan,
    )
    from repro.sim import calibrate_model_cost

    # -- the continuum ----------------------------------------------------
    topo = ContinuumTopology(time_scale=0.0, seed=0)
    topo.add_site("factory", tier="edge")
    topo.add_site("lrz", tier="cloud")
    topo.connect("factory", "lrz", TRANSATLANTIC)
    planner = ResourcePlanner(topo, edge_site="factory", cloud_site="lrz")

    # -- the workloads (calibrated, not guessed) ----------------------------
    from repro.ml import IsolationForest

    print("calibrating per-message costs from the real models ...")
    kmeans_cost = calibrate_model_cost(
        make_model_processor(StreamingKMeans), points=1000, reps=3
    )
    iforest_cost = calibrate_model_cost(
        make_model_processor(lambda: IsolationForest(n_estimators=100)),
        points=1000, reps=3,
    )
    workloads = {
        "k-means": WorkloadProfile(
            points=1000, rate_msgs_s=12.0, num_devices=4,
            process_cost_s=kmeans_cost.mean_s, edge_slowdown=8.0,
            compression_ratio=0.25,
        ),
        "iforest": WorkloadProfile(
            points=1000, rate_msgs_s=12.0, num_devices=4,
            process_cost_s=iforest_cost.mean_s, edge_slowdown=8.0,
            compression_ratio=0.25,
        ),
    }
    print(f"  k-means: {kmeans_cost.mean_s * 1e3:.1f} ms/msg, "
          f"iforest: {iforest_cost.mean_s * 1e3:.1f} ms/msg on a cloud core\n")

    # -- plans under different objectives -----------------------------------
    objectives = {
        "cheapest": ApplicationObjective(prefer="cost"),
        "lowest latency": ApplicationObjective(prefer="latency"),
        "lowest energy": ApplicationObjective(prefer="energy"),
    }
    chosen = None
    for model_name, workload in workloads.items():
        print(f"--- {model_name} at {workload.rate_msgs_s} msgs/s ---")
        for label, objective in objectives.items():
            plan = planner.plan(workload, objective)
            print(f"{label:<16} {plan.describe()}")
        print()
        if model_name == "k-means":
            chosen = planner.plan(workload, objectives["cheapest"])
            workload_for_validation = workload
    workload = workload_for_validation

    # -- validate the cheapest plan in the simulator -------------------------
    ok, sim = validate_plan(chosen, workload, link_profile=TRANSATLANTIC,
                            messages_per_device=48)
    print(f"\nsimulated validation of the cheapest plan: "
          f"{'PASS' if ok else 'FAIL'} "
          f"({sim.report.throughput_msgs_s:.1f} msgs/s achieved vs "
          f"{workload.rate_msgs_s:.1f} offered)")

    # -- acquire it for real ---------------------------------------------------
    pcs = PilotComputeService(time_scale=0.0)
    try:
        pilots = [pcs.submit_pilot(chosen.edge_pilot)]
        if chosen.cloud_pilot is not None:
            pilots.append(pcs.submit_pilot(chosen.cloud_pilot))
        assert pcs.wait_all(timeout=30)
        print("acquired pilots:")
        for pilot in pilots:
            print(f"  {pilot} -> {pilot.cluster.n_workers} workers")
    finally:
        pcs.close()


if __name__ == "__main__":
    main()
