#!/usr/bin/env python3
"""Federated learning across the continuum (paper future work).

Two geographically separated edge sites (US / EU) each stream their own
sensor data — which never leaves the site — and train local k-means
models. After each round, the sites publish weight updates through the
parameter service (paying the transatlantic link cost for the *weights
only*, not the data) and a coordinator merges them into a global model.

The example reports how much data stayed local versus how many bytes of
model weights crossed the link — the bandwidth/privacy trade federated
learning exists for.

Run:  python examples/federated_learning.py
"""

import numpy as np

from repro import ParameterClient, ParameterServer, TRANSATLANTIC
from repro.data import DataBlockGenerator, GeneratorConfig
from repro.ml import StreamingKMeans, roc_auc_score
from repro.ml.federated import (
    FederatedCoordinator,
    KMeansCoresetAggregator,
    local_kmeans_round,
)
from repro.netem import Link

SITES = ("us-factory", "eu-factory")
ROUNDS = 4
BLOCKS_PER_ROUND = 6
POINTS = 500


def main() -> None:
    server = ParameterServer(name="federation")
    # Each site's parameter traffic crosses the transatlantic link.
    links = {site: Link(TRANSATLANTIC, seed=i, time_scale=0.0) for i, site in enumerate(SITES)}
    clients = {
        site: ParameterClient(server, link=links[site], namespace="fl")
        for site in SITES
    }
    coordinator = FederatedCoordinator(
        ParameterClient(server, namespace="fl"),
        KMeansCoresetAggregator(n_clusters=25, seed=0),
        expected_sites=SITES,
    )

    # Site-local generators: related but not identical processes.
    generators = {
        site: DataBlockGenerator(
            GeneratorConfig(points=POINTS, features=32, clusters=25,
                            outlier_fraction=0.02, seed=100 + i)
        )
        for i, site in enumerate(SITES)
    }
    models = {site: StreamingKMeans(n_clusters=25, seed=i) for i, site in enumerate(SITES)}

    data_bytes_kept_local = 0
    global_weights = None
    for round_no in range(ROUNDS):
        for site in SITES:
            blocks = [generators[site].next_block() for _ in range(BLOCKS_PER_ROUND)]
            data_bytes_kept_local += sum(b.nbytes for b in blocks)
            update = local_kmeans_round(models[site], blocks, global_weights)
            # Publishing the update pays the link cost (weights only).
            clients[site].set(f"fl/update/{site}",
                              {"update": update, "n_samples": None, "round": round_no})
        global_weights = coordinator.aggregate_round()
        print(f"round {round_no + 1}: aggregated "
              f"{global_weights['cluster_centers'].shape[0]} global centres "
              f"(support {int(global_weights['counts'].sum())} samples)")

    # Evaluate the global model on fresh labelled data from both sites.
    global_model = StreamingKMeans(n_clusters=25)
    global_model.set_weights(global_weights)
    aucs = []
    for site in SITES:
        gen = DataBlockGenerator(
            GeneratorConfig(points=2000, features=32, clusters=25,
                            outlier_fraction=0.05,
                            seed=generators[site].config.seed)
        )
        X, y = gen.next_block(with_labels=True)
        aucs.append(roc_auc_score(y, global_model.decision_function(X)))
    weight_bytes = sum(link.bytes_moved for link in links.values())
    print(f"\nglobal model outlier-detection AUC per site: "
          + ", ".join(f"{s}={a:.3f}" for s, a in zip(SITES, aucs)))
    print(f"raw data kept on-site: {data_bytes_kept_local / 1e6:.1f} MB")
    print(f"model weights over the transatlantic link: {weight_bytes / 1e3:.1f} KB "
          f"({weight_bytes / max(data_bytes_kept_local, 1) * 100:.2f}% of the data volume)")


if __name__ == "__main__":
    main()
