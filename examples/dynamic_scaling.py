#!/usr/bin/env python3
"""Runtime dynamism: load peaks, autoscaling and model hot-swap.

Demonstrates the paper's section II-D capabilities on a live pipeline:

1. a seasonal load peak (the producers speed up mid-run),
2. the autoscaler reacting to broker lag by adding consumer tasks,
3. hot-swapping the processing function from a high-fidelity model
   (auto-encoder) to a low-fidelity one (k-means) without a new pilot.

Run:  python examples/dynamic_scaling.py
"""

import time

from repro import (
    AutoScaler,
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    ScalingPolicy,
    make_block_producer,
    make_model_processor,
)
from repro.core.events import FUNCTION_REPLACED, LOAD_PEAK, SCALED
from repro.ml import AutoEncoder, StreamingKMeans


def main() -> None:
    pcs = PilotComputeService(time_scale=0.0)
    edge = pcs.submit_pilot(
        PilotDescription(resource="ssh", site="edge", nodes=2,
                         node_spec=ResourceSpec(cores=1, memory_gb=4))
    )
    cloud = pcs.submit_pilot(
        PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
    )
    assert pcs.wait_all(timeout=30)

    pipeline = EdgeToCloudPipeline(
        pilot_edge=edge,
        pilot_cloud_processing=cloud,
        produce_function_handler=make_block_producer(points=500, features=32),
        # Start with the expensive, high-fidelity model.
        process_cloud_function_handler=make_model_processor(
            lambda: AutoEncoder(epochs=2)
        ),
        config=PipelineConfig(
            num_devices=2,
            messages_per_device=120,
            num_consumers=1,              # deliberately under-provisioned
            produce_interval=0.01,
            max_duration=300.0,
        ),
    )

    # Autoscaler: watch total broker lag, add consumers under pressure.
    def total_lag() -> int:
        topic = pipeline.broker.topic(pipeline.config.topic)
        appended = topic.total_appended
        return max(0, appended - pipeline.processed_count)

    scaler = AutoScaler(
        lag_fn=total_lag,
        scale_fn=pipeline.scale_consumers,
        policy=ScalingPolicy(min_consumers=1, max_consumers=6,
                             scale_up_lag=12, scale_down_lag=2, cooldown=0.5),
        event_bus=pipeline.events,
        interval=0.1,
    )

    print("starting under-provisioned run with the auto-encoder ...")
    handle = pipeline.run(wait=False)
    scaler.start()

    # Let lag build, then hot-swap to the cheap model mid-stream.
    handle.wait_for_processed(20, timeout=120)
    print("hot-swapping auto-encoder -> k-means (no new pilot needed)")
    pipeline.replace_cloud_function(
        make_model_processor(lambda: StreamingKMeans(n_clusters=25))
    )

    result = handle.join()
    scaler.stop()
    pcs.close()

    print(f"\ncompleted: {result.completed}   messages: {result.report.messages}")
    print("report:", result.report.row())
    peaks = pipeline.events.history(LOAD_PEAK)
    scalings = pipeline.events.history(SCALED)
    swaps = pipeline.events.history(FUNCTION_REPLACED)
    print(f"load-peak events: {len(peaks)}, scale-ups: {len(scalings)}, "
          f"function swaps: {len(swaps)}")
    for e in scalings:
        print(f"  scaled: +{e.payload['added']} consumers")
    by_model: dict = {}
    for r in result.results:
        by_model[r["model"]] = by_model.get(r["model"], 0) + 1
    print("messages per model:", by_model)


if __name__ == "__main__":
    main()
