#!/usr/bin/env python3
"""Multi-tier continuum topologies (a paper future-work item).

The paper's implementation is "limited to two layers: edge and cloud";
its future work proposes arbitrary topologies. This example builds a
four-tier continuum —

    devices -> edge gateway -> regional cloud -> central cloud (EU)

— and uses the topology's routing plus the cost-based placement policy to
decide, per message size, which tier should host the heavy processing.

Run:  python examples/hierarchical_continuum.py
"""

from repro import ContinuumTopology, CostBasedPlacement
from repro.core import make_model_processor
from repro.ml import IsolationForest, StreamingKMeans
from repro.netem import CELLULAR_EDGE, LAN, REGIONAL_WAN, TRANSATLANTIC
from repro.sim import calibrate_model_cost


def build_topology() -> ContinuumTopology:
    topo = ContinuumTopology(time_scale=0.0, seed=0)
    topo.add_site("devices", tier="device", region="factory")
    topo.add_site("gateway", tier="edge", region="factory")
    topo.add_site("regional", tier="cloud", region="us")
    topo.add_site("central", tier="cloud", region="eu")
    topo.connect("devices", "gateway", CELLULAR_EDGE)
    topo.connect("gateway", "regional", REGIONAL_WAN)
    topo.connect("regional", "central", TRANSATLANTIC)
    # A direct LAN-ish backhaul from the gateway to the regional DC is
    # also available; routing picks the lower-RTT path automatically.
    topo.connect("gateway", "central", TRANSATLANTIC)
    return topo


def main() -> None:
    topo = build_topology()
    print("continuum sites:")
    for site in topo.sites:
        print(f"  {site.name:<10} tier={site.tier:<7} region={site.region}")

    print("\nrouting (lowest mean RTT):")
    for a, b in [("devices", "central"), ("devices", "regional"), ("gateway", "central")]:
        path = topo.route(a, b)
        print(f"  {a} -> {b}: {' -> '.join(path)}  (rtt {topo.path_rtt_ms(a, b):.0f} ms)")

    print("\ncalibrating model costs ...")
    kmeans_cost = calibrate_model_cost(
        make_model_processor(StreamingKMeans), points=1000, reps=2
    )
    iforest_cost = calibrate_model_cost(
        make_model_processor(lambda: IsolationForest(n_estimators=100)),
        points=1000, reps=2,
    )

    # A gateway-class box is ~4x slower than the cloud; devices ~20x.
    policy = CostBasedPlacement(edge_preprocess_s=0.002)
    print(f"\n{'message':>10} {'model':>10} {'placement':>14}  rationale")
    for points in (25, 1000, 10_000):
        nbytes = points * 32 * 8
        for model, cost in (("kmeans", kmeans_cost), ("iforest", iforest_cost)):
            scaled = cost.mean_s * points / 1000.0
            decision = policy.decide(
                message_bytes=nbytes,
                edge_site="gateway",
                cloud_site="central",
                topology=topo,
                edge_compute_s=scaled * 4,
                cloud_compute_s=scaled,
                compression_ratio=0.25,
            )
            label = decision.processing_tier + (
                "+preproc" if decision.edge_preprocess else ""
            )
            print(f"{points:>10} {model:>10} {label:>14}  {decision.rationale[:70]}")

    print("\nSmall messages tolerate the WAN; large messages push processing "
          "toward the gateway or demand compression — the trade-off the "
          "paper's discussion anticipates.")


if __name__ == "__main__":
    main()
