#!/usr/bin/env python3
"""Geographic distribution along the continuum (paper section III-2).

Places the data source at Jetstream (US) and processing at LRZ (Germany),
connected by the paper's measured transatlantic link (140-160 ms RTT,
60-100 Mbit/s), and compares placements:

- cloud-centric (raw blocks cross the Atlantic),
- hybrid (mean-pool compression at the source before the transfer),
- the cost-based policy choosing automatically.

The sweep runs in the discrete-event simulator with compute costs
calibrated from the real model implementations, so a 512-message
transatlantic run takes milliseconds of wall-clock.

Run:  python examples/geo_distribution.py
"""

from repro import CostBasedPlacement, ContinuumTopology, TRANSATLANTIC
from repro.core import make_model_processor
from repro.ml import StreamingKMeans
from repro.netem import LAN
from repro.sim import (
    SimConfig,
    SimulatedPipeline,
    StageCostModel,
    calibrate_model_cost,
    calibrate_produce_cost,
)

POINTS = 10_000       # the paper's largest message size (2.6 MB)
MESSAGES = 128        # per device
DEVICES = 4           # the paper's 4-partition geo configuration


def main() -> None:
    print("calibrating compute costs from the real implementations ...")
    produce_cost = calibrate_produce_cost(points=POINTS, reps=3)
    kmeans_cost = calibrate_model_cost(
        make_model_processor(StreamingKMeans), points=POINTS, reps=3
    )
    print(f"  produce: {produce_cost.mean_s*1e3:.2f} ms/block")
    print(f"  k-means: {kmeans_cost.mean_s*1e3:.2f} ms/block\n")

    scenarios = {
        "co-located (LAN)": dict(uplink=LAN),
        "transatlantic raw": dict(uplink=TRANSATLANTIC),
        "transatlantic compressed 4x": dict(
            uplink=TRANSATLANTIC, compression=4
        ),
    }
    print(f"{'scenario':<30} {'MB/s':>8} {'msgs/s':>8} {'lat p50 (s)':>12} {'bottleneck':>12}")
    for name, opts in scenarios.items():
        compression = opts.get("compression", 1)
        cfg = SimConfig(
            num_devices=DEVICES,
            messages_per_device=MESSAGES,
            points=POINTS // compression,   # compressed blocks are smaller
            features=32,
            uplink=opts["uplink"],
            produce_cost=produce_cost,
            process_cost=kmeans_cost,
            seed=7,
        )
        result = SimulatedPipeline(cfg).run()
        row = result.report.row()
        print(
            f"{name:<30} {row['MB/s']:>8} {row['msgs/s']:>8} "
            f"{row['lat_p50_ms']/1e3:>12.2f} {result.bottleneck['bottleneck']:>12}"
        )

    # -- cost-based placement decision ------------------------------------
    print("\ncost-based placement for the transatlantic deployment:")
    topo = ContinuumTopology(time_scale=0.0)
    topo.add_site("jetstream", tier="cloud", region="us")
    topo.add_site("lrz", tier="cloud", region="eu")
    topo.connect("jetstream", "lrz", TRANSATLANTIC)
    policy = CostBasedPlacement(edge_preprocess_s=produce_cost.mean_s)
    decision = policy.decide(
        message_bytes=POINTS * 32 * 8,
        edge_site="jetstream",
        cloud_site="lrz",
        topology=topo,
        edge_compute_s=kmeans_cost.mean_s * 8,   # weaker source machine
        cloud_compute_s=kmeans_cost.mean_s,
        compression_ratio=0.25,
    )
    print(f"  decision: {decision.processing_tier}"
          f"{' + edge pre-processing' if decision.edge_preprocess else ''}")
    print(f"  rationale: {decision.rationale}")


if __name__ == "__main__":
    main()
