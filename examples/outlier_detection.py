#!/usr/bin/env python3
"""Streaming outlier detection with the paper's three models.

Deploys the cloud-centric pattern (data generated at the edge, scored and
trained in the cloud) once per model — mini-batch k-means, isolation
forest, and the 11,552-parameter auto-encoder — and prints the throughput
and latency comparison that drives the paper's Fig. 3.

Model weights are published to the parameter service after every block,
and the example shows a second "inference site" pulling the latest
k-means weights.

Run:  python examples/outlier_detection.py
"""

from repro import (
    EdgeToCloudPipeline,
    PilotComputeService,
    PilotDescription,
    PipelineConfig,
    ResourceSpec,
    make_block_producer,
    make_model_processor,
)
from repro.ml import AutoEncoder, IsolationForest, StreamingKMeans

MODELS = {
    "kmeans": lambda: StreamingKMeans(n_clusters=25),
    "iforest": lambda: IsolationForest(n_estimators=100, refresh_fraction=0.25),
    "autoencoder": lambda: AutoEncoder(hidden_neurons=(64, 32, 32, 64), epochs=4),
}

POINTS = 1000       # points per message (32 features each)
MESSAGES = 16       # per device; increase for longer runs


def run_model(name: str, model_factory) -> None:
    pcs = PilotComputeService(time_scale=0.0)
    try:
        edge = pcs.submit_pilot(
            PilotDescription(resource="ssh", site="edge", nodes=2,
                             node_spec=ResourceSpec(cores=1, memory_gb=4))
        )
        cloud = pcs.submit_pilot(
            PilotDescription(resource="cloud", site="lrz", instance_type="lrz.large")
        )
        assert pcs.wait_all(timeout=30)

        pipeline = EdgeToCloudPipeline(
            pilot_edge=edge,
            pilot_cloud_processing=cloud,
            produce_function_handler=make_block_producer(
                points=POINTS, features=32, clusters=25, outlier_fraction=0.02
            ),
            process_cloud_function_handler=make_model_processor(
                model_factory, share_key=f"model/{name}"
            ),
            config=PipelineConfig(num_devices=2, messages_per_device=MESSAGES),
        )
        result = pipeline.run()
        row = result.report.row()
        outliers = sum(r.get("outliers", 0) for r in result.results)
        print(
            f"{name:<12} {row['MB/s']:>8} MB/s  {row['msgs/s']:>8} msgs/s  "
            f"lat p50 {row['lat_p50_ms']:>8} ms   outliers flagged: {outliers}"
        )

        if name == "kmeans":
            # A downstream consumer (e.g. an inference-only edge site)
            # restores the shared model from the parameter service.
            keys = pipeline.parameter_server.keys()
            key = next(k for k in keys if k.endswith("model/kmeans"))
            weights = pipeline.parameter_server.get(key).value
            replica = StreamingKMeans(n_clusters=25)
            replica.set_weights(weights)
            print(f"{'':<12} parameter service: restored k-means replica "
                  f"(version {pipeline.parameter_server.get(key).version}, "
                  f"{replica.cluster_centers_.shape[0]} centres)")
    finally:
        pcs.close()


def main() -> None:
    print(f"streaming outlier detection: {MESSAGES} messages/device x "
          f"{POINTS} points x 32 features\n")
    for name, factory in MODELS.items():
        run_model(name, factory)
    print("\nExpected ordering (paper Fig. 3): kmeans > iforest > autoencoder.")


if __name__ == "__main__":
    main()
