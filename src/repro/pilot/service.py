"""PilotComputeService: the application's entry point to resources.

Submitting a :class:`PilotDescription` returns a :class:`PilotCompute`
immediately in state ``NEW``; a background thread drives it through
``PENDING`` (the plugin's emulated acquisition delay, scaled by
``time_scale``) into ``RUNNING`` with an attached compute cluster, or
into ``FAILED`` with the backend's error.

This is step 1 of the paper's application flow (Fig. 1): "Applications
acquire edge-to-cloud resources using the pilot framework."
"""

from __future__ import annotations

import threading
import time

from repro.pilot.compute import PilotCompute
from repro.pilot.description import PilotDescription
from repro.pilot.plugins.base import ProvisionError, ResourcePlugin
from repro.pilot.registry import get_resource_plugin
from repro.pilot.states import PilotState
from repro.util.ids import new_id
from repro.util.validation import check_non_negative


class PilotComputeService:
    """Manages pilot lifecycles across backend plugins.

    Parameters
    ----------
    time_scale:
        Factor applied to emulated acquisition delays; 0 makes
        acquisition instantaneous (unit tests), 1.0 is real time.
    plugins:
        Pre-configured plugin instances keyed by name; unlisted plugins
        are instantiated on demand with their defaults.
    """

    def __init__(
        self,
        time_scale: float = 0.0,
        plugins: dict[str, ResourcePlugin] | None = None,
    ) -> None:
        check_non_negative("time_scale", time_scale)
        self.service_id = new_id("pcs")
        self.time_scale = float(time_scale)
        self._plugins: dict[str, ResourcePlugin] = dict(plugins or {})
        self._pilots: dict[str, PilotCompute] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- plugin management ----------------------------------------------------

    def plugin(self, name: str) -> ResourcePlugin:
        with self._lock:
            if name not in self._plugins:
                self._plugins[name] = get_resource_plugin(name)()
            return self._plugins[name]

    def register_plugin(self, name: str, plugin: ResourcePlugin) -> None:
        with self._lock:
            self._plugins[name] = plugin

    # -- pilot lifecycle ----------------------------------------------------------

    def submit_pilot(self, description: PilotDescription) -> PilotCompute:
        """Begin acquiring a resource; returns the handle immediately."""
        if not isinstance(description, PilotDescription):
            raise TypeError(
                f"expected a PilotDescription, got {type(description).__name__}"
            )
        if self._closed:
            raise RuntimeError("service is closed")
        pilot = PilotCompute(description)
        with self._lock:
            self._pilots[pilot.pilot_id] = pilot
        thread = threading.Thread(
            target=self._drive, args=(pilot,), name=f"pilot-{pilot.pilot_id}", daemon=True
        )
        thread.start()
        return pilot

    def _drive(self, pilot: PilotCompute) -> None:
        plugin = self.plugin(pilot.description.resource)
        try:
            delay = plugin.acquisition_delay(pilot.description)
        except ProvisionError as exc:
            pilot._transition(PilotState.FAILED, error=str(exc))
            return
        if pilot.state.is_final:  # cancelled while NEW
            return
        try:
            pilot._transition(PilotState.PENDING)
        except Exception:
            return  # racing cancel
        if delay > 0 and self.time_scale > 0:
            time.sleep(delay * self.time_scale)
        if pilot.state.is_final:  # cancelled while PENDING
            return
        try:
            cluster = plugin.build_cluster(pilot.description, pilot.pilot_id)
        except ProvisionError as exc:
            if not pilot.state.is_final:
                pilot._transition(PilotState.FAILED, error=str(exc))
            return
        pilot._attach_cluster(cluster)
        try:
            pilot._transition(PilotState.RUNNING)
        except Exception:
            # Cancelled between build and transition; release everything.
            cluster.close()
            plugin.release(pilot.description, pilot.pilot_id)
            return
        # Release backend capacity when the pilot ends.
        pilot.on_state_change(
            lambda p, s: self._on_pilot_final(plugin, p, s) if s.is_final else None
        )

    def _on_pilot_final(self, plugin: ResourcePlugin, pilot: PilotCompute, state) -> None:
        try:
            if pilot._cluster is not None:
                pilot._cluster.close()
        finally:
            plugin.release(pilot.description, pilot.pilot_id)

    def stop_pilot(self, pilot_id: str) -> None:
        """Finish a running pilot normally (DONE)."""
        pilot = self.pilot(pilot_id)
        if pilot.state is PilotState.RUNNING:
            pilot._transition(PilotState.DONE)

    # -- queries --------------------------------------------------------------------

    def pilot(self, pilot_id: str) -> PilotCompute:
        with self._lock:
            try:
                return self._pilots[pilot_id]
            except KeyError:
                raise KeyError(f"unknown pilot {pilot_id!r}") from None

    def list_pilots(self, state: PilotState | None = None) -> list[PilotCompute]:
        with self._lock:
            pilots = list(self._pilots.values())
        if state is not None:
            pilots = [p for p in pilots if p.state is state]
        return pilots

    def wait_all(self, timeout: float | None = None) -> bool:
        """Wait for every pilot to leave NEW/PENDING; True if none failed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        ok = True
        for pilot in self.list_pilots():
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            pilot.wait(PilotState.RUNNING, timeout=remaining)
            if pilot.state is PilotState.FAILED:
                ok = False
        return ok

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Cancel every non-final pilot and shut the service."""
        if self._closed:
            return
        self._closed = True
        for pilot in self.list_pilots():
            if not pilot.state.is_final:
                pilot.cancel()

    def __enter__(self) -> "PilotComputeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            by_state: dict[str, int] = {}
            for p in self._pilots.values():
                by_state[p.state.value] = by_state.get(p.state.value, 0) + 1
            return {
                "service": self.service_id,
                "pilots": len(self._pilots),
                "by_state": by_state,
                "plugins": {n: p.stats() for n, p in self._plugins.items()},
            }
