"""Resource-plugin registry (mirrors the broker plugin mechanism)."""

from __future__ import annotations

from typing import Callable

from repro.util.validation import ValidationError

_REGISTRY: dict[str, Callable] = {}


def resource_plugin(name: str) -> Callable:
    """Class decorator registering a resource backend under *name*."""

    def register(cls):
        if not name or not name.replace("-", "_").isidentifier():
            raise ValidationError(f"invalid plugin name {name!r}")
        if name in _REGISTRY:
            raise ValidationError(f"resource plugin {name!r} already registered")
        _REGISTRY[name] = cls
        cls.plugin_name = name
        return cls

    return register


def get_resource_plugin(name: str):
    """Look up a registered resource-plugin class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown resource plugin {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_resource_plugins() -> list[str]:
    """Names of all registered resource plugins."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    # Import for the side effect of their @resource_plugin decorators.
    from repro.pilot.plugins import cloud_vm, hpc_batch, localhost, serverless, ssh_edge  # noqa: F401


_register_builtins()
