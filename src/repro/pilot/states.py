"""Pilot lifecycle states and legal transitions.

Follows the canonical pilot state model::

    NEW -> PENDING -> RUNNING -> DONE
             |           |----> FAILED
             |----> FAILED
    any non-final state -> CANCELED
"""

from __future__ import annotations

import enum


class PilotState(enum.Enum):
    """Lifecycle states of a pilot (see module docstring for the graph)."""

    NEW = "new"
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELED = "canceled"

    @property
    def is_final(self) -> bool:
        return self in (PilotState.DONE, PilotState.FAILED, PilotState.CANCELED)


_LEGAL: dict[PilotState, tuple] = {
    PilotState.NEW: (PilotState.PENDING, PilotState.FAILED, PilotState.CANCELED),
    PilotState.PENDING: (PilotState.RUNNING, PilotState.FAILED, PilotState.CANCELED),
    PilotState.RUNNING: (PilotState.DONE, PilotState.FAILED, PilotState.CANCELED),
    PilotState.DONE: (),
    PilotState.FAILED: (),
    PilotState.CANCELED: (),
}


class InvalidTransition(RuntimeError):
    """A state change outside the legal lifecycle graph."""

    def __init__(self, current: PilotState, requested: PilotState) -> None:
        super().__init__(f"illegal pilot transition {current.value} -> {requested.value}")
        self.current = current
        self.requested = requested


def check_transition(current: PilotState, requested: PilotState) -> None:
    """Raise :class:`InvalidTransition` if the move is not legal."""
    if requested not in _LEGAL[current]:
        raise InvalidTransition(current, requested)
