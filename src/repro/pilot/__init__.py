"""The pilot abstraction: decoupled resource acquisition.

Implements the P* pilot model (Luckow et al., e-Science 2012) that
Pilot-Edge builds on: an application submits a *pilot description* to the
:class:`PilotComputeService`, which provisions a resource container
through a backend plugin and hands back a :class:`PilotCompute` handle.
Once the pilot is ``RUNNING`` it exposes a managed compute cluster
(:mod:`repro.compute`) onto which the application — or the Pilot-Edge
pipeline — schedules tasks.

Backend plugins emulate the acquisition behaviour of each resource class
the paper uses (the real backends need networked infrastructure that is
out of scope here; the state machines and timing behaviour are faithful):

- ``localhost`` — immediate in-process allocation,
- ``ssh`` — edge devices attached over SSH (connect handshake delay,
  device registry, one pilot per device),
- ``cloud`` — OpenStack/EC2-style VMs (boot delay, instance-type quota),
- ``hpc`` — batch queue (FIFO wait while the partition is busy),
- ``serverless`` — function slots with cold-start delay and concurrency
  limits.
"""

from repro.pilot.states import PilotState, InvalidTransition
from repro.pilot.description import PilotDescription
from repro.pilot.compute import PilotCompute
from repro.pilot.service import PilotComputeService
from repro.pilot.registry import resource_plugin, available_resource_plugins, get_resource_plugin
from repro.pilot.plugins.base import ResourcePlugin, ProvisionError
from repro.pilot.frameworks import ManagedBroker, ManagedParameterServer

__all__ = [
    "ManagedBroker",
    "ManagedParameterServer",
    "PilotState",
    "InvalidTransition",
    "PilotDescription",
    "PilotCompute",
    "PilotComputeService",
    "resource_plugin",
    "available_resource_plugins",
    "get_resource_plugin",
    "ResourcePlugin",
    "ProvisionError",
]
