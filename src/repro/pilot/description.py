"""Pilot descriptions: what resource to acquire, where, for how long."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compute.task import ResourceSpec
from repro.util.validation import ValidationError, check_positive


@dataclass(frozen=True)
class PilotDescription:
    """Declarative request for a resource container.

    Mirrors the fields a SAGA/RADICAL pilot description carries, reduced
    to what the emulated backends act on.

    Parameters
    ----------
    resource:
        Backend plugin name (``localhost``, ``ssh``, ``cloud``, ``hpc``,
        ``serverless``).
    site:
        Topology site this pilot lives at (drives network emulation).
    nodes:
        Number of identical nodes (each becomes one worker).
    node_spec:
        Cores/memory of each node — e.g. the paper's LRZ "large" VM is
        ``ResourceSpec(cores=10, memory_gb=44)``.
    walltime_minutes:
        Requested lifetime; the HPC plugin enforces queue policies on it.
    queue:
        Batch queue name (HPC only).
    instance_type:
        Cloud instance-type label (cloud only; informational + quota key).
    attributes:
        Free-form plugin-specific settings.
    """

    resource: str = "localhost"
    site: str = "local"
    nodes: int = 1
    node_spec: ResourceSpec = field(default_factory=ResourceSpec)
    walltime_minutes: float = 60.0
    queue: str = "normal"
    instance_type: str = ""
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.resource:
            raise ValidationError("resource plugin name must be non-empty")
        if not self.site:
            raise ValidationError("site must be non-empty")
        check_positive("nodes", self.nodes)
        check_positive("walltime_minutes", self.walltime_minutes)

    @property
    def total_cores(self) -> float:
        return self.nodes * self.node_spec.cores

    @property
    def total_memory_gb(self) -> float:
        return self.nodes * self.node_spec.memory_gb
