"""The PilotCompute handle applications hold after submission."""

from __future__ import annotations

import threading

from repro.compute.cluster import ComputeCluster
from repro.pilot.description import PilotDescription
from repro.pilot.states import PilotState, check_transition
from repro.util.ids import new_id


class PilotCompute:
    """Handle to one provisioned (or provisioning) pilot.

    State changes are driven by the owning service; applications observe
    them through :attr:`state`, :meth:`wait` and :meth:`on_state_change`.
    """

    def __init__(self, description: PilotDescription) -> None:
        self.pilot_id = new_id("pilot")
        self.description = description
        self._state = PilotState.NEW
        self._state_lock = threading.RLock()
        self._state_changed = threading.Condition(self._state_lock)
        self._cluster: ComputeCluster | None = None
        self._error: str | None = None
        self._callbacks: list = []
        #: History of (state, monotonic time) pairs for monitoring.
        self.state_history: list[tuple] = []

    # -- state machine (service-facing) -------------------------------------

    def _transition(self, new_state: PilotState, error: str | None = None) -> None:
        import time

        with self._state_lock:
            check_transition(self._state, new_state)
            self._state = new_state
            if error is not None:
                self._error = error
            self.state_history.append((new_state, time.monotonic()))
            callbacks = list(self._callbacks)
            self._state_changed.notify_all()
        for cb in callbacks:
            try:
                cb(self, new_state)
            except Exception:
                pass

    def _attach_cluster(self, cluster: ComputeCluster) -> None:
        self._cluster = cluster

    # -- application-facing ---------------------------------------------------

    @property
    def state(self) -> PilotState:
        with self._state_lock:
            return self._state

    @property
    def error(self) -> str | None:
        return self._error

    @property
    def site(self) -> str:
        return self.description.site

    @property
    def cluster(self) -> ComputeCluster:
        """The managed compute cluster (only while RUNNING)."""
        if self.state is not PilotState.RUNNING or self._cluster is None:
            raise RuntimeError(
                f"pilot {self.pilot_id} has no active cluster (state={self.state.value})"
            )
        return self._cluster

    def wait(self, target: PilotState = PilotState.RUNNING, timeout: float | None = None) -> bool:
        """Block until the pilot reaches *target* (or any final state).

        Returns True if *target* was reached.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state_lock:
            while True:
                if self._state is target:
                    return True
                if self._state.is_final:
                    return self._state is target
                if deadline is None:
                    self._state_changed.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._state_changed.wait(remaining)

    def on_state_change(self, callback) -> None:
        """Register ``callback(pilot, new_state)`` for future transitions."""
        with self._state_lock:
            self._callbacks.append(callback)

    def cancel(self) -> None:
        """Cancel the pilot; tears down its cluster if one is running."""
        with self._state_lock:
            if self._state.is_final:
                return
            cluster = self._cluster
            self._transition(PilotState.CANCELED)
        if cluster is not None:
            cluster.close()

    def stats(self) -> dict:
        return {
            "pilot_id": self.pilot_id,
            "state": self.state.value,
            "site": self.site,
            "resource": self.description.resource,
            "nodes": self.description.nodes,
            "cores": self.description.total_cores,
            "error": self._error,
        }

    def __repr__(self) -> str:
        return f"PilotCompute({self.pilot_id}, {self.state.value}, site={self.site})"
