"""Pilot-managed frameworks.

Section II-B: "the pilot abstraction can manage brokering and data
processing frameworks, e.g., Kafka and Dask". A *managed framework* is a
service whose lifetime is bound to a pilot: it starts when deployed onto
a RUNNING pilot, inherits the pilot's site (for network emulation) and
resources, and is torn down automatically when the pilot ends.

Two managed frameworks cover the paper's needs:

- :class:`ManagedBroker` — a broker instance bound to a (broker) pilot,
- :class:`ManagedParameterServer` — the coordination/parameter service.

(The compute side needs no wrapper: a pilot's cluster *is* the managed
Dask-equivalent, created by the resource plugin.)
"""

from __future__ import annotations

from repro.broker.plugins import create_broker
from repro.params.server import ParameterServer
from repro.pilot.compute import PilotCompute
from repro.pilot.states import PilotState
from repro.util.validation import ValidationError


class ManagedFramework:
    """Base: lifetime-couples a service to a pilot."""

    framework_name = "framework"

    def __init__(self, pilot: PilotCompute) -> None:
        if not isinstance(pilot, PilotCompute):
            raise ValidationError(
                f"expected a PilotCompute, got {type(pilot).__name__}"
            )
        if pilot.state is not PilotState.RUNNING:
            raise ValidationError(
                f"cannot deploy {self.framework_name} on pilot "
                f"{pilot.pilot_id} in state {pilot.state.value}"
            )
        self.pilot = pilot
        self._stopped = False
        pilot.on_state_change(self._on_pilot_state)

    def _on_pilot_state(self, pilot: PilotCompute, state: PilotState) -> None:
        if state.is_final and not self._stopped:
            self.stop()

    @property
    def site(self) -> str:
        return self.pilot.site

    @property
    def running(self) -> bool:
        return not self._stopped and self.pilot.state is PilotState.RUNNING

    def stop(self) -> None:
        self._stopped = True

    def _check_running(self) -> None:
        if not self.running:
            raise RuntimeError(
                f"{self.framework_name} on pilot {self.pilot.pilot_id} is not running"
            )


class ManagedBroker(ManagedFramework):
    """A broker whose lifetime is bound to its hosting pilot.

    >>> # broker = ManagedBroker(pilot, plugin="kafka")
    >>> # broker.service.create_topic(...)
    """

    framework_name = "broker"

    def __init__(self, pilot: PilotCompute, plugin: str = "kafka", **broker_kwargs) -> None:
        super().__init__(pilot)
        self._broker = create_broker(
            plugin, name=f"{pilot.pilot_id}-broker", **broker_kwargs
        )

    @property
    def service(self):
        """The broker instance (raises once the pilot has ended)."""
        self._check_running()
        return self._broker

    def stats(self) -> dict:
        return {
            "framework": self.framework_name,
            "pilot": self.pilot.pilot_id,
            "site": self.site,
            "running": self.running,
            **(self._broker.stats() if hasattr(self._broker, "stats") else {}),
        }


class ManagedParameterServer(ManagedFramework):
    """A parameter service bound to its hosting pilot."""

    framework_name = "parameter-server"

    def __init__(self, pilot: PilotCompute) -> None:
        super().__init__(pilot)
        self._server = ParameterServer(name=f"{pilot.pilot_id}-params")

    @property
    def service(self) -> ParameterServer:
        self._check_running()
        return self._server

    def stats(self) -> dict:
        return {
            "framework": self.framework_name,
            "pilot": self.pilot.pilot_id,
            "site": self.site,
            "running": self.running,
            **self._server.stats(),
        }
