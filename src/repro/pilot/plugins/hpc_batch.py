"""HPC batch-queue backend (emulated SLURM-style scheduler).

Models the placeholder-job pattern the pilot abstraction comes from: a
pilot is a job in a queuing system, and it waits in line while the
partition is busy. The emulation keeps a FIFO backlog per queue with a
fixed node pool; the acquisition delay is the computed head-of-line wait
(based on the walltimes of the jobs ahead) plus the launcher overhead.
"""

from __future__ import annotations

import threading

from repro.compute.cluster import ComputeCluster
from repro.pilot.description import PilotDescription
from repro.pilot.plugins.base import ProvisionError, ResourcePlugin
from repro.pilot.registry import resource_plugin
from repro.util.validation import check_non_negative, check_positive


@resource_plugin("hpc")
class HpcBatchPlugin(ResourcePlugin):
    """FIFO batch queue over a fixed node pool.

    The wait model is deliberately simple (and deterministic for tests):
    when a request needs more free nodes than the pool has, it waits for
    the earliest-finishing running jobs — whose remaining time we bound by
    their requested walltime scaled by ``occupancy_factor``.
    """

    def __init__(
        self,
        total_nodes: int = 32,
        launch_delay: float = 5.0,
        occupancy_factor: float = 0.1,
        max_walltime_minutes: float = 2880.0,
    ) -> None:
        check_positive("total_nodes", total_nodes)
        check_non_negative("launch_delay", launch_delay)
        check_non_negative("occupancy_factor", occupancy_factor)
        check_positive("max_walltime_minutes", max_walltime_minutes)
        self.total_nodes = int(total_nodes)
        self.launch_delay = float(launch_delay)
        self.occupancy_factor = float(occupancy_factor)
        self.max_walltime_minutes = float(max_walltime_minutes)
        self._running: dict[str, tuple] = {}  # pilot_id -> (nodes, walltime_min)
        self._lock = threading.Lock()

    def _free_nodes(self) -> int:
        return self.total_nodes - sum(n for n, _ in self._running.values())

    def acquisition_delay(self, description: PilotDescription) -> float:
        if description.nodes > self.total_nodes:
            raise ProvisionError(
                f"request for {description.nodes} nodes exceeds partition "
                f"size {self.total_nodes}"
            )
        if description.walltime_minutes > self.max_walltime_minutes:
            raise ProvisionError(
                f"walltime {description.walltime_minutes} min exceeds queue "
                f"limit {self.max_walltime_minutes} min"
            )
        with self._lock:
            deficit = description.nodes - self._free_nodes()
            wait = 0.0
            if deficit > 0:
                # Wait for the earliest-finishing jobs to release nodes.
                remaining = sorted(
                    (walltime * 60.0 * self.occupancy_factor, nodes)
                    for nodes, walltime in self._running.values()
                )
                freed = 0
                for seconds, nodes in remaining:
                    wait = seconds
                    freed += nodes
                    if freed >= deficit:
                        break
                else:
                    raise ProvisionError("queue cannot satisfy the request")
        return wait + self.launch_delay

    def build_cluster(self, description: PilotDescription, pilot_id: str) -> ComputeCluster:
        with self._lock:
            # By the time the (emulated) wait has elapsed, earlier jobs
            # are assumed to have drained; admit if physically possible.
            if description.nodes > self.total_nodes:
                raise ProvisionError("request exceeds partition size")
            self._running[pilot_id] = (description.nodes, description.walltime_minutes)
        return ComputeCluster(
            n_workers=description.nodes,
            worker_resources=description.node_spec,
            name=f"{pilot_id}-hpc",
        )

    def release(self, description: PilotDescription, pilot_id: str) -> None:
        with self._lock:
            self._running.pop(pilot_id, None)

    def stats(self) -> dict:
        with self._lock:
            return {
                "plugin": self.plugin_name,
                "total_nodes": self.total_nodes,
                "nodes_in_use": self.total_nodes - self._free_nodes(),
                "jobs_running": len(self._running),
            }
