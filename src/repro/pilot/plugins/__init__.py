"""Emulated resource backends for the pilot service."""

from repro.pilot.plugins.base import ResourcePlugin, ProvisionError

__all__ = ["ResourcePlugin", "ProvisionError"]
