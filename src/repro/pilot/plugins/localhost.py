"""Localhost backend: immediate in-process allocation.

The zero-cost baseline plugin used by unit tests and quick examples.
"""

from __future__ import annotations

from repro.compute.cluster import ComputeCluster
from repro.pilot.description import PilotDescription
from repro.pilot.plugins.base import ResourcePlugin
from repro.pilot.registry import resource_plugin


@resource_plugin("localhost")
class LocalhostPlugin(ResourcePlugin):
    """Allocates workers directly in the current process."""

    def acquisition_delay(self, description: PilotDescription) -> float:
        return 0.0

    def build_cluster(self, description: PilotDescription, pilot_id: str) -> ComputeCluster:
        return ComputeCluster(
            n_workers=description.nodes,
            worker_resources=description.node_spec,
            name=f"{pilot_id}-local",
        )
