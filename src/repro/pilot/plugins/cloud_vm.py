"""Cloud VM backend (emulated OpenStack/EC2).

Models the paper's LRZ and Jetstream clouds: instance-type catalogue with
per-type core quotas and a VM boot delay. The catalogue defaults mirror
the paper's infrastructure table (section III): LRZ medium (4 cores /
18 GB), LRZ large (10 cores / 44 GB), Jetstream medium (6 cores / 16 GB).
"""

from __future__ import annotations

import threading

from repro.compute.cluster import ComputeCluster
from repro.compute.task import ResourceSpec
from repro.pilot.description import PilotDescription
from repro.pilot.plugins.base import ProvisionError, ResourcePlugin
from repro.pilot.registry import resource_plugin
from repro.util.validation import check_non_negative

#: Instance catalogue from the paper's evaluation setup.
DEFAULT_CATALOG: dict[str, ResourceSpec] = {
    "lrz.medium": ResourceSpec(cores=4, memory_gb=18),
    "lrz.large": ResourceSpec(cores=10, memory_gb=44),
    "jetstream.medium": ResourceSpec(cores=6, memory_gb=16),
}


@resource_plugin("cloud")
class CloudVmPlugin(ResourcePlugin):
    """Boots VMs from an instance-type catalogue under a core quota."""

    def __init__(
        self,
        catalog: dict[str, ResourceSpec] | None = None,
        boot_delay: float = 25.0,
        core_quota: float = 128.0,
    ) -> None:
        check_non_negative("boot_delay", boot_delay)
        check_non_negative("core_quota", core_quota)
        self.catalog = dict(catalog or DEFAULT_CATALOG)
        self.boot_delay = float(boot_delay)
        self.core_quota = float(core_quota)
        self._cores_in_use = 0.0
        self._held: dict[str, float] = {}  # pilot_id -> cores
        self._lock = threading.Lock()

    def _resolve_spec(self, description: PilotDescription) -> ResourceSpec:
        if description.instance_type:
            try:
                return self.catalog[description.instance_type]
            except KeyError:
                raise ProvisionError(
                    f"unknown instance type {description.instance_type!r}; "
                    f"catalog: {sorted(self.catalog)}"
                ) from None
        return description.node_spec

    def acquisition_delay(self, description: PilotDescription) -> float:
        spec = self._resolve_spec(description)
        cores_needed = spec.cores * description.nodes
        with self._lock:
            if self._cores_in_use + cores_needed > self.core_quota:
                raise ProvisionError(
                    f"core quota exceeded: {self._cores_in_use}+{cores_needed} "
                    f"> {self.core_quota}"
                )
        # VMs of one request boot in parallel; one boot delay covers all.
        return self.boot_delay

    def build_cluster(self, description: PilotDescription, pilot_id: str) -> ComputeCluster:
        spec = self._resolve_spec(description)
        cores_needed = spec.cores * description.nodes
        with self._lock:
            if self._cores_in_use + cores_needed > self.core_quota:
                raise ProvisionError("quota was consumed concurrently")
            self._cores_in_use += cores_needed
            self._held[pilot_id] = cores_needed
        return ComputeCluster(
            n_workers=description.nodes,
            worker_resources=spec,
            name=f"{pilot_id}-cloud",
        )

    def release(self, description: PilotDescription, pilot_id: str) -> None:
        with self._lock:
            self._cores_in_use -= self._held.pop(pilot_id, 0.0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "plugin": self.plugin_name,
                "cores_in_use": self._cores_in_use,
                "core_quota": self.core_quota,
                "catalog": sorted(self.catalog),
            }
