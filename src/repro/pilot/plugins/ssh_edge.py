"""SSH edge-device backend (emulated).

Models the paper's smaller IoT devices "via SSH": a registry of named
devices (each Raspberry-Pi-class by default), an SSH connect/bootstrap
handshake delay per device, and exclusive ownership — a device can host
only one pilot at a time, matching how Pilot-Streaming agents occupy an
edge node.
"""

from __future__ import annotations

import threading

from repro.compute.cluster import ComputeCluster
from repro.compute.task import ResourceSpec
from repro.pilot.description import PilotDescription
from repro.pilot.plugins.base import ProvisionError, ResourcePlugin
from repro.pilot.registry import resource_plugin
from repro.util.validation import check_non_negative, check_positive

#: Default device class: 1 core / 4 GB, "comparable to a current
#: Raspberry Pi" (paper, section III-1).
RASPBERRY_PI = ResourceSpec(cores=1, memory_gb=4)


@resource_plugin("ssh")
class SshEdgePlugin(ResourcePlugin):
    """Pool of SSH-reachable edge devices.

    Parameters
    ----------
    devices:
        Number of devices in the pool (or pass explicit ``device_specs``).
    connect_delay:
        Emulated SSH handshake + agent bootstrap seconds per device.
    """

    def __init__(
        self,
        devices: int = 8,
        device_spec: ResourceSpec = RASPBERRY_PI,
        connect_delay: float = 1.5,
    ) -> None:
        check_positive("devices", devices)
        check_non_negative("connect_delay", connect_delay)
        self.device_spec = device_spec
        self.connect_delay = float(connect_delay)
        self._free: list[str] = [f"edge-device-{i}" for i in range(int(devices))]
        self._held: dict[str, list[str]] = {}  # pilot_id -> devices
        self._lock = threading.Lock()

    def acquisition_delay(self, description: PilotDescription) -> float:
        spec = description.node_spec
        if spec.cores > self.device_spec.cores or spec.memory_gb > self.device_spec.memory_gb:
            raise ProvisionError(
                f"edge devices offer {self.device_spec}, requested {spec}"
            )
        with self._lock:
            if description.nodes > len(self._free):
                raise ProvisionError(
                    f"requested {description.nodes} edge devices, only "
                    f"{len(self._free)} available"
                )
        # Devices are bootstrapped sequentially over SSH.
        return self.connect_delay * description.nodes

    def build_cluster(self, description: PilotDescription, pilot_id: str) -> ComputeCluster:
        with self._lock:
            if description.nodes > len(self._free):
                raise ProvisionError("edge devices were claimed concurrently")
            # Claim the head of the pool in one slice instead of N
            # O(n)-shift pop(0) calls.
            claimed = self._free[: description.nodes]
            del self._free[: description.nodes]
            self._held[pilot_id] = claimed
        return ComputeCluster(
            n_workers=description.nodes,
            worker_resources=description.node_spec,
            name=f"{pilot_id}-edge",
        )

    def release(self, description: PilotDescription, pilot_id: str) -> None:
        with self._lock:
            for device in self._held.pop(pilot_id, []):
                self._free.append(device)

    def stats(self) -> dict:
        with self._lock:
            return {
                "plugin": self.plugin_name,
                "devices_free": len(self._free),
                "devices_held": sum(len(v) for v in self._held.values()),
            }
