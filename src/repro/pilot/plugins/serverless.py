"""Serverless/FaaS backend (emulated Lambda-style runtime).

A pilot here is a reserved pool of function slots (the paper cites Lambda
functions as one pilot embodiment [11]). Slots have a cold-start delay on
first acquisition and a bounded per-account concurrency.
"""

from __future__ import annotations

import threading

from repro.compute.cluster import ComputeCluster
from repro.compute.task import ResourceSpec
from repro.pilot.description import PilotDescription
from repro.pilot.plugins.base import ProvisionError, ResourcePlugin
from repro.pilot.registry import resource_plugin
from repro.util.validation import check_non_negative, check_positive


@resource_plugin("serverless")
class ServerlessPlugin(ResourcePlugin):
    """Reserves function slots under an account concurrency limit."""

    #: Lambda-style slot: 1 vCPU-equivalent, limited memory.
    SLOT_SPEC = ResourceSpec(cores=1, memory_gb=3)

    def __init__(
        self,
        max_concurrency: int = 100,
        cold_start_delay: float = 0.8,
    ) -> None:
        check_positive("max_concurrency", max_concurrency)
        check_non_negative("cold_start_delay", cold_start_delay)
        self.max_concurrency = int(max_concurrency)
        self.cold_start_delay = float(cold_start_delay)
        self._reserved = 0
        self._held: dict[str, int] = {}
        self._lock = threading.Lock()

    def acquisition_delay(self, description: PilotDescription) -> float:
        spec = description.node_spec
        if spec.cores > self.SLOT_SPEC.cores or spec.memory_gb > self.SLOT_SPEC.memory_gb:
            raise ProvisionError(
                f"serverless slots offer {self.SLOT_SPEC}, requested {spec}"
            )
        with self._lock:
            if self._reserved + description.nodes > self.max_concurrency:
                raise ProvisionError(
                    f"concurrency limit {self.max_concurrency} exceeded"
                )
        return self.cold_start_delay

    def build_cluster(self, description: PilotDescription, pilot_id: str) -> ComputeCluster:
        with self._lock:
            if self._reserved + description.nodes > self.max_concurrency:
                raise ProvisionError("concurrency was consumed concurrently")
            self._reserved += description.nodes
            self._held[pilot_id] = description.nodes
        return ComputeCluster(
            n_workers=description.nodes,
            worker_resources=description.node_spec,
            name=f"{pilot_id}-faas",
        )

    def release(self, description: PilotDescription, pilot_id: str) -> None:
        with self._lock:
            self._reserved -= self._held.pop(pilot_id, 0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "plugin": self.plugin_name,
                "reserved": self._reserved,
                "max_concurrency": self.max_concurrency,
            }
