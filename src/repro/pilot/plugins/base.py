"""Resource-plugin interface.

A plugin's job is narrow: given a :class:`PilotDescription`, decide
(a) whether the request is admissible, (b) how long acquisition takes
(queue wait, VM boot, SSH handshake — emulated as a delay), and
(c) build the compute cluster once acquired. Release is the inverse.

Plugins never sleep themselves; they *report* delays and the pilot
service applies them (scaled by its ``time_scale``), so tests can run the
full acquisition state machine in milliseconds.
"""

from __future__ import annotations

import abc

from repro.compute.cluster import ComputeCluster
from repro.pilot.description import PilotDescription


class ProvisionError(RuntimeError):
    """The backend rejected or failed the acquisition."""


class ResourcePlugin(abc.ABC):
    """Backend behaviour behind the pilot abstraction."""

    plugin_name = "base"

    @abc.abstractmethod
    def acquisition_delay(self, description: PilotDescription) -> float:
        """Seconds (unscaled) between submission and RUNNING.

        Called under the service's admission lock; plugins track their
        own occupancy here (e.g. the HPC queue head-of-line wait).
        Raises :class:`ProvisionError` for inadmissible requests.
        """

    @abc.abstractmethod
    def build_cluster(self, description: PilotDescription, pilot_id: str) -> ComputeCluster:
        """Materialise the resource as a compute cluster."""

    def release(self, description: PilotDescription, pilot_id: str) -> None:
        """Return capacity to the backend (default: nothing to do)."""

    def stats(self) -> dict:
        return {"plugin": self.plugin_name}
