"""Pilot-Edge reproduction: distributed resource management along the
edge-to-cloud continuum.

A from-scratch, laptop-scale reproduction of Luckow, Rattan & Jha,
"Pilot-Edge" (IPDPS workshops, 2021): the pilot abstraction, a FaaS
pipeline API, and every substrate the paper's evaluation relies on
(broker, task engine, parameter server, network emulation, ML workloads,
monitoring, and a discrete-event simulator for geographic experiments).

Quickstart::

    from repro import (
        PilotComputeService, PilotDescription, EdgeToCloudPipeline,
        PipelineConfig, make_block_producer, passthrough_processor,
    )

    pcs = PilotComputeService()
    edge = pcs.submit_pilot(PilotDescription(resource="ssh", site="edge", nodes=2))
    cloud = pcs.submit_pilot(PilotDescription(resource="cloud", site="lrz",
                                              instance_type="lrz.large"))
    pcs.wait_all()
    result = EdgeToCloudPipeline(
        pilot_edge=edge,
        pilot_cloud_processing=cloud,
        produce_function_handler=make_block_producer(points=100),
        process_cloud_function_handler=passthrough_processor,
        config=PipelineConfig(num_devices=2, messages_per_device=16),
    ).run()
    print(result.report.row())
"""

from repro.core import (
    EdgeToCloudPipeline,
    FunctionContext,
    PipelineConfig,
    PipelineResult,
    CloudCentricPlacement,
    EdgeCentricPlacement,
    HybridPlacement,
    CostBasedPlacement,
    AutoScaler,
    ScalingPolicy,
    EventBus,
    make_block_producer,
    make_model_processor,
    passthrough_processor,
    make_compression_edge_processor,
)
from repro.pilot import PilotComputeService, PilotDescription, PilotCompute, PilotState
from repro.compute import ResourceSpec, Client, ComputeCluster
from repro.params import ParameterServer, ParameterClient
from repro.netem import CELLULAR_EDGE, ContinuumTopology, LinkProfile, TRANSATLANTIC, LAN
from repro.monitoring import ThroughputReport, MetricsCollector
from repro.faults import FaultInjector, FaultyBroker

__version__ = "1.0.0"

__all__ = [
    "EdgeToCloudPipeline",
    "FunctionContext",
    "PipelineConfig",
    "PipelineResult",
    "CloudCentricPlacement",
    "EdgeCentricPlacement",
    "HybridPlacement",
    "CostBasedPlacement",
    "AutoScaler",
    "ScalingPolicy",
    "EventBus",
    "make_block_producer",
    "make_model_processor",
    "passthrough_processor",
    "make_compression_edge_processor",
    "PilotComputeService",
    "PilotDescription",
    "PilotCompute",
    "PilotState",
    "ResourceSpec",
    "Client",
    "ComputeCluster",
    "ParameterServer",
    "ParameterClient",
    "ContinuumTopology",
    "LinkProfile",
    "TRANSATLANTIC",
    "LAN",
    "CELLULAR_EDGE",
    "ThroughputReport",
    "MetricsCollector",
    "FaultInjector",
    "FaultyBroker",
    "__version__",
]
