"""Logging setup shared by all subsystems.

Every module obtains its logger through :func:`get_logger` so the whole
framework shares one configuration point. Logging stays silent by default
(library best practice); call :func:`configure` from an application or
example script to see output.
"""

from __future__ import annotations

import logging

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the framework root logger."""
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(level: int = logging.INFO) -> None:
    """Attach a stream handler to the framework root logger.

    Idempotent: calling it twice does not duplicate handlers.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
