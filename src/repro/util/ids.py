"""Compact, sortable identifier generation.

Every component in Pilot-Edge (pilots, tasks, messages, runs) carries a
unique identifier so that metrics and errors can be linked across the
producer, broker and consumer sides of a pipeline — the paper calls this
the "unique job identifier" (section II-B).

Identifiers are ``<prefix>-<counter>-<random>`` where the counter is a
process-wide monotonically increasing integer (so identifiers created by
one process sort in creation order) and the random suffix makes them
unique across processes.
"""

from __future__ import annotations

import itertools
import os
import random
import threading

#: Alphabet used for the random suffix. Chosen to be unambiguous when read
#: by humans in log output (no 0/O or 1/l).
ID_ALPHABET = "23456789abcdefghjkmnpqrstuvwxyz"

_counter = itertools.count()
_lock = threading.Lock()
_rng = random.Random(os.getpid() ^ int.from_bytes(os.urandom(4), "big"))


def _suffix(length: int = 6) -> str:
    with _lock:
        return "".join(_rng.choice(ID_ALPHABET) for _ in range(length))


def new_id(prefix: str) -> str:
    """Return a fresh identifier with the given *prefix*.

    >>> new_id("task").startswith("task-")
    True
    """
    if not prefix or not prefix.isidentifier():
        raise ValueError(f"prefix must be a non-empty identifier, got {prefix!r}")
    n = next(_counter)
    return f"{prefix}-{n:06d}-{_suffix()}"


def new_run_id() -> str:
    """Return a fresh identifier for an end-to-end pipeline run."""
    return new_id("run")
