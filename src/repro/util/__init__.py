"""Shared utilities for the Pilot-Edge reproduction.

Small, dependency-free helpers used by every subsystem: identifier
generation, monotonic timing, structured logging, argument validation and
bounded ring buffers.
"""

from repro.util.ids import new_id, new_run_id, ID_ALPHABET
from repro.util.timing import Stopwatch, Timer, monotonic_ms
from repro.util.validation import (
    ValidationError,
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_one_of,
)
from repro.util.ringbuffer import RingBuffer
from repro.util.rate import RateEstimator, EWMA

__all__ = [
    "new_id",
    "new_run_id",
    "ID_ALPHABET",
    "Stopwatch",
    "Timer",
    "monotonic_ms",
    "ValidationError",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_one_of",
    "RingBuffer",
    "RateEstimator",
    "EWMA",
]
