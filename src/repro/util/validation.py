"""Argument validation helpers with consistent error messages.

The public API surfaces of every subsystem validate their inputs eagerly
so misconfiguration fails at construction time, not deep inside a worker
thread.
"""

from __future__ import annotations

from typing import Any, Iterable


class ValidationError(ValueError):
    """Raised when a configuration or API argument is invalid."""


def check_positive(name: str, value: float) -> float:
    """Ensure ``value > 0``; return it for chaining."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Ensure ``value >= 0``; return it for chaining."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Ensure ``lo <= value <= hi``; return it for chaining."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if not (lo <= value <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type | tuple) -> Any:
    """Ensure *value* is an instance of *expected*; return it for chaining."""
    if not isinstance(value, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise ValidationError(
            f"{name} must be {names}, got {type(value).__name__}"
        )
    return value


def check_one_of(name: str, value: Any, allowed: Iterable) -> Any:
    """Ensure *value* is one of *allowed*; return it for chaining."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {allowed}, got {value!r}")
    return value
