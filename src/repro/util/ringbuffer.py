"""A fixed-capacity ring buffer.

Used by the monitoring subsystem to keep bounded sliding windows of
samples without unbounded memory growth during long streaming runs.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.util.validation import check_positive


class RingBuffer:
    """Bounded FIFO that overwrites its oldest element when full.

    >>> rb = RingBuffer(3)
    >>> for i in range(5):
    ...     rb.append(i)
    >>> list(rb)
    [2, 3, 4]
    """

    __slots__ = ("_capacity", "_data", "_start", "_size")

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self._capacity = int(capacity)
        self._data: list = [None] * self._capacity
        self._start = 0
        self._size = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self._capacity

    def append(self, item: Any) -> None:
        """Add *item*, evicting the oldest element when at capacity."""
        end = (self._start + self._size) % self._capacity
        self._data[end] = item
        if self._size == self._capacity:
            self._start = (self._start + 1) % self._capacity
        else:
            self._size += 1

    def extend(self, items: Sequence) -> None:
        for item in items:
            self.append(item)

    def clear(self) -> None:
        self._data = [None] * self._capacity
        self._start = 0
        self._size = 0

    def __getitem__(self, index: int) -> Any:
        if not -self._size <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        if index < 0:
            index += self._size
        return self._data[(self._start + index) % self._capacity]

    def __iter__(self) -> Iterator:
        for i in range(self._size):
            yield self._data[(self._start + i) % self._capacity]

    def to_list(self) -> list:
        return list(self)

    def __repr__(self) -> str:
        return f"RingBuffer(capacity={self._capacity}, size={self._size})"
