"""Monotonic timing helpers.

All latency measurements in the framework use :func:`time.monotonic` —
wall-clock time is only ever used for human-readable log timestamps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def monotonic_ms() -> float:
    """Current monotonic time in milliseconds."""
    return time.monotonic() * 1000.0


class Stopwatch:
    """Measure elapsed time, usable as a context manager.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._stop: float | None = None

    def start(self) -> "Stopwatch":
        self._start = time.monotonic()
        self._stop = None
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch was never started")
        self._stop = time.monotonic()
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None and self._stop is None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds; live-updating while the stopwatch runs."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.monotonic()
        return end - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class Timer:
    """Accumulating timer: aggregates many timed sections.

    Useful for building per-stage cost models in the simulator: call
    :meth:`time` around each repetition, then read :attr:`mean`.
    """

    total: float = 0.0
    count: int = 0
    min: float = float("inf")
    max: float = 0.0
    _laps: list = field(default_factory=list, repr=False)

    def add(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        self._laps.append(seconds)

    def time(self):
        """Context manager recording one timed section."""
        return _TimerSection(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def laps(self) -> tuple:
        return tuple(self._laps)


class _TimerSection:
    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerSection":
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(time.monotonic() - self._t0)
