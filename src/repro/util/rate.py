"""Online rate and smoothing estimators.

These feed the autoscaling policy (section II-D of the paper: respond to
"increased data rates" at runtime) and the monitoring reports.
"""

from __future__ import annotations

import time

from repro.util.ringbuffer import RingBuffer
from repro.util.validation import check_in_range, check_positive


class EWMA:
    """Exponentially-weighted moving average.

    ``alpha`` is the weight of the newest sample; an ``alpha`` of 1.0
    tracks the raw signal, small values smooth aggressively.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        check_in_range("alpha", alpha, 0.0, 1.0)
        self._alpha = float(alpha)
        self._value: float | None = None

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self._alpha * (float(sample) - self._value)
        return self._value

    @property
    def value(self) -> float | None:
        return self._value

    def reset(self) -> None:
        self._value = None


class RateEstimator:
    """Sliding-window event-rate estimator (events per second).

    Events are recorded with :meth:`record`; :meth:`rate` reports the rate
    over the last ``window`` seconds. A custom ``clock`` can be supplied
    for use inside the discrete-event simulator.
    """

    def __init__(self, window: float = 10.0, capacity: int = 4096, clock=None) -> None:
        check_positive("window", window)
        self._window = float(window)
        self._events = RingBuffer(capacity)
        self._clock = clock if clock is not None else time.monotonic
        self._total = 0

    def record(self, count: float = 1.0, at: float | None = None) -> None:
        """Record *count* events at time *at* (defaults to now)."""
        t = self._clock() if at is None else at
        self._events.append((t, float(count)))
        self._total += count

    @property
    def total(self) -> float:
        """Total events recorded over the estimator's lifetime."""
        return self._total

    def rate(self, now: float | None = None) -> float:
        """Events per second over the trailing window."""
        now = self._clock() if now is None else now
        cutoff = now - self._window
        in_window = [(t, c) for t, c in self._events if t >= cutoff]
        if not in_window:
            return 0.0
        count = sum(c for _, c in in_window)
        earliest = min(t for t, _ in in_window)
        # Normalise by the observed span (bounded by the window) so early
        # estimates are not biased low before a full window has elapsed.
        span = min(self._window, max(now - earliest, 1e-3))
        return count / span
