"""Binary wire format for data blocks.

The paper reports message sizes assuming 8 bytes per serialized value
(float64). We frame blocks with a small fixed header carrying a magic
number, the block shape and a CRC32 of the payload so corrupt frames are
detected at the consumer rather than corrupting model state.

Layout (little-endian)::

    offset  size  field
    0       4     magic  b"PEB1" (raw) or b"PEBZ" (zlib-compressed payload)
    4       4     points (uint32)
    8       4     features (uint32)
    12      4     crc32 of the *uncompressed* payload (uint32)
    16      ...   payload: points*features float64, C order
                  (zlib stream when magic is PEBZ)

Compressed frames implement the paper's "data compression step before
the data transfer" losslessly; :func:`decode_block` dispatches on the
magic, so producers can switch compression on without touching
consumers.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

MAGIC = b"PEB1"
MAGIC_COMPRESSED = b"PEBZ"
HEADER_SIZE = 16
BYTES_PER_VALUE = 8

_HEADER = struct.Struct("<4sIII")


class SerdeError(ValueError):
    """Raised when a frame cannot be decoded."""


def encoded_size(points: int, features: int) -> int:
    """Wire size in bytes of a ``points x features`` block."""
    return HEADER_SIZE + points * features * BYTES_PER_VALUE


def encode_block(block: np.ndarray, compress: bool = False, level: int = 1) -> bytes:
    """Serialize a 2-D float array into a framed byte string.

    With ``compress=True`` the payload is zlib-deflated (``level`` 1-9;
    level 1 is the streaming-friendly default: most of the win at a
    fraction of the CPU).
    """
    arr = np.ascontiguousarray(block, dtype=np.float64)
    if arr.ndim != 2:
        raise SerdeError(f"block must be 2-D, got shape {arr.shape}")
    raw = arr.tobytes(order="C")
    crc = zlib.crc32(raw)
    if compress:
        payload = zlib.compress(raw, level)
        header = _HEADER.pack(MAGIC_COMPRESSED, arr.shape[0], arr.shape[1], crc)
    else:
        payload = raw
        header = _HEADER.pack(MAGIC, arr.shape[0], arr.shape[1], crc)
    return header + payload


def decode_block(frame: bytes) -> np.ndarray:
    """Decode a framed byte string back into a ``(points, features)`` array.

    Handles both raw and compressed frames (dispatch on the magic).
    Raises :class:`SerdeError` on truncated frames, bad magic or CRC
    mismatch.
    """
    if len(frame) < HEADER_SIZE:
        raise SerdeError(f"frame too short: {len(frame)} bytes")
    magic, points, features, crc = _HEADER.unpack_from(frame, 0)
    if magic == MAGIC:
        expected = HEADER_SIZE + points * features * BYTES_PER_VALUE
        if len(frame) != expected:
            raise SerdeError(
                f"frame length {len(frame)} does not match header ({expected} expected)"
            )
        payload = frame[HEADER_SIZE:]
    elif magic == MAGIC_COMPRESSED:
        try:
            payload = zlib.decompress(frame[HEADER_SIZE:])
        except zlib.error as exc:
            raise SerdeError(f"corrupt compressed payload: {exc}") from exc
        if len(payload) != points * features * BYTES_PER_VALUE:
            raise SerdeError("decompressed payload does not match header shape")
    else:
        raise SerdeError(f"bad magic {magic!r}")
    if zlib.crc32(payload) != crc:
        raise SerdeError("payload CRC mismatch")
    arr = np.frombuffer(payload, dtype=np.float64).reshape(points, features)
    return arr.copy()  # decouple from the immutable buffer
