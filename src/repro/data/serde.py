"""Binary wire format for data blocks.

The paper reports message sizes assuming 8 bytes per serialized value
(float64). We frame blocks with a small fixed header carrying a magic
number, the block shape and a CRC32 of the payload so corrupt frames are
detected at the consumer rather than corrupting model state.

Layout (little-endian)::

    offset  size  field
    0       4     magic  b"PEB1" (raw) or b"PEBZ" (zlib-compressed payload)
    4       4     points (uint32)
    8       4     features (uint32)
    12      4     crc32 of the *uncompressed* payload (uint32)
    16      ...   payload: points*features float64, C order
                  (zlib stream when magic is PEBZ)

Compressed frames implement the paper's "data compression step before
the data transfer" losslessly; :func:`decode_block` dispatches on the
magic, so producers can switch compression on without touching
consumers.

Copy discipline: :func:`encode_block` writes the array straight into one
preallocated frame buffer (no ``header + payload`` concatenation copy),
and :func:`decode_block` is zero-copy by default — it returns a
read-only :func:`np.frombuffer` view over the frame's payload bytes.
Pass ``copy=True`` when the caller needs to mutate the result.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

MAGIC = b"PEB1"
MAGIC_COMPRESSED = b"PEBZ"
HEADER_SIZE = 16
BYTES_PER_VALUE = 8

_HEADER = struct.Struct("<4sIII")


class SerdeError(ValueError):
    """Raised when a frame cannot be decoded."""


def encoded_size(points: int, features: int) -> int:
    """Wire size in bytes of a ``points x features`` block."""
    return HEADER_SIZE + points * features * BYTES_PER_VALUE


def encode_block(block: np.ndarray, compress: bool = False, level: int = 1) -> bytes:
    """Serialize a 2-D float array into a framed byte string.

    With ``compress=True`` the payload is zlib-deflated (``level`` 1-9;
    level 1 is the streaming-friendly default: most of the win at a
    fraction of the CPU).

    The frame is assembled in one preallocated buffer: the array is
    copied exactly once, directly into place after the header.
    """
    arr = np.ascontiguousarray(block, dtype=np.float64)
    if arr.ndim != 2:
        raise SerdeError(f"block must be 2-D, got shape {arr.shape}")
    if compress:
        raw = arr.tobytes(order="C")
        crc = zlib.crc32(raw)
        payload = zlib.compress(raw, level)
        frame = bytearray(HEADER_SIZE + len(payload))
        _HEADER.pack_into(frame, 0, MAGIC_COMPRESSED, arr.shape[0], arr.shape[1], crc)
        frame[HEADER_SIZE:] = payload
        return bytes(frame)
    frame = bytearray(HEADER_SIZE + arr.nbytes)
    # Fill the payload region in place: the sole copy of the block data.
    np.frombuffer(frame, dtype=np.float64, offset=HEADER_SIZE)[:] = arr.reshape(-1)
    crc = zlib.crc32(memoryview(frame)[HEADER_SIZE:])
    _HEADER.pack_into(frame, 0, MAGIC, arr.shape[0], arr.shape[1], crc)
    return bytes(frame)


def decode_block(frame: bytes, copy: bool = False, verify: bool = True) -> np.ndarray:
    """Decode a framed byte string back into a ``(points, features)`` array.

    Handles both raw and compressed frames (dispatch on the magic).
    Raises :class:`SerdeError` on truncated frames, bad magic or CRC
    mismatch.

    By default the returned array is a **read-only zero-copy view** over
    the frame's payload bytes (compressed frames decompress into a fresh
    buffer, but still skip the final defensive copy). Pass ``copy=True``
    for a writable, independent array.

    ``verify=False`` skips the payload CRC check (header and length
    validation still apply). The CRC scan is the dominant decode cost
    for large raw frames, and re-verifying is redundant when the frame
    never left process memory or was already verified upstream — the
    same trade Kafka exposes as the consumer's ``check.crcs`` knob.
    """
    if len(frame) < HEADER_SIZE:
        raise SerdeError(f"frame too short: {len(frame)} bytes")
    magic, points, features, crc = _HEADER.unpack_from(frame, 0)
    if magic == MAGIC:
        expected = HEADER_SIZE + points * features * BYTES_PER_VALUE
        if len(frame) != expected:
            raise SerdeError(
                f"frame length {len(frame)} does not match header ({expected} expected)"
            )
        payload = memoryview(frame)[HEADER_SIZE:]
    elif magic == MAGIC_COMPRESSED:
        try:
            payload = zlib.decompress(memoryview(frame)[HEADER_SIZE:])
        except zlib.error as exc:
            raise SerdeError(f"corrupt compressed payload: {exc}") from exc
        if len(payload) != points * features * BYTES_PER_VALUE:
            raise SerdeError("decompressed payload does not match header shape")
    else:
        raise SerdeError(f"bad magic {magic!r}")
    if verify and zlib.crc32(payload) != crc:
        raise SerdeError("payload CRC mismatch")
    arr = np.frombuffer(payload, dtype=np.float64)
    if copy:
        return arr.reshape(points, features).copy()
    # frombuffer over a writable source (e.g. bytearray) yields a
    # writable view; lock it so the shared frame cannot be corrupted.
    arr.flags.writeable = False
    return arr.reshape(points, features)


def decode_block_many(frames, copy: bool = False, verify: bool = True) -> list[np.ndarray]:
    """Decode a batch of frames into a list of ``(points, features)`` arrays.

    The batched consume path's entry point: one call per polled record
    batch instead of one per message. Decoding is per-frame (each frame
    carries its own header and CRC), so a corrupt frame raises
    :class:`SerdeError` exactly as :func:`decode_block` would — callers
    that need to poison-pill single messages should fall back to
    per-frame decoding on error. ``verify`` is forwarded to
    :func:`decode_block`.
    """
    return [decode_block(frame, copy=copy, verify=verify) for frame in frames]


def stack_blocks(blocks) -> tuple[np.ndarray, np.ndarray]:
    """Stack homogeneous ``(n_i, d)`` blocks into one matrix plus row offsets.

    Returns ``(matrix, offsets)`` where ``matrix`` is the ``(sum(n_i), d)``
    row-wise concatenation and ``offsets`` is an ``int64`` array of
    ``len(blocks) + 1`` row boundaries (``matrix[offsets[i]:offsets[i+1]]``
    is block *i*). This is what lets a batch of polled messages hit a
    model's vectorized ``decision_function`` in ONE call; pair with
    :func:`split_rows` to fan per-row results back out per message.

    A single block is passed through without copying.
    """
    if not blocks:
        raise SerdeError("stack_blocks() requires at least one block")
    arrs = [np.asarray(b) for b in blocks]
    for arr in arrs:
        if arr.ndim != 2:
            raise SerdeError(f"blocks must be 2-D, got shape {arr.shape}")
        if arr.shape[1] != arrs[0].shape[1]:
            raise SerdeError(
                f"blocks must share a feature count: {arr.shape[1]} != {arrs[0].shape[1]}"
            )
    offsets = np.zeros(len(arrs) + 1, dtype=np.int64)
    np.cumsum([a.shape[0] for a in arrs], out=offsets[1:])
    if len(arrs) == 1:
        return arrs[0], offsets
    return np.concatenate(arrs, axis=0), offsets


def split_rows(stacked: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Invert :func:`stack_blocks`: slice row ranges back out as views.

    Works on the stacked matrix itself or on anything row-aligned with it
    (per-row scores, labels) — each returned array is a zero-copy slice
    ``stacked[offsets[i]:offsets[i+1]]``.
    """
    return [stacked[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]
