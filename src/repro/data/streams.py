"""Stream sources layered on the block generator.

``BlockStream`` is the production-rate-controlled source used by the
``produce_edge`` stage; ``ReplayStream`` replays a recorded sequence of
blocks (for exactly-reproducible integration tests); ``PoissonArrivals``
models bursty sensor arrivals for the dynamism experiments.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.data.generator import DataBlockGenerator, GeneratorConfig
from repro.util.validation import check_non_negative, check_positive


class BlockStream:
    """Finite stream of generated blocks with an optional pacing hint.

    ``interval`` is a *hint* consumed by the pipeline driver (it decides
    whether to sleep in live mode or advance virtual time in simulation
    mode); the stream itself never sleeps.
    """

    def __init__(
        self,
        generator: DataBlockGenerator | None = None,
        count: int = 512,
        interval: float = 0.0,
        **generator_overrides,
    ) -> None:
        check_positive("count", count)
        check_non_negative("interval", interval)
        if generator is None:
            generator = DataBlockGenerator(GeneratorConfig(**generator_overrides))
        self._generator = generator
        self._count = int(count)
        self._interval = float(interval)
        self._emitted = 0

    @property
    def generator(self) -> DataBlockGenerator:
        return self._generator

    @property
    def count(self) -> int:
        return self._count

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def emitted(self) -> int:
        return self._emitted

    @property
    def exhausted(self) -> bool:
        return self._emitted >= self._count

    def __iter__(self) -> Iterator[np.ndarray]:
        while not self.exhausted:
            yield self.next()

    def next(self) -> np.ndarray:
        if self.exhausted:
            raise StopIteration("stream exhausted")
        self._emitted += 1
        return self._generator.next_block()


class ReplayStream:
    """Replays a fixed sequence of pre-generated blocks."""

    def __init__(self, blocks: Sequence[np.ndarray], interval: float = 0.0) -> None:
        if not blocks:
            raise ValueError("ReplayStream needs at least one block")
        check_non_negative("interval", interval)
        self._blocks = [np.asarray(b) for b in blocks]
        self._interval = float(interval)
        self._emitted = 0

    @property
    def count(self) -> int:
        return len(self._blocks)

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def emitted(self) -> int:
        return self._emitted

    @property
    def exhausted(self) -> bool:
        return self._emitted >= len(self._blocks)

    def next(self) -> np.ndarray:
        if self.exhausted:
            raise StopIteration("stream exhausted")
        block = self._blocks[self._emitted]
        self._emitted += 1
        return block

    def __iter__(self) -> Iterator[np.ndarray]:
        while not self.exhausted:
            yield self.next()


class PoissonArrivals:
    """Generates exponential inter-arrival times for bursty sources.

    Used by the dynamism experiments: a seasonal load peak is modelled by
    raising ``rate`` mid-run (see ``examples/dynamic_scaling.py``).
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        check_positive("rate", rate)
        self._rate = float(rate)
        self._rng = np.random.default_rng(seed)

    @property
    def rate(self) -> float:
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        check_positive("rate", value)
        self._rate = float(value)

    def next_interval(self) -> float:
        """Seconds until the next arrival."""
        return float(self._rng.exponential(1.0 / self._rate))

    def intervals(self, count: int) -> np.ndarray:
        check_positive("count", count)
        return self._rng.exponential(1.0 / self._rate, size=int(count))
