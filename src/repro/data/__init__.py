"""Synthetic data generation and wire serialization.

This package reproduces the *Mini-App data generator* the paper uses
(Luckow & Jha, StreamML 2019): clustered Gaussian point clouds with
injected outliers, framed into messages of ``points x features`` float64
values (8 bytes per value) — the paper's message sizes of 25 to 10,000
points with 32 features correspond to 7 KB to 2.6 MB on the wire.
"""

from repro.data.generator import DataBlockGenerator, GeneratorConfig
from repro.data.serde import (
    encode_block,
    decode_block,
    decode_block_many,
    stack_blocks,
    split_rows,
    encoded_size,
    HEADER_SIZE,
    BYTES_PER_VALUE,
)
from repro.data.streams import BlockStream, ReplayStream, PoissonArrivals

__all__ = [
    "DataBlockGenerator",
    "GeneratorConfig",
    "encode_block",
    "decode_block",
    "decode_block_many",
    "stack_blocks",
    "split_rows",
    "encoded_size",
    "HEADER_SIZE",
    "BYTES_PER_VALUE",
    "BlockStream",
    "ReplayStream",
    "PoissonArrivals",
]
