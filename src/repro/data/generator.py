"""Mini-App synthetic data generator.

The paper's experiments stream synthetic sensor blocks produced by the
Mini-App data generator [Luckow & Jha 2019]: each *block* (one broker
message) holds ``points`` rows of ``features`` float64 values drawn from a
mixture of Gaussian clusters, with a configurable fraction of outlier rows
drawn far outside the cluster envelope. The downstream ML workloads
(k-means, isolation forest, auto-encoder) perform streaming outlier
detection on these blocks.

The generator is deterministic given a seed, so experiments are exactly
repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import (
    ValidationError,
    check_in_range,
    check_positive,
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration of the synthetic block generator.

    Parameters mirror the paper's experimental setup: ``features`` defaults
    to 32 and ``clusters`` to 25 (the k-means cluster count used
    throughout the evaluation).
    """

    points: int = 1000
    features: int = 32
    clusters: int = 25
    outlier_fraction: float = 0.01
    cluster_std: float = 1.0
    #: Cluster centres are sampled uniformly in ``[-center_box, center_box]``.
    center_box: float = 10.0
    #: Outliers are placed at this multiple of the centre envelope.
    outlier_scale: float = 5.0
    seed: int = 42

    def __post_init__(self) -> None:
        check_positive("points", self.points)
        check_positive("features", self.features)
        check_positive("clusters", self.clusters)
        check_in_range("outlier_fraction", self.outlier_fraction, 0.0, 0.5)
        check_positive("cluster_std", self.cluster_std)
        check_positive("center_box", self.center_box)
        check_positive("outlier_scale", self.outlier_scale)
        if self.clusters > self.points:
            raise ValidationError(
                f"clusters ({self.clusters}) cannot exceed points ({self.points})"
            )


class DataBlockGenerator:
    """Produces synthetic data blocks for streaming experiments.

    Each call to :meth:`next_block` returns a ``(points, features)``
    float64 array. The cluster centres are fixed for the generator's
    lifetime (they model a stable underlying process); the per-block noise
    and outlier positions vary block to block.

    >>> gen = DataBlockGenerator(GeneratorConfig(points=100, features=8))
    >>> gen.next_block().shape
    (100, 8)
    """

    def __init__(self, config: GeneratorConfig | None = None, **overrides) -> None:
        if config is None:
            config = GeneratorConfig(**overrides)
        elif overrides:
            raise ValidationError("pass either a GeneratorConfig or keyword overrides, not both")
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        self._centers = self._rng.uniform(
            -config.center_box, config.center_box, size=(config.clusters, config.features)
        )
        self._blocks_produced = 0

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    @property
    def centers(self) -> np.ndarray:
        """The true cluster centres (read-only view)."""
        view = self._centers.view()
        view.flags.writeable = False
        return view

    @property
    def blocks_produced(self) -> int:
        return self._blocks_produced

    def next_block(self, with_labels: bool = False):
        """Generate the next data block.

        Returns the block array, or ``(block, labels)`` when
        ``with_labels`` is true — labels are 1 for injected outliers and 0
        for inliers, enabling detection-quality evaluation.
        """
        cfg = self._config
        n_outliers = int(round(cfg.points * cfg.outlier_fraction))
        n_inliers = cfg.points - n_outliers

        assignment = self._rng.integers(0, cfg.clusters, size=n_inliers)
        inliers = self._centers[assignment] + self._rng.normal(
            0.0, cfg.cluster_std, size=(n_inliers, cfg.features)
        )

        if n_outliers:
            # Outliers live on a shell far outside the cluster envelope.
            directions = self._rng.normal(size=(n_outliers, cfg.features))
            norms = np.linalg.norm(directions, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            radius = cfg.center_box * cfg.outlier_scale
            outliers = directions / norms * radius
            block = np.vstack([inliers, outliers])
            labels = np.concatenate(
                [np.zeros(n_inliers, dtype=np.int8), np.ones(n_outliers, dtype=np.int8)]
            )
        else:
            block = inliers
            labels = np.zeros(n_inliers, dtype=np.int8)

        # Shuffle so outliers are not trivially at the end of the block.
        order = self._rng.permutation(cfg.points)
        block = np.ascontiguousarray(block[order])
        labels = labels[order]

        self._blocks_produced += 1
        if with_labels:
            return block, labels
        return block

    def blocks(self, count: int, with_labels: bool = False):
        """Yield *count* consecutive blocks."""
        check_positive("count", count)
        for _ in range(int(count)):
            yield self.next_block(with_labels=with_labels)

    def message_size_bytes(self) -> int:
        """Serialized size of one block, per the wire format in serde."""
        from repro.data.serde import encoded_size

        return encoded_size(self._config.points, self._config.features)
