"""A small discrete-event simulation engine.

Classic event-heap design: callbacks are scheduled at absolute virtual
times and executed in time order (FIFO within equal times). On top of the
raw engine, :class:`FifoServer` models a station with ``capacity``
parallel servers and a FIFO queue — the building block for links
(capacity 1, service time = serialization delay) and consumer pools
(capacity n, service time = compute cost).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable

from repro.util.validation import check_non_negative, check_positive


class SimProcessError(RuntimeError):
    """An event callback raised; simulation state is undefined beyond it."""


class Simulator:
    """Event-heap simulator with virtual time."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` *delay* virtual seconds from now."""
        check_non_negative("delay", delay)
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), callback, args))

    def schedule_at(self, when: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at absolute virtual time *when*."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        heapq.heappush(self._heap, (when, next(self._seq), callback, args))

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Execute events until the heap drains (or *until*/*max_events*).

        Returns the final virtual time.
        """
        check_positive("max_events", max_events)
        executed = 0
        while self._heap:
            when, _, callback, args = self._heap[0]
            if until is not None and when > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            self._now = when
            try:
                callback(*args)
            except Exception as exc:
                raise SimProcessError(f"event callback failed at t={when}: {exc!r}") from exc
            executed += 1
            self.events_executed += 1
            if executed >= max_events:
                raise SimProcessError(
                    f"exceeded {max_events} events; likely a scheduling loop"
                )
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)


class FifoServer:
    """A station with *capacity* parallel servers and an unbounded queue.

    Jobs are (service_time, done_callback) pairs; completion order within
    the station is FIFO by arrival. Tracks utilisation (busy seconds per
    server) and, optionally, energy (busy seconds x ``power_watts``).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        name: str = "server",
        power_watts: float = 0.0,
    ) -> None:
        check_positive("capacity", capacity)
        check_non_negative("power_watts", power_watts)
        self._sim = sim
        self.capacity = int(capacity)
        self.name = name
        self.power_watts = float(power_watts)
        # deque: FIFO dispatch pops the head O(1) instead of list.pop(0)'s
        # O(n) shift — long queues are the norm in overload scenarios.
        self._queue: deque = deque()
        self._busy = 0
        self.jobs_served = 0
        self.busy_seconds = 0.0
        self.total_wait_seconds = 0.0

    def submit(self, service_time: float, done: Callable | None = None) -> None:
        """Enqueue a job needing *service_time* seconds of one server."""
        check_non_negative("service_time", service_time)
        self._queue.append((self._sim.now, service_time, done))
        self._try_start()

    def _try_start(self) -> None:
        while self._busy < self.capacity and self._queue:
            arrived, service_time, done = self._queue.popleft()
            self._busy += 1
            self.total_wait_seconds += self._sim.now - arrived
            self._sim.schedule(service_time, self._finish, service_time, done)

    def _finish(self, service_time: float, done: Callable | None) -> None:
        self._busy -= 1
        self.jobs_served += 1
        self.busy_seconds += service_time
        if done is not None:
            done()
        self._try_start()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def energy_joules(self) -> float:
        """Busy-time energy (idle draw is not modelled)."""
        return self.busy_seconds * self.power_watts

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of servers busy over *elapsed* virtual seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * self.capacity))

    def stats(self) -> dict:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "jobs_served": self.jobs_served,
            "busy_seconds": round(self.busy_seconds, 6),
            "mean_wait_s": round(
                self.total_wait_seconds / self.jobs_served, 6
            )
            if self.jobs_served
            else 0.0,
            "queue_length": self.queue_length,
            "energy_joules": round(self.energy_joules, 3),
        }
