"""Discrete-event simulation of the edge-to-cloud pipeline.

The paper's geographic experiments run 512-message streams over a
140–160 ms / 60–100 Mbit/s transatlantic link — minutes of wall-clock
per configuration. This package replays the *same pipeline structure*
(devices -> uplink -> broker -> downlink -> consumers) in virtual time:

- :mod:`repro.sim.engine` — a general discrete-event engine (event heap,
  processes, FIFO resources),
- :mod:`repro.sim.costmodel` — per-stage compute-cost models *calibrated
  by timing the real implementations* (the ML models from
  :mod:`repro.ml`), so simulated compute costs are measurements, not
  guesses,
- :mod:`repro.sim.pipeline` — the simulated pipeline producing the same
  :class:`~repro.monitoring.report.ThroughputReport` as a live run,
- energy accounting per station (a paper future-work item) for the
  energy ablation bench.
"""

from repro.sim.engine import Simulator, SimProcessError, FifoServer
from repro.sim.costmodel import StageCostModel, calibrate_model_cost, calibrate_produce_cost
from repro.sim.pipeline import SimulatedPipeline, SimConfig, SimResult
from repro.sim.multitier import MultiTierSimulation, MultiTierResult, Tier

__all__ = [
    "MultiTierSimulation",
    "MultiTierResult",
    "Tier",
    "Simulator",
    "SimProcessError",
    "FifoServer",
    "StageCostModel",
    "calibrate_model_cost",
    "calibrate_produce_cost",
    "SimulatedPipeline",
    "SimConfig",
    "SimResult",
]
