"""Multi-tier pipeline simulation (paper future work).

The paper's implementation "is limited to two layers: edge and cloud";
its future work proposes arbitrary resource topologies. This module
generalises :class:`~repro.sim.pipeline.SimulatedPipeline` to an
arbitrary chain of tiers::

    devices -> [tier_1] -> [tier_2] -> ... -> [tier_n]

Each :class:`Tier` has a link from its predecessor, a processing stage
(optional — pure relay tiers just forward), and a data-reduction factor
(modelling the pre-aggregation/compression the paper recommends for
bandwidth-bound hops). Message traces carry per-tier stamps so the same
reporting machinery applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.monitoring.collector import MetricsCollector
from repro.monitoring.report import ThroughputReport
from repro.netem.link import LOOPBACK, LinkProfile
from repro.sim.costmodel import StageCostModel
from repro.sim.engine import FifoServer, Simulator
from repro.util.ids import new_run_id
from repro.util.validation import ValidationError, check_in_range, check_positive


@dataclass(frozen=True)
class Tier:
    """One stage of the chain.

    Parameters
    ----------
    name:
        Tier label (shows up in traces and station stats).
    link:
        Link profile from the previous tier (or from the devices for the
        first tier).
    servers:
        Parallel processing slots at this tier.
    process_cost:
        Per-message compute cost (None = pure relay).
    reduction:
        Output/input size ratio of this tier's processing (1.0 = none);
        downstream links carry the reduced size.
    power_watts:
        Busy-power rating for energy accounting.
    """

    name: str
    link: LinkProfile = LOOPBACK
    servers: int = 1
    process_cost: StageCostModel | None = None
    reduction: float = 1.0
    power_watts: float = 50.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("tier name must be non-empty")
        check_positive("servers", self.servers)
        check_in_range("reduction", self.reduction, 0.0, 1.0)


@dataclass
class MultiTierResult:
    run_id: str
    report: ThroughputReport
    virtual_duration_s: float
    tier_stats: dict = field(default_factory=dict)
    energy_joules: dict = field(default_factory=dict)

    @property
    def total_energy_joules(self) -> float:
        return sum(self.energy_joules.values())


class MultiTierSimulation:
    """Simulates a device fleet streaming through a chain of tiers."""

    def __init__(
        self,
        tiers: list[Tier],
        num_devices: int = 4,
        messages_per_device: int = 64,
        message_bytes: int = 256_000,
        produce_cost: StageCostModel | None = None,
        seed: int = 0,
    ) -> None:
        if not tiers:
            raise ValidationError("at least one tier is required")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate tier names: {names}")
        check_positive("num_devices", num_devices)
        check_positive("messages_per_device", messages_per_device)
        check_positive("message_bytes", message_bytes)
        self.tiers = list(tiers)
        self.num_devices = int(num_devices)
        self.messages_per_device = int(messages_per_device)
        self.message_bytes = int(message_bytes)
        self.produce_cost = produce_cost or StageCostModel("produce", 1e-4)
        self.run_id = new_run_id()
        self._rng = np.random.default_rng(seed)
        self._sim = Simulator()
        self._collector = MetricsCollector(self.run_id)
        self._producers = FifoServer(
            self._sim, capacity=self.num_devices, name="devices", power_watts=4.0
        )
        self._links = [
            FifoServer(self._sim, capacity=1, name=f"link->{t.name}") for t in self.tiers
        ]
        self._stations = [
            FifoServer(self._sim, capacity=t.servers, name=t.name, power_watts=t.power_watts)
            for t in self.tiers
        ]

    # -- message lifecycle ----------------------------------------------------

    def _emit(self, device: int, seq: int) -> None:
        if seq >= self.messages_per_device:
            return
        cost = self.produce_cost.sample(self._rng)
        self._producers.submit(cost, lambda: self._produced(device, seq))

    def _produced(self, device: int, seq: int) -> None:
        message_id = f"{self.run_id}/d{device}/m{seq}"
        self._collector.stamp(
            message_id, "produce", self._sim.now, nbytes=self.message_bytes,
            partition=device, site="devices",
        )
        self._send_to_tier(message_id, 0, self.message_bytes)
        self._emit(device, seq + 1)

    def _link_time(self, profile: LinkProfile, nbytes: int) -> tuple:
        bw = self._rng.uniform(profile.bandwidth_mbps_min, profile.bandwidth_mbps_max)
        rtt = self._rng.uniform(profile.rtt_ms_min, profile.rtt_ms_max)
        return (nbytes * 8.0) / (bw * 1e6), rtt / 2000.0

    def _send_to_tier(self, message_id: str, index: int, nbytes: int) -> None:
        tier = self.tiers[index]
        ser, lat = self._link_time(tier.link, nbytes)
        self._links[index].submit(
            ser,
            lambda: self._sim.schedule(lat, self._arrive, message_id, index, nbytes),
        )

    def _arrive(self, message_id: str, index: int, nbytes: int) -> None:
        tier = self.tiers[index]
        now = self._sim.now
        self._collector.stamp(message_id, f"arrive:{tier.name}", now, site=tier.name)
        if index == 0:
            self._collector.stamp(message_id, "broker_in", now, site=tier.name)
        cost = 0.0 if tier.process_cost is None else tier.process_cost.sample(self._rng)

        def done() -> None:
            end = self._sim.now
            out_bytes = max(1, int(nbytes * tier.reduction))
            self._collector.stamp(
                message_id, f"processed:{tier.name}", end, site=tier.name
            )
            if index + 1 < len(self.tiers):
                self._send_to_tier(message_id, index + 1, out_bytes)
            else:
                # Final tier: close the canonical trace stages so the
                # standard report applies.
                self._collector.stamp(message_id, "dequeue", end, site=tier.name)
                self._collector.stamp(
                    message_id, "consume", end, nbytes=self.message_bytes, site=tier.name
                )
                self._collector.stamp(message_id, "process_start", end - cost, site=tier.name)
                self._collector.stamp(
                    message_id, "process_end", end, nbytes=self.message_bytes, site=tier.name
                )

        self._stations[index].submit(cost, done)

    # -- run -----------------------------------------------------------------------

    def run(self) -> MultiTierResult:
        for device in range(self.num_devices):
            self._sim.schedule(0.0, self._emit, device, 0)
        duration = self._sim.run()
        return MultiTierResult(
            run_id=self.run_id,
            report=ThroughputReport.from_collector(self._collector),
            virtual_duration_s=duration,
            tier_stats={
                s.name: s.stats() for s in [self._producers, *self._links, *self._stations]
            },
            energy_joules={
                s.name: s.energy_joules for s in [self._producers, *self._stations]
            },
        )
