"""Simulated edge-to-cloud pipeline.

Replays the live pipeline's structure in virtual time on the DES engine:

- one *producer process* per device emits messages back-to-back (each
  paying the calibrated produce cost),
- the edge->broker **uplink** is a capacity-1 FIFO server whose service
  time is the message's serialization delay at the link's sampled
  bandwidth; one-way propagation latency is added after service (latency
  does not occupy the pipe),
- the broker appends instantly (the paper's Fig. 2 shows the broker is
  never the bottleneck at these scales) and the broker->processing
  **downlink** mirrors the uplink,
- a pool of *consumer servers* (capacity = number of consumers) executes
  the calibrated processing cost per message.

Message traces are stamped exactly like the live pipeline's
(:mod:`repro.monitoring`), so the same :class:`ThroughputReport` and
bottleneck analysis apply. Energy per station is accumulated for the
energy ablation (a paper future-work item).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.serde import encoded_size
from repro.monitoring.collector import MetricsCollector
from repro.monitoring.report import ThroughputReport, analyze_bottleneck
from repro.netem.link import LOOPBACK, LinkProfile
from repro.sim.costmodel import StageCostModel
from repro.sim.engine import FifoServer, Simulator
from repro.util.ids import new_run_id
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one simulated run.

    Defaults mirror the paper's experiment shape: one partition per
    device, consumers matched to partitions, 512 messages total.
    """

    num_devices: int = 1
    messages_per_device: int = 512
    points: int = 1000
    features: int = 32
    num_consumers: int = 0           # 0 = one per device
    uplink: LinkProfile = LOOPBACK
    downlink: LinkProfile = LOOPBACK
    produce_cost: StageCostModel = field(
        default_factory=lambda: StageCostModel("produce", 1e-4)
    )
    process_cost: StageCostModel = field(
        default_factory=lambda: StageCostModel("process", 1e-3)
    )
    seed: int = 0
    #: Power ratings for the energy ablation (watts while busy).
    edge_power_watts: float = 4.0     # RasPi-class device
    cloud_power_watts: float = 95.0   # one busy cloud core set

    def __post_init__(self) -> None:
        check_positive("num_devices", self.num_devices)
        check_positive("messages_per_device", self.messages_per_device)
        check_positive("points", self.points)
        check_positive("features", self.features)

    @property
    def message_bytes(self) -> int:
        return encoded_size(self.points, self.features)

    @property
    def effective_consumers(self) -> int:
        return self.num_consumers if self.num_consumers > 0 else self.num_devices

    @property
    def total_messages(self) -> int:
        return self.num_devices * self.messages_per_device


@dataclass
class SimResult:
    """Outcome of a simulated run."""

    run_id: str
    report: ThroughputReport
    bottleneck: dict
    virtual_duration_s: float
    station_stats: dict = field(default_factory=dict)
    energy_joules: dict = field(default_factory=dict)

    @property
    def throughput_mb_s(self) -> float:
        return self.report.throughput_mb_s


class SimulatedPipeline:
    """Runs one :class:`SimConfig` through the DES engine."""

    def __init__(self, config: SimConfig, registry=None) -> None:
        self.config = config
        self.run_id = new_run_id()
        self._rng = np.random.default_rng(config.seed)
        self._sim = Simulator()
        # An attached MetricsRegistry receives the simulated run's
        # counters and end-to-end latency histogram, so simulated and
        # live runs share one exposition surface.
        self._collector = MetricsCollector(self.run_id, registry=registry)
        # Stations.
        self._uplink = FifoServer(self._sim, capacity=1, name="uplink")
        self._downlink = FifoServer(self._sim, capacity=1, name="downlink")
        self._consumers = FifoServer(
            self._sim,
            capacity=config.effective_consumers,
            name="consumers",
            power_watts=config.cloud_power_watts,
        )
        self._producers = FifoServer(
            self._sim,
            capacity=config.num_devices,
            name="producers",
            power_watts=config.edge_power_watts,
        )

    # -- link-time sampling ------------------------------------------------------

    def _link_times(self, profile: LinkProfile, nbytes: int) -> tuple:
        """(serialization_seconds, one_way_latency_seconds) for a transfer."""
        bw = self._rng.uniform(profile.bandwidth_mbps_min, profile.bandwidth_mbps_max)
        rtt = self._rng.uniform(profile.rtt_ms_min, profile.rtt_ms_max)
        return (nbytes * 8.0) / (bw * 1e6), rtt / 2000.0

    # -- message lifecycle --------------------------------------------------------

    def _start_producer(self, device: int) -> None:
        self._emit(device, 0)

    def _emit(self, device: int, seq: int) -> None:
        if seq >= self.config.messages_per_device:
            return
        cost = self.config.produce_cost.sample(self._rng)
        self._producers.submit(cost, lambda: self._produced(device, seq))

    def _produced(self, device: int, seq: int) -> None:
        cfg = self.config
        message_id = f"{self.run_id}/d{device}/m{seq}"
        now = self._sim.now
        nbytes = cfg.message_bytes
        self._collector.stamp(
            message_id, "produce", now, nbytes=nbytes, partition=device, site="edge"
        )
        ser, lat = self._link_times(cfg.uplink, nbytes)

        # The serialization occupies the uplink; propagation happens after.
        def sent() -> None:
            # Uplink service started when the message reached the head of
            # the link's queue.
            self._collector.stamp(
                message_id, "uplink_start", self._sim.now - ser, site="edge"
            )
            self._sim.schedule(lat, self._broker_in, message_id, nbytes)

        self._uplink.submit(ser, sent)
        # Device produces its next message immediately (back-to-back), as
        # in the live pipeline's producer loop.
        self._emit(device, seq + 1)

    def _broker_in(self, message_id: str, nbytes: int) -> None:
        self._collector.stamp(message_id, "broker_in", self._sim.now, site="broker")
        ser, lat = self._link_times(self.config.downlink, nbytes)

        def sent() -> None:
            # Queue exit happened when the downlink started serializing.
            self._collector.stamp(
                message_id, "dequeue", self._sim.now - ser, site="broker"
            )
            self._sim.schedule(lat, self._consume, message_id, nbytes)

        self._downlink.submit(ser, sent)

    def _consume(self, message_id: str, nbytes: int) -> None:
        self._collector.stamp(
            message_id, "consume", self._sim.now, nbytes=nbytes, site="cloud"
        )
        # The consumer pool starts processing when a server frees up;
        # stamp process_start at actual service start via a zero-cost
        # pre-job ordering trick: FifoServer is FIFO, so we enqueue one
        # job whose completion marks start+end around the service time.
        cost = self.config.process_cost.sample(self._rng)
        enqueue_time = self._sim.now

        def done() -> None:
            end = self._sim.now
            self._collector.stamp(message_id, "process_start", end - cost, site="cloud")
            self._collector.stamp(
                message_id, "process_end", end, nbytes=nbytes, site="cloud"
            )

        self._consumers.submit(cost, done)

    # -- run -------------------------------------------------------------------------

    def run(self) -> SimResult:
        for device in range(self.config.num_devices):
            self._sim.schedule(0.0, self._start_producer, device)
        duration = self._sim.run()
        report = ThroughputReport.from_collector(self._collector)
        stations = {
            s.name: s.stats()
            for s in (self._producers, self._uplink, self._downlink, self._consumers)
        }
        energy = {
            "edge_joules": self._producers.energy_joules,
            "cloud_joules": self._consumers.energy_joules,
            "total_joules": self._producers.energy_joules + self._consumers.energy_joules,
        }
        return SimResult(
            run_id=self.run_id,
            report=report,
            bottleneck=analyze_bottleneck(self._collector),
            virtual_duration_s=duration,
            station_stats=stations,
            energy_joules=energy,
        )
