"""Calibrated per-stage cost models.

The simulator's compute costs are *measured from the real
implementations* rather than assumed: :func:`calibrate_model_cost` times
the actual ``process_cloud`` function (score + partial_fit of the real
NumPy model) on real generated blocks, and :func:`calibrate_produce_cost`
times block generation + wire encoding. A :class:`StageCostModel` holds
the measured mean with multiplicative jitter so simulated service times
vary realistically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.generator import DataBlockGenerator, GeneratorConfig
from repro.data.serde import encode_block
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class StageCostModel:
    """Service-time distribution for one pipeline stage.

    Service times are ``mean_s`` with uniform multiplicative jitter in
    ``[1 - jitter, 1 + jitter]``.
    """

    name: str
    mean_s: float
    jitter: float = 0.1

    def __post_init__(self) -> None:
        check_positive("mean_s", self.mean_s) if self.mean_s > 0 else None
        check_in_range("jitter", self.jitter, 0.0, 1.0)

    def sample(self, rng: np.random.Generator) -> float:
        if self.mean_s <= 0:
            return 0.0
        lo, hi = 1.0 - self.jitter, 1.0 + self.jitter
        return float(self.mean_s * rng.uniform(lo, hi))


def _time_reps(fn: Callable, reps: int) -> float:
    """Median-of-reps timing (median is robust to GC pauses)."""
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def calibrate_produce_cost(
    points: int, features: int = 32, reps: int = 3, seed: int = 7
) -> StageCostModel:
    """Measure generation + encoding cost of one block."""
    check_positive("points", points)
    check_positive("reps", reps)
    gen = DataBlockGenerator(
        GeneratorConfig(points=points, features=features, seed=seed)
    )

    def one() -> None:
        encode_block(gen.next_block())

    mean = _time_reps(one, reps)
    return StageCostModel(name=f"produce[{points}x{features}]", mean_s=max(mean, 1e-7))


def calibrate_model_cost(
    process_fn: Callable,
    points: int,
    features: int = 32,
    reps: int = 3,
    warmup: int = 2,
    seed: int = 7,
) -> StageCostModel:
    """Measure the steady-state per-block cost of a processing function.

    ``process_fn(context, data)`` is the actual FaaS function deployed in
    live mode (e.g. from
    :func:`repro.core.workloads.make_model_processor`). Warm-up blocks
    let the model initialise (first-fit costs are excluded, matching
    steady-state streaming throughput).
    """
    check_positive("points", points)
    check_positive("reps", reps)
    gen = DataBlockGenerator(
        GeneratorConfig(points=points, features=features, seed=seed)
    )
    context: dict = {}
    for _ in range(max(0, int(warmup))):
        process_fn(context, gen.next_block())

    def one() -> None:
        process_fn(context, gen.next_block())

    mean = _time_reps(one, reps)
    name = getattr(process_fn, "__name__", "process")
    return StageCostModel(name=f"{name}[{points}x{features}]", mean_s=max(mean, 1e-7))
