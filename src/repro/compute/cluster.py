"""Managed worker cluster — the per-pilot "managed Dask cluster".

A :class:`ComputeCluster` owns a scheduler plus a homogeneous set of
workers of one resource class (the resource class comes from the pilot
that created the cluster). It supports the runtime elasticity the paper's
dynamism discussion requires: :meth:`scale` adds or gracefully removes
workers while tasks are in flight.
"""

from __future__ import annotations

from repro.compute.scheduler import Scheduler
from repro.compute.task import ResourceSpec, Task
from repro.compute.worker import Worker
from repro.util.ids import new_id
from repro.util.validation import check_non_negative, check_positive


class ComputeCluster:
    """A scheduler with a managed, scalable worker pool.

    Parameters
    ----------
    n_workers:
        Initial worker count.
    worker_resources:
        Resource class of every worker (e.g. ``EDGE_DEVICE`` = 1 core /
        4 GB, matching the paper's simulated Raspberry Pi edge devices).
    name:
        Cluster name for monitoring output.
    auto_restart:
        Nanny behaviour: when a worker is killed (abrupt failure), a
        replacement of the same resource class is started immediately,
        keeping the pool at its target size. Graceful scale-downs are
        not restarted.
    """

    def __init__(
        self,
        n_workers: int = 1,
        worker_resources: ResourceSpec | None = None,
        name: str | None = None,
        auto_restart: bool = False,
    ) -> None:
        check_non_negative("n_workers", n_workers)
        self.name = name or new_id("cluster")
        self.worker_resources = worker_resources or ResourceSpec()
        self.auto_restart = bool(auto_restart)
        self.workers_restarted = 0
        self.scheduler = Scheduler()
        self._worker_seq = 0
        self._closed = False
        for _ in range(int(n_workers)):
            self._add_worker()

    def _add_worker(self) -> Worker:
        self._worker_seq += 1
        worker = Worker(
            capacity=self.worker_resources,
            name=f"{self.name}-w{self._worker_seq}",
        )
        self.scheduler.add_worker(worker)
        return worker

    # -- elasticity ----------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self.scheduler.workers)

    def scale(self, n_workers: int) -> None:
        """Grow or shrink the pool to *n_workers* (graceful removal)."""
        check_non_negative("n_workers", n_workers)
        self._check_open()
        target = int(n_workers)
        while self.n_workers < target:
            self._add_worker()
        while self.n_workers > target:
            victim = self.scheduler.workers[-1]
            self.scheduler.remove_worker(victim.worker_id, graceful=True)

    def kill_worker(self, worker_id: str | None = None) -> str:
        """Abruptly fail one worker (failure-injection hook for tests)."""
        self._check_open()
        workers = self.scheduler.workers
        if not workers:
            raise RuntimeError("no workers to kill")
        victim = workers[-1]
        if worker_id is not None:
            matches = [w for w in workers if w.worker_id == worker_id]
            if not matches:
                raise ValueError(f"unknown worker {worker_id!r}")
            victim = matches[0]
        self.scheduler.remove_worker(victim.worker_id, graceful=False)
        if self.auto_restart and not self._closed:
            self._add_worker()
            self.workers_restarted += 1
        return victim.worker_id

    # -- submission facade ------------------------------------------------------

    def submit_task(self, task: Task):
        self._check_open()
        return self.scheduler.submit(task)

    def close(self) -> None:
        if self._closed:
            return
        for worker in self.scheduler.workers:
            self.scheduler.remove_worker(worker.worker_id, graceful=True)
        self._closed = True

    def __enter__(self) -> "ComputeCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"cluster {self.name} is closed")

    def stats(self) -> dict:
        return {
            "cluster": self.name,
            "workers": [w.stats() for w in self.scheduler.workers],
            "scheduler": self.scheduler.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ComputeCluster({self.name!r}, workers={self.n_workers}, "
            f"per_worker={self.worker_resources})"
        )
