"""Task and resource-requirement definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.ids import new_id
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ResourceSpec:
    """Resources a task needs or a worker offers.

    The units follow the paper's VM descriptions: cores and gigabytes.
    Worker capacities use the same type, so admission is a simple
    component-wise comparison.
    """

    cores: float = 1.0
    memory_gb: float = 1.0

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("memory_gb", self.memory_gb)

    def fits_within(self, capacity: "ResourceSpec") -> bool:
        return self.cores <= capacity.cores and self.memory_gb <= capacity.memory_gb

    def __add__(self, other: "ResourceSpec") -> "ResourceSpec":
        return ResourceSpec(self.cores + other.cores, self.memory_gb + other.memory_gb)

    def __sub__(self, other: "ResourceSpec") -> "ResourceSpec":
        # Intermediate accounting values may touch zero; bypass the
        # positive-only constructor check via object.__new__.
        spec = object.__new__(ResourceSpec)
        object.__setattr__(spec, "cores", self.cores - other.cores)
        object.__setattr__(spec, "memory_gb", self.memory_gb - other.memory_gb)
        return spec


#: Resource classes used across the experiments, mirroring the paper's
#: infrastructure table (section III).
EDGE_DEVICE = ResourceSpec(cores=1, memory_gb=4)       # simulated Raspberry Pi
LRZ_MEDIUM = ResourceSpec(cores=4, memory_gb=18)
LRZ_LARGE = ResourceSpec(cores=10, memory_gb=44)
JETSTREAM_MEDIUM = ResourceSpec(cores=6, memory_gb=16)


@dataclass
class Task:
    """One unit of work: a callable plus arguments and requirements."""

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    task_id: str = field(default_factory=lambda: new_id("task"))
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    priority: int = 0
    max_retries: int = 0
    #: Soft timeout in seconds (0 = none): the scheduler's watchdog
    #: rejects the future once exceeded. Python threads cannot be
    #: interrupted, so the task body keeps running to completion — its
    #: result is discarded. Same semantics as Dask's ``timeout`` on wait.
    timeout: float = 0.0
    #: Optional run identifier for cross-component metric linking.
    run_id: str | None = None

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError(f"fn must be callable, got {type(self.fn).__name__}")
        check_non_negative("max_retries", self.max_retries)
        check_non_negative("timeout", self.timeout)

    def execute(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Task({self.task_id}, fn={name}, priority={self.priority})"
