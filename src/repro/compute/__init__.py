"""Task-parallel compute substrate (Dask-equivalent).

The paper executes each pilot's tasks on "a managed Dask cluster on the
specified location". This package provides the equivalent from scratch:

- :class:`Future` — thread-safe deferred results,
- :class:`TaskGraph` — dependency DAGs with cycle detection,
- :class:`Worker` — resource-accounted executors (cores / memory), so a
  1-core / 4 GB worker faithfully models the paper's simulated Raspberry
  Pi edge device and a 10-core / 44 GB worker its LRZ "large" VM,
- :class:`Scheduler` — resource-aware dispatch with retries and
  failure detection,
- :class:`ComputeCluster` / :class:`Client` — the user-facing submit /
  map / gather API, plus runtime scale-up/down used by the dynamism
  experiments.
"""

from repro.compute.future import Future, TaskState, TaskError, CancelledError
from repro.compute.graph import TaskGraph, GraphError
from repro.compute.task import Task, ResourceSpec
from repro.compute.worker import Worker
from repro.compute.scheduler import Scheduler, NoCapacityError
from repro.compute.cluster import ComputeCluster
from repro.compute.client import Client

__all__ = [
    "Future",
    "TaskState",
    "TaskError",
    "CancelledError",
    "TaskGraph",
    "GraphError",
    "Task",
    "ResourceSpec",
    "Worker",
    "Scheduler",
    "NoCapacityError",
    "ComputeCluster",
    "Client",
]
