"""User-facing compute client (Dask-``Client``-like API).

Thin convenience layer over a cluster: ``submit`` / ``map`` / ``gather``
plus DAG submission. The Pilot-Edge pipeline uses it to run the packaged
FaaS tasks on whichever pilot the placement policy selected.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.compute.cluster import ComputeCluster
from repro.compute.future import Future
from repro.compute.graph import TaskGraph
from repro.compute.task import ResourceSpec, Task


class Client:
    """Submit work to a :class:`ComputeCluster`."""

    def __init__(self, cluster: ComputeCluster) -> None:
        self._cluster = cluster

    @property
    def cluster(self) -> ComputeCluster:
        return self._cluster

    def submit(
        self,
        fn: Callable,
        *args,
        resources: ResourceSpec | None = None,
        priority: int = 0,
        max_retries: int = 0,
        run_id: str | None = None,
        **kwargs,
    ) -> Future:
        """Run ``fn(*args, **kwargs)`` on the cluster; returns a future."""
        task = Task(
            fn=fn,
            args=args,
            kwargs=kwargs,
            resources=resources or ResourceSpec(),
            priority=priority,
            max_retries=max_retries,
            run_id=run_id,
        )
        return self._cluster.submit_task(task)

    def map(
        self,
        fn: Callable,
        items: Iterable,
        resources: ResourceSpec | None = None,
        priority: int = 0,
        max_retries: int = 0,
    ) -> list[Future]:
        """Submit ``fn(item)`` for every item; returns futures in order."""
        return [
            self.submit(
                fn,
                item,
                resources=resources,
                priority=priority,
                max_retries=max_retries,
            )
            for item in items
        ]

    def submit_graph(self, graph: TaskGraph) -> dict[str, Future]:
        return self._cluster.scheduler.submit_graph(graph)

    @staticmethod
    def gather(futures: Sequence[Future], timeout: float | None = None) -> list[Any]:
        """Block until all futures resolve; returns results in order.

        Raises the first task error encountered (matching Dask's default
        ``gather`` semantics).
        """
        return [f.result(timeout=timeout) for f in futures]

    def __repr__(self) -> str:
        return f"Client({self._cluster.name!r})"
