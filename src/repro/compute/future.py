"""Deferred results with state tracking.

The future is the hand-off between the scheduler's worker threads and
application code: the worker resolves it, the application blocks on
:meth:`result` or registers callbacks.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable


class TaskState(enum.Enum):
    """Lifecycle of a task's future."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"
    CANCELLED = "cancelled"


class TaskError(RuntimeError):
    """Wraps an exception raised inside a task."""

    def __init__(self, task_id: str, cause: BaseException) -> None:
        super().__init__(f"task {task_id} failed: {cause!r}")
        self.task_id = task_id
        self.cause = cause


class CancelledError(RuntimeError):
    """The task was cancelled before completion."""


class Future:
    """Thread-safe container for a task's eventual result."""

    def __init__(self, task_id: str) -> None:
        self.task_id = task_id
        self._state = TaskState.PENDING
        self._result: Any = None
        self._error: TaskError | None = None
        self._lock = threading.Lock()
        self._done_event = threading.Event()
        self._callbacks: list[Callable] = []
        #: Worker that executed (or is executing) the task, for locality
        #: decisions and failure attribution.
        self.worker_id: str | None = None

    # -- state transitions (called by the scheduler/worker) ---------------

    def _mark_running(self, worker_id: str) -> bool:
        with self._lock:
            if self._state is not TaskState.PENDING:
                return False
            self._state = TaskState.RUNNING
            self.worker_id = worker_id
            return True

    def _mark_pending(self) -> None:
        """Return to pending (retry after a worker failure)."""
        with self._lock:
            if self._state is TaskState.RUNNING:
                self._state = TaskState.PENDING
                self.worker_id = None

    def _resolve(self, value: Any) -> None:
        with self._lock:
            if self._state in (TaskState.DONE, TaskState.ERROR, TaskState.CANCELLED):
                return
            self._state = TaskState.DONE
            self._result = value
        self._fire()

    def _reject(self, error: TaskError) -> None:
        with self._lock:
            if self._state in (TaskState.DONE, TaskState.ERROR, TaskState.CANCELLED):
                return
            self._state = TaskState.ERROR
            self._error = error
        self._fire()

    def cancel(self) -> bool:
        """Cancel if still pending; running tasks cannot be interrupted."""
        with self._lock:
            if self._state is not TaskState.PENDING:
                return False
            self._state = TaskState.CANCELLED
        self._fire()
        return True

    def _fire(self) -> None:
        self._done_event.set()
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            try:
                cb(self)
            except Exception:  # callbacks must not break the worker
                pass

    # -- inspection / retrieval -----------------------------------------------

    @property
    def state(self) -> TaskState:
        return self._state

    def done(self) -> bool:
        return self._state in (TaskState.DONE, TaskState.ERROR, TaskState.CANCELLED)

    def result(self, timeout: float | None = None) -> Any:
        """Block for the result; re-raises task errors."""
        if not self._done_event.wait(timeout):
            raise TimeoutError(f"task {self.task_id} not done after {timeout}s")
        if self._state is TaskState.DONE:
            return self._result
        if self._state is TaskState.ERROR:
            raise self._error
        raise CancelledError(f"task {self.task_id} was cancelled")

    def exception(self, timeout: float | None = None) -> TaskError | None:
        if not self._done_event.wait(timeout):
            raise TimeoutError(f"task {self.task_id} not done after {timeout}s")
        return self._error

    def add_done_callback(self, callback: Callable) -> None:
        """Run *callback(future)* once done (immediately if already done)."""
        run_now = False
        with self._lock:
            if self.done():
                run_now = True
            else:
                self._callbacks.append(callback)
        if run_now:
            callback(self)

    def __repr__(self) -> str:
        return f"Future({self.task_id}, {self._state.value})"
