"""Resource-aware task scheduler.

Dispatches ready tasks to workers with free capacity. Placement prefers
the least-loaded worker that fits the task's :class:`ResourceSpec`
(best-fit by free cores). Tasks whose worker dies are retried up to
``task.max_retries`` times on other workers.

The scheduler is event-driven rather than polling: dispatch is attempted
whenever (a) a task is submitted, (b) a task completes (freeing capacity
and possibly unblocking dependents), or (c) a worker joins.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro.compute.future import Future, TaskError, TaskState
from repro.compute.graph import TaskGraph
from repro.compute.task import Task
from repro.compute.worker import Worker
from repro.util.validation import ValidationError


class NoCapacityError(RuntimeError):
    """No worker can ever fit the task's resource requirements."""


class Scheduler:
    """Assigns tasks to workers; tracks dependencies and retries."""

    def __init__(self) -> None:
        self._workers: dict[str, Worker] = {}
        self._lock = threading.RLock()
        # Priority queue of (negative priority, seq, task) — higher
        # task.priority runs first, FIFO within a priority level.
        self._ready: list = []
        self._seq = itertools.count()
        self._futures: dict[str, Future] = {}
        self._tasks: dict[str, Task] = {}
        self._retries_left: dict[str, int] = {}
        # Dependency bookkeeping for graph submissions.
        self._waiting_deps: dict[str, set] = {}
        self._dependents: dict[str, set] = {}
        self.tasks_submitted = 0
        self.tasks_retried = 0
        self.tasks_timed_out = 0
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()
        # Task ids with a soft timeout that have not completed yet; the
        # watchdog retires itself when this drains so an idle scheduler
        # stops paying the 20 ms wakeup forever.
        self._timed_pending: set[str] = set()

    # -- worker membership ---------------------------------------------------

    def add_worker(self, worker: Worker) -> None:
        with self._lock:
            self._workers[worker.worker_id] = worker
            worker._on_task_done = self._on_task_done
        self._dispatch()

    def remove_worker(self, worker_id: str, graceful: bool = True) -> None:
        with self._lock:
            worker = self._workers.pop(worker_id, None)
        if worker is None:
            return
        if graceful:
            worker.shutdown()
        else:
            orphans = worker.kill()
            for task, future in orphans:
                self._requeue(task, future, reason="worker killed")
        self._dispatch()

    @property
    def workers(self) -> list[Worker]:
        with self._lock:
            return list(self._workers.values())

    def healthy_workers(self, max_heartbeat_age: float = 30.0) -> list[Worker]:
        """Live workers whose executor threads showed recent activity.

        An idle worker is healthy by definition (its threads are parked
        on the queue, not wedged); staleness only matters when tasks are
        running — a running task past the heartbeat age with no progress
        marks the worker suspect.
        """
        import time

        now = time.monotonic()
        healthy = []
        for worker in self.workers:
            if not worker.alive:
                continue
            running = worker.running_tasks()
            if not running:
                healthy.append(worker)
            elif now - worker.last_heartbeat <= max_heartbeat_age or any(
                now - started <= max_heartbeat_age for _, _, started in running
            ):
                healthy.append(worker)
        return healthy

    def total_capacity(self) -> dict:
        with self._lock:
            cores = sum(w.capacity.cores for w in self._workers.values() if w.alive)
            mem = sum(w.capacity.memory_gb for w in self._workers.values() if w.alive)
        return {"cores": cores, "memory_gb": mem}

    # -- submission ------------------------------------------------------------

    def submit(self, task: Task) -> Future:
        """Submit one independent task."""
        future = Future(task.task_id)
        with self._lock:
            self._register(task, future)
            self._push_ready(task)
        self._dispatch()
        return future

    def submit_graph(self, graph: TaskGraph) -> dict[str, Future]:
        """Submit a task DAG; dependents run only after prerequisites."""
        graph.validate()
        futures: dict[str, Future] = {}
        with self._lock:
            for task_id in graph.topological_order():
                task = graph.task(task_id)
                future = Future(task.task_id)
                futures[task_id] = future
                self._register(task, future)
                deps = graph.dependencies(task_id)
                if deps:
                    self._waiting_deps[task_id] = set(deps)
                    for dep in deps:
                        self._dependents.setdefault(dep, set()).add(task_id)
                else:
                    self._push_ready(task)
        self._dispatch()
        return futures

    def _register(self, task: Task, future: Future) -> None:
        if task.task_id in self._futures:
            raise ValidationError(f"task {task.task_id} already submitted")
        self._futures[task.task_id] = future
        self._tasks[task.task_id] = task
        self._retries_left[task.task_id] = task.max_retries
        self.tasks_submitted += 1
        if task.timeout > 0:
            self._timed_pending.add(task.task_id)
            self._ensure_watchdog()

    # -- soft timeouts ------------------------------------------------------

    def _ensure_watchdog(self) -> None:
        if self._watchdog is None or not self._watchdog.is_alive():
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="scheduler-watchdog", daemon=True
            )
            self._watchdog.start()

    def _watchdog_loop(self) -> None:
        import time

        while not self._watchdog_stop.wait(0.02):
            with self._lock:
                if not self._timed_pending:
                    # No timed task outstanding: retire instead of waking
                    # every 20 ms forever. Clearing the handle under the
                    # lock lets _ensure_watchdog (also under the lock)
                    # restart cleanly when the next timed task arrives.
                    self._watchdog = None
                    return
            now = time.monotonic()
            for worker in self.workers:
                for task, future, started in worker.running_tasks():
                    if task.timeout > 0 and now - started > task.timeout:
                        # Soft timeout: the future is rejected; the task
                        # body keeps running (Python threads cannot be
                        # interrupted) and its eventual result is
                        # discarded by the future's once-only semantics.
                        if future.state is TaskState.RUNNING:
                            future._reject(
                                TaskError(
                                    task.task_id,
                                    TimeoutError(
                                        f"exceeded soft timeout of {task.timeout}s"
                                    ),
                                )
                            )
                            self.tasks_timed_out += 1
                            self._complete(task, future)

    def stop_watchdog(self) -> None:
        self._watchdog_stop.set()

    def _push_ready(self, task: Task) -> None:
        heapq.heappush(self._ready, (-task.priority, next(self._seq), task))

    # -- dispatch ---------------------------------------------------------------

    def _pick_worker(self, task: Task) -> Worker | None:
        """Least-loaded live worker whose free capacity fits the task."""
        best: Worker | None = None
        best_free = -1.0
        for worker in self._workers.values():
            if not worker.alive or not worker.can_accept(task):
                continue
            free = worker.free_resources().cores
            if free > best_free:
                best, best_free = worker, free
        return best

    def _capacity_exists(self, task: Task) -> bool:
        """Could any live worker *ever* fit this task (when idle)?"""
        return any(
            task.resources.fits_within(w.capacity)
            for w in self._workers.values()
            if w.alive
        )

    def _dispatch(self) -> None:
        with self._lock:
            if not self._workers:
                return
            deferred: list = []
            while self._ready:
                neg_prio, seq, task = heapq.heappop(self._ready)
                future = self._futures[task.task_id]
                if future.state is TaskState.CANCELLED:
                    continue
                worker = self._pick_worker(task)
                if worker is None:
                    if not self._capacity_exists(task):
                        future._reject(
                            TaskError(
                                task.task_id,
                                NoCapacityError(
                                    f"no worker can fit {task.resources}"
                                ),
                            )
                        )
                        continue
                    deferred.append((neg_prio, seq, task))
                    continue
                if not worker.submit(task, future):
                    deferred.append((neg_prio, seq, task))
            for item in deferred:
                heapq.heappush(self._ready, item)

    def _on_task_done(self, worker: Worker, task: Task, future: Future, outcome: tuple) -> None:
        kind, payload = outcome
        if kind == "bounced":
            # The worker was killed before running it; retry elsewhere for free.
            self._requeue(task, future)
        elif kind == "error":
            if self._retries_left.get(task.task_id, 0) > 0:
                with self._lock:
                    self._retries_left[task.task_id] -= 1
                self._requeue(task, future)
            else:
                future._reject(TaskError(task.task_id, payload))
                self._complete(task, future)
        else:
            future._resolve(payload)
            self._complete(task, future)
        self._dispatch()

    def _requeue(self, task: Task, future: Future) -> None:
        with self._lock:
            future._mark_pending()
            self._push_ready(task)
            self.tasks_retried += 1

    def _complete(self, task: Task, future: Future) -> None:
        with self._lock:
            # discard, not remove: a soft-timed-out task completes again
            # when its (uninterruptible) body eventually returns.
            self._timed_pending.discard(task.task_id)
            dependents = self._dependents.pop(task.task_id, set())
            for dep_id in sorted(dependents):
                waiting = self._waiting_deps.get(dep_id)
                if waiting is None:
                    continue
                if future.state is TaskState.DONE:
                    waiting.discard(task.task_id)
                    if not waiting:
                        del self._waiting_deps[dep_id]
                        self._push_ready(self._tasks[dep_id])
                else:
                    # Propagate failure/cancellation to dependents.
                    del self._waiting_deps[dep_id]
                    dep_future = self._futures[dep_id]
                    if future.state is TaskState.ERROR:
                        dep_future._reject(
                            TaskError(dep_id, future._error or RuntimeError("dependency failed"))
                        )
                    else:
                        dep_future.cancel()
                    # Cascade further.
                    self._complete(self._tasks[dep_id], dep_future)

    # -- introspection --------------------------------------------------------------

    def future(self, task_id: str) -> Future:
        with self._lock:
            try:
                return self._futures[task_id]
            except KeyError:
                raise ValidationError(f"unknown task {task_id!r}") from None

    def pending_count(self) -> int:
        with self._lock:
            return len(self._ready) + len(self._waiting_deps)

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": len(self._workers),
                "tasks_submitted": self.tasks_submitted,
                "tasks_retried": self.tasks_retried,
                "ready_queue": len(self._ready),
                "waiting_on_deps": len(self._waiting_deps),
            }
