"""Task dependency graphs.

The pipeline stages are independent tasks, but applications built on the
Client API can submit DAGs (e.g. pre-process -> train -> evaluate). The
graph validates acyclicity and exposes topological scheduling order.
"""

from __future__ import annotations

from collections import deque

from repro.compute.task import Task


class GraphError(ValueError):
    """Invalid graph structure (unknown node, cycle, duplicate)."""


class TaskGraph:
    """A DAG of tasks keyed by task id."""

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._deps: dict[str, set] = {}       # task -> prerequisites
        self._dependents: dict[str, set] = {}  # task -> tasks waiting on it

    def add_task(self, task: Task, depends_on: list[str] | None = None) -> str:
        if task.task_id in self._tasks:
            raise GraphError(f"duplicate task id {task.task_id}")
        depends_on = list(depends_on or [])
        for dep in depends_on:
            if dep not in self._tasks:
                raise GraphError(f"unknown dependency {dep!r}")
        self._tasks[task.task_id] = task
        self._deps[task.task_id] = set(depends_on)
        self._dependents[task.task_id] = set()
        for dep in depends_on:
            self._dependents[dep].add(task.task_id)
        return task.task_id

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise GraphError(f"unknown task {task_id!r}") from None

    def dependencies(self, task_id: str) -> set:
        return set(self._deps[self.task(task_id).task_id])

    def dependents(self, task_id: str) -> set:
        return set(self._dependents[self.task(task_id).task_id])

    def roots(self) -> list[str]:
        """Tasks with no prerequisites."""
        return [t for t, deps in self._deps.items() if not deps]

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles."""
        in_degree = {t: len(deps) for t, deps in self._deps.items()}
        ready = deque(sorted(t for t, d in in_degree.items() if d == 0))
        order: list[str] = []
        while ready:
            t = ready.popleft()
            order.append(t)
            for dep in sorted(self._dependents[t]):
                in_degree[dep] -= 1
                if in_degree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self._tasks):
            stuck = sorted(t for t, d in in_degree.items() if d > 0)
            raise GraphError(f"cycle detected involving {stuck}")
        return order

    def validate(self) -> None:
        """Raise :class:`GraphError` if the graph is not a DAG."""
        self.topological_order()
