"""Aggregate reports and bottleneck analysis.

The report reproduces the two metrics the paper's figures plot —
**throughput** (MB/s of processed payload over the run's busy window)
and **latency** (end-to-end per message, with percentiles) — plus the
per-stage decomposition used for bottleneck attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.monitoring.collector import MetricsCollector


def percentile(values, q: float) -> float:
    """Percentile of a sequence (q in [0, 100]); NaN-safe for empties."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


@dataclass
class ThroughputReport:
    """Summary statistics for one pipeline run."""

    run_id: str
    messages: int
    total_bytes: int
    duration_s: float
    throughput_msgs_s: float
    throughput_mb_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    stage_means_s: dict = field(default_factory=dict)
    #: Lag-over-time summary (from a TelemetrySampler), see
    #: :func:`lag_over_time`. Empty when no sampler was attached.
    lag: dict = field(default_factory=dict)
    #: Span-tree bottleneck attribution (from a Tracer), see
    #: :func:`span_bottleneck`. Empty when tracing was off.
    spans: dict = field(default_factory=dict)

    @classmethod
    def from_collector(
        cls,
        collector: MetricsCollector,
        duration_s: float | None = None,
        sampler=None,
        tracer=None,
    ) -> "ThroughputReport":
        lag = lag_over_time(sampler) if sampler is not None else {}
        spans = span_bottleneck(tracer) if tracer is not None else {}
        traces = collector.traces(complete_only=True)
        if not traces:
            return cls(
                run_id=collector.run_id,
                messages=0,
                total_bytes=0,
                duration_s=0.0,
                throughput_msgs_s=0.0,
                throughput_mb_s=0.0,
                latency_mean_s=float("nan"),
                latency_p50_s=float("nan"),
                latency_p95_s=float("nan"),
                latency_p99_s=float("nan"),
                lag=lag,
                spans=spans,
            )
        latencies = np.array([t.end_to_end_latency for t in traces])
        total_bytes = int(sum(t.nbytes for t in traces))
        if duration_s is None:
            start = min(t.at("produce") for t in traces)
            end = max(t.at("process_end") for t in traces)
            duration_s = max(end - start, 1e-9)
        stage_pairs = (
            ("produce", "broker_in"),
            ("broker_in", "consume"),
            ("consume", "process_start"),
            ("process_start", "process_end"),
        )
        stage_means = {}
        for a, b in stage_pairs:
            vals = [t.stage_latency(a, b) for t in traces]
            vals = [v for v in vals if v is not None]
            if vals:
                stage_means[f"{a}->{b}"] = float(np.mean(vals))
        return cls(
            run_id=collector.run_id,
            messages=len(traces),
            total_bytes=total_bytes,
            duration_s=float(duration_s),
            throughput_msgs_s=len(traces) / duration_s,
            throughput_mb_s=total_bytes / duration_s / 1e6,
            latency_mean_s=float(latencies.mean()),
            latency_p50_s=percentile(latencies, 50),
            latency_p95_s=percentile(latencies, 95),
            latency_p99_s=percentile(latencies, 99),
            stage_means_s=stage_means,
            lag=lag,
            spans=spans,
        )

    def row(self) -> dict:
        """Flat dict for tabular printing in the benchmark harness."""
        return {
            "messages": self.messages,
            "MB": round(self.total_bytes / 1e6, 3),
            "duration_s": round(self.duration_s, 3),
            "msgs/s": round(self.throughput_msgs_s, 2),
            "MB/s": round(self.throughput_mb_s, 3),
            "lat_mean_ms": round(self.latency_mean_s * 1e3, 2),
            "lat_p50_ms": round(self.latency_p50_s * 1e3, 2),
            "lat_p95_ms": round(self.latency_p95_s * 1e3, 2),
        }


def lag_over_time(sampler) -> dict:
    """Consumer-lag trajectory from a :class:`TelemetrySampler`.

    Sums every ``consumer_lag.<group>.<topic>.<partition>`` series per
    sample time into one total-lag curve and summarizes it: peak backlog,
    when it occurred, the final value, and whether the run drained
    (``returned_to_zero``). A healthy run's curve rises while producers
    outpace consumers and returns to 0 by the end.
    """
    per_time: dict[float, float] = {}
    for name in sampler.names():
        if not name.startswith("consumer_lag."):
            continue
        for t, value in sampler.series(name):
            per_time[t] = per_time.get(t, 0.0) + value
    if not per_time:
        return {}
    curve = sorted(per_time.items())
    peak_t, peak = max(curve, key=lambda p: p[1])
    final_t, final = curve[-1]
    return {
        "series": curve,
        "peak": peak,
        "peak_t_s": peak_t,
        "final": final,
        "final_t_s": final_t,
        "returned_to_zero": final == 0.0,
    }


def span_bottleneck(tracer) -> dict:
    """Span-tree bottleneck attribution from a :class:`Tracer`.

    Aggregates finished spans by name (mean/total/count per operation)
    and names the operation with the largest total recorded time — the
    hop of the produce→broker→consume tree where wall-clock actually
    went. Instantaneous marker spans (zero duration) can never win.
    """
    by_name: dict[str, dict] = {}
    for span in tracer.spans():
        if span.end is None:
            continue
        agg = by_name.setdefault(span.name, {"count": 0, "total_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += span.duration
    for agg in by_name.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    slowest = max(
        (name for name in by_name if by_name[name]["total_s"] > 0),
        key=lambda n: by_name[n]["total_s"],
        default=None,
    )
    stats = tracer.stats()
    return {
        "by_name": by_name,
        "slowest": slowest,
        "traces": len(tracer.trace_ids()),
        **stats,
    }


def analyze_bottleneck(collector: MetricsCollector) -> dict:
    """Attribute the pipeline bottleneck to a stage.

    Compares the mean per-message *service* times of the transfer path
    (produce->broker_in, i.e. the uplink, plus the consume->process
    hand-off) against the processing stage (process_start->end).
    Queue wait inside the broker (broker_in->consume) is reported
    separately but deliberately excluded from the transfer side: a
    backlog in the broker is the *symptom* of slow consumers, which is
    exactly the paper's Fig. 2 four-partition observation ("the broker
    can process more data than the consuming processing tasks").
    """
    traces = collector.traces(complete_only=True)
    if not traces:
        return {"bottleneck": "unknown", "reason": "no complete traces"}

    def stage_mean(a: str, b: str) -> float:
        vals = [t.stage_latency(a, b) for t in traces]
        vals = [v for v in vals if v is not None]
        return float(np.mean(vals)) if vals else 0.0

    # Transfer service: uplink (uplink_start->broker_in, i.e. link
    # serialization + propagation, excluding queue wait at the link) plus
    # downlink (dequeue->consume). Queue waits — produce->uplink_start,
    # broker_in->dequeue, consume->process_start — are symptoms of
    # whichever service is saturated, so they are excluded from the
    # comparison itself and reported separately.
    has_uplink = any(t.has("uplink_start") for t in traces)
    uplink = (
        stage_mean("uplink_start", "broker_in")
        if has_uplink
        else stage_mean("produce", "broker_in")
    )
    mean_transfer = uplink + stage_mean("dequeue", "consume")
    mean_processing = stage_mean("process_start", "process_end")
    mean_queueing = stage_mean("broker_in", "dequeue")
    if mean_processing >= mean_transfer:
        bottleneck = "processing"
        reason = (
            f"mean processing {mean_processing*1e3:.1f} ms >= "
            f"mean transfer {mean_transfer*1e3:.1f} ms"
        )
    else:
        bottleneck = "transfer"
        reason = (
            f"mean transfer {mean_transfer*1e3:.1f} ms > "
            f"mean processing {mean_processing*1e3:.1f} ms"
        )
    return {
        "bottleneck": bottleneck,
        "reason": reason,
        "mean_transfer_s": mean_transfer,
        "mean_processing_s": mean_processing,
        "mean_broker_queue_s": mean_queueing,
    }
