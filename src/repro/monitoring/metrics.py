"""Trace records for individual messages.

Stage names follow the pipeline's dataflow::

    produce -> broker_in -> dequeue -> consume -> process

``produce`` is stamped by the edge data generator, ``broker_in`` by the
partition log append, ``dequeue`` when a consumer takes the record off
the broker (queue exit, before the downlink transfer), ``consume`` when
the processing task has fully received it, and
``process_start``/``process_end`` around the model execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical stage ordering for latency decomposition.
STAGES = ("produce", "broker_in", "dequeue", "consume", "process_start", "process_end")


@dataclass
class StageTiming:
    """One stage hit: monotonic timestamp plus payload size."""

    stage: str
    timestamp: float
    nbytes: int = 0
    site: str = ""


@dataclass
class MessageTrace:
    """All stage timings for one message within one run."""

    run_id: str
    message_id: str
    partition: int = -1
    timings: dict = field(default_factory=dict)

    def stamp(self, stage: str, timestamp: float, nbytes: int = 0, site: str = "") -> None:
        self.timings[stage] = StageTiming(stage, timestamp, nbytes, site)

    def has(self, stage: str) -> bool:
        return stage in self.timings

    def at(self, stage: str) -> float | None:
        t = self.timings.get(stage)
        return t.timestamp if t else None

    @property
    def complete(self) -> bool:
        """True when the trace covers the full produce->process_end path."""
        return all(s in self.timings for s in ("produce", "process_end"))

    @property
    def end_to_end_latency(self) -> float | None:
        """Seconds from production to processing completion."""
        start = self.at("produce")
        end = self.at("process_end")
        if start is None or end is None:
            return None
        return end - start

    def stage_latency(self, from_stage: str, to_stage: str) -> float | None:
        a, b = self.at(from_stage), self.at(to_stage)
        if a is None or b is None:
            return None
        return b - a

    @property
    def nbytes(self) -> int:
        """Payload size (taken from the produce stamp when present)."""
        for stage in STAGES:
            t = self.timings.get(stage)
            if t and t.nbytes:
                return t.nbytes
        return 0
