"""Linked cross-component metrics.

The paper emphasises that "the framework captures and links comprehensive
metrics across all involved components, particularly the edge data
generator, broker, and cloud processing services", enabling bottleneck
identification (e.g. Fig. 2's observation that at four partitions the
consumers, not the broker, limit throughput).

This package provides:

- :class:`MessageTrace` — one message's timestamps across every stage,
  linked by ``(run_id, message_id)``,
- :class:`MetricsCollector` — thread-safe trace accumulation plus named
  counters,
- :class:`ThroughputReport` / :func:`analyze_bottleneck` — the aggregate
  throughput/latency statistics and stage-rate comparison that the
  benchmark harness prints for each figure.
"""

from repro.monitoring.metrics import MessageTrace, StageTiming
from repro.monitoring.collector import MetricsCollector
from repro.monitoring.report import ThroughputReport, analyze_bottleneck, percentile

__all__ = [
    "MessageTrace",
    "StageTiming",
    "MetricsCollector",
    "ThroughputReport",
    "analyze_bottleneck",
    "percentile",
]
