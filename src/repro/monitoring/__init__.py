"""Linked cross-component metrics, tracing, and live telemetry.

The paper emphasises that "the framework captures and links comprehensive
metrics across all involved components, particularly the edge data
generator, broker, and cloud processing services", enabling bottleneck
identification (e.g. Fig. 2's observation that at four partitions the
consumers, not the broker, limit throughput).

This package provides:

- :class:`MessageTrace` — one message's timestamps across every stage,
  linked by ``(run_id, message_id)``,
- :class:`MetricsCollector` — thread-safe trace accumulation plus named
  counters and high-watermark gauges,
- :class:`Tracer` / :class:`Span` — distributed tracing with
  ``(trace_id, span_id, parent_id)`` context propagated through message
  and frame headers, so one message's produce→broker→consume path
  reconstructs as a span tree across sites,
- :class:`MetricsRegistry` with typed instruments (:class:`Counter`,
  :class:`Gauge`, log-bucketed :class:`Histogram` with live
  p50/p95/p99) and Prometheus text exposition,
- :class:`TelemetrySampler` — a background thread snapshotting gauges
  (per-partition log depth, consumer lag, prefetch buffer fill,
  in-flight requests, group size) into a JSONL-exportable time series,
  with :func:`serve_exposition` for a live ``/metrics`` endpoint,
- :class:`ThroughputReport` / :func:`analyze_bottleneck` /
  :func:`lag_over_time` / :func:`span_bottleneck` — the aggregate
  statistics, stage-rate comparison, lag trajectory, and span-tree
  attribution the benchmark harness prints for each figure.
"""

from repro.monitoring.metrics import MessageTrace, StageTiming
from repro.monitoring.collector import MetricsCollector
from repro.monitoring.instruments import Counter, Gauge, Histogram, MetricsRegistry
from repro.monitoring.tracing import NOOP_SPAN, Span, Tracer
from repro.monitoring.sampler import TelemetrySampler, serve_exposition
from repro.monitoring.events import Event, EventJournal, merge_timeline
from repro.monitoring.cluster import (
    ClusterEventCollector,
    ClusterMetricsAggregator,
    ClusterTraceCollector,
    stitch_spans,
)
from repro.monitoring.report import (
    ThroughputReport,
    analyze_bottleneck,
    lag_over_time,
    percentile,
    span_bottleneck,
)

__all__ = [
    "MessageTrace",
    "StageTiming",
    "MetricsCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "TelemetrySampler",
    "serve_exposition",
    "Event",
    "EventJournal",
    "merge_timeline",
    "ClusterEventCollector",
    "ClusterMetricsAggregator",
    "ClusterTraceCollector",
    "stitch_spans",
    "ThroughputReport",
    "analyze_bottleneck",
    "lag_over_time",
    "percentile",
    "span_bottleneck",
]
