"""Cluster-wide observability plane: federate what N processes measure.

Since the broker became a supervisor plus N forked shards, every
interesting signal lives in a process the in-proc ``MetricsRegistry``
cannot see. This module is the collection side of the fix; the serving
side is three wire ops each shard answers:

* ``metrics_snapshot`` — the shard registry's typed snapshot
  (:meth:`~repro.monitoring.instruments.MetricsRegistry.snapshot`),
* ``events_since`` — the shard's control-plane
  :class:`~repro.monitoring.events.EventJournal` drained by cursor,
* ``trace_spans`` — the shard tracer's finished spans drained by cursor.

:class:`ClusterMetricsAggregator` scrapes every shard on the sampler
tick and re-exports ONE merged Prometheus exposition: counters are
summed across shards (a rate is a rate wherever it happened), gauges
keep a ``shard`` label (a level is only meaningful per process), and
histograms are bucket-merged (identical geometric bounds make the merge
an elementwise add). :class:`ClusterEventCollector` drains journals
into one wall-clock-ordered incident timeline, and
:class:`ClusterTraceCollector` + :func:`stitch_spans` reassemble span
trees whose hops happened in different processes — the produce path's
leader append and follower replication ack included.
"""

from __future__ import annotations

import json
import math
import threading
import time

from repro.monitoring.events import Event, merge_timeline
from repro.monitoring.instruments import _prom_name, _prom_value
from repro.monitoring.tracing import Span

__all__ = [
    "ClusterMetricsAggregator",
    "ClusterEventCollector",
    "ClusterTraceCollector",
    "merge_metric_snapshots",
    "merge_histogram_snapshots",
    "stitch_spans",
    "render_dashboard",
]


# -- snapshot merging ------------------------------------------------------


def merge_histogram_snapshots(a: dict, b: dict) -> dict:
    """Merge two histogram snapshots with identical bucket bounds.

    The registry's histograms all share the default geometric layout, so
    cross-shard merging is an elementwise bucket add; percentiles are
    re-estimated from the merged buckets with the same log-linear rule
    the live instrument uses. Snapshots with differing bounds cannot be
    merged meaningfully — the larger-count one wins and the mismatch is
    flagged so the exposition never silently lies.
    """
    if list(a.get("bounds", [])) != list(b.get("bounds", [])):
        winner = dict(a if a.get("count", 0) >= b.get("count", 0) else b)
        winner["bounds_mismatch"] = True
        return winner
    merged = {
        "count": a["count"] + b["count"],
        "sum": a["sum"] + b["sum"],
        "min": min(a.get("min", 0.0) or math.inf, b.get("min", 0.0) or math.inf),
        "max": max(a.get("max", 0.0), b.get("max", 0.0)),
        "buckets": [x + y for x, y in zip(a["buckets"], b["buckets"])],
        "bounds": list(a["bounds"]),
    }
    if merged["min"] == math.inf:
        merged["min"] = 0.0
    merged["mean"] = merged["sum"] / merged["count"] if merged["count"] else 0.0
    for q in (50, 95, 99):
        merged[f"p{q}"] = _percentile_from_snapshot(merged, q)
    return merged


def _percentile_from_snapshot(snap: dict, q: float) -> float:
    """Log-linear percentile estimate from a (merged) snapshot dict."""
    count = snap.get("count", 0)
    if not count:
        return 0.0
    buckets, bounds = snap["buckets"], snap["bounds"]
    lo_clamp = snap.get("min", 0.0)
    hi_clamp = snap.get("max", 0.0)
    target = q / 100.0 * count
    seen = 0
    for idx, n in enumerate(buckets):
        if n == 0:
            continue
        if seen + n >= target:
            frac = (target - seen) / n
            lo = bounds[idx - 1] if idx > 0 else 0.0
            hi = bounds[idx] if idx < len(bounds) else hi_clamp
            if hi_clamp:
                hi = min(hi, hi_clamp)
            lo = max(lo, lo_clamp)
            if hi <= lo:
                return hi
            return lo + frac * (hi - lo)
        seen += n
    return hi_clamp


def merge_metric_snapshots(snapshots: dict) -> dict:
    """Merge per-shard typed snapshots into one cluster view.

    *snapshots* maps a shard index to the dict served by the
    ``metrics_snapshot`` wire op (or ``None``/disabled for unreachable
    shards — they are skipped, never fabricated). Returns::

        {
            "counters": {name: summed_total},
            "gauges": {name: {shard_index: value}},
            "histograms": {name: merged_snapshot},
            "shards": [index, ...],   # shards that contributed
        }
    """
    counters: dict[str, float] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    shards: list = []
    for index in sorted(snapshots, key=str):
        snap = snapshots[index]
        if not snap or not snap.get("enabled", True):
            continue
        shards.append(index)
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges.setdefault(name, {})[index] = value
        for name, hsnap in snap.get("histograms", {}).items():
            if name in histograms:
                histograms[name] = merge_histogram_snapshots(histograms[name], hsnap)
            else:
                histograms[name] = dict(hsnap)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "shards": shards,
    }


class ClusterMetricsAggregator:
    """Scrape every shard's registry and serve one merged exposition.

    *cluster* is anything with a ``metrics_snapshots()`` method
    returning ``{shard_index: snapshot_dict | None}`` — in practice a
    :class:`repro.broker.cluster.ClusterBroker`. An optional *registry*
    (the supervisor process's own ``MetricsRegistry``) is merged in as
    pseudo-shard ``"local"`` so client-side series ride along.

    The aggregator is pull-based and stateless between scrapes except
    for scrape metadata; hook it to a
    :class:`~repro.monitoring.sampler.TelemetrySampler` via
    :meth:`attach` to scrape on the sampler tick, and hand it directly
    to :func:`~repro.monitoring.sampler.serve_exposition` — it
    duck-types ``to_prometheus``.
    """

    def __init__(self, cluster, registry=None, namespace: str = "repro") -> None:
        self._cluster = cluster
        self._registry = registry
        self.namespace = namespace
        self._lock = threading.Lock()
        self._merged: dict = {"counters": {}, "gauges": {}, "histograms": {}, "shards": []}
        self._scrapes = 0
        self._last_scrape_s = 0.0
        self._last_shards = 0

    # -- scraping --------------------------------------------------------

    def scrape(self) -> dict:
        """Pull every shard once; returns (and retains) the merged view."""
        t0 = time.perf_counter()
        snapshots = dict(self._cluster.metrics_snapshots())
        if self._registry is not None:
            snapshots["local"] = self._registry.snapshot()
        merged = merge_metric_snapshots(snapshots)
        elapsed = time.perf_counter() - t0
        with self._lock:
            self._merged = merged
            self._scrapes += 1
            self._last_scrape_s = elapsed
            self._last_shards = len(merged["shards"])
        return merged

    def merged(self) -> dict:
        """The most recent scrape's merged view (empty before the first)."""
        with self._lock:
            return self._merged

    @property
    def last_scrape_s(self) -> float:
        with self._lock:
            return self._last_scrape_s

    # -- export ----------------------------------------------------------

    def to_prometheus(self) -> str:
        """Merged text exposition: summed counters, shard-labeled gauges,
        bucket-merged histograms, plus scrape metadata."""
        with self._lock:
            merged = self._merged
            scrapes, elapsed, shards_up = self._scrapes, self._last_scrape_s, self._last_shards
        ns = self.namespace
        lines: list[str] = []
        meta = _prom_name(ns, "cluster")
        lines.append(f"# TYPE {meta}_scrapes_total counter")
        lines.append(f"{meta}_scrapes_total {scrapes}")
        lines.append(f"# TYPE {meta}_scrape_seconds gauge")
        lines.append(f"{meta}_scrape_seconds {_prom_value(elapsed)}")
        lines.append(f"# TYPE {meta}_shards_scraped gauge")
        lines.append(f"{meta}_shards_scraped {shards_up}")
        for name in sorted(merged["counters"]):
            metric = _prom_name(ns, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(merged['counters'][name])}")
        for name in sorted(merged["gauges"]):
            metric = _prom_name(ns, name)
            lines.append(f"# TYPE {metric} gauge")
            for shard in sorted(merged["gauges"][name], key=str):
                value = merged["gauges"][name][shard]
                lines.append(f'{metric}{{shard="{shard}"}} {_prom_value(value)}')
        for name in sorted(merged["histograms"]):
            snap = merged["histograms"][name]
            metric = _prom_name(ns, name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, n in zip(snap["bounds"], snap["buckets"]):
                cumulative += n
                lines.append(f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {snap["count"]}')
            lines.append(f"{metric}_sum {_prom_value(snap['sum'])}")
            lines.append(f"{metric}_count {snap['count']}")
        return "\n".join(lines) + "\n"

    # -- sampler integration ---------------------------------------------

    def sample(self) -> dict:
        """Scrape and flatten for a ``TelemetrySampler`` source.

        Counters federate as ``cluster.<name>`` totals; per-shard gauge
        detail stays on the Prometheus endpoint (the sampler's JSONL is
        a time series, and per-shard fan-out there would explode the
        series count without adding anything the exposition lacks).
        """
        merged = self.scrape()
        out = {
            "cluster.scrape_ms": self.last_scrape_s * 1e3,
            "cluster.shards_scraped": float(len(merged["shards"])),
        }
        for name, value in merged["counters"].items():
            out[f"cluster.{name}"] = value
        for name, per_shard in merged["gauges"].items():
            if per_shard:
                out[f"cluster.{name}.max"] = max(per_shard.values())
        return out

    def attach(self, sampler, name: str = "cluster_metrics") -> None:
        """Scrape on every tick of *sampler* (a ``TelemetrySampler``)."""
        sampler.add_source(name, self.sample)


# -- event federation ------------------------------------------------------


class ClusterEventCollector:
    """Drain every journal in the cluster into one merged timeline.

    Remote shard journals are drained through the ``events_since`` wire
    op with a per-shard cursor; *journals* adds local
    :class:`~repro.monitoring.events.EventJournal` instances (the
    supervisor's, typically) polled directly. A shard respawn resets
    that shard's journal — the payload's ``boot`` token changes — and
    the collector re-drains from zero so the fresh process's first
    events (recovery, ISR rejoin) are never skipped.
    """

    def __init__(self, cluster=None, journals=()) -> None:
        self._cluster = cluster
        self._journals = list(journals)
        self._cursors: dict = {}          # shard index -> (boot, last_seq)
        self._local_cursors: dict = {}    # id(journal) -> last_seq
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def add_journal(self, journal) -> None:
        self._journals.append(journal)

    def poll(self) -> list[Event]:
        """Fetch events new since the last poll; returns just the new ones."""
        new: list[Event] = []
        if self._cluster is not None:
            for index, payload in dict(self._cluster.events_snapshots(self._cursor_seqs())).items():
                if not payload:
                    continue
                boot = payload.get("boot", "")
                known_boot, _ = self._cursors.get(index, ("", 0))
                if known_boot and boot != known_boot:
                    # Journal restarted (shard respawn): our cursor is
                    # from a dead process; re-drain this shard from 0.
                    payload = self._cluster.shard_events(index, since=0) or payload
                events = [Event.from_dict(d) for d in payload.get("events", [])]
                if events:
                    self._cursors[index] = (payload.get("boot", ""), events[-1].seq)
                elif boot:
                    self._cursors[index] = (boot, self._cursors.get(index, ("", 0))[1])
                new.extend(events)
        for journal in self._journals:
            since = self._local_cursors.get(id(journal), 0)
            events = journal.events_since(since)
            if events:
                self._local_cursors[id(journal)] = events[-1].seq
            new.extend(events)
        if new:
            with self._lock:
                self._events = merge_timeline(self._events, new)
        return merge_timeline(new)

    def _cursor_seqs(self) -> dict:
        return {index: seq for index, (_, seq) in self._cursors.items()}

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def timeline(self) -> list[str]:
        return [e.format() for e in self.events()]

    def write_jsonl(self, path) -> int:
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for e in events:
                fh.write(json.dumps(e.to_dict(), sort_keys=True) + "\n")
        return len(events)


# -- trace federation ------------------------------------------------------


class ClusterTraceCollector:
    """Drain finished spans from every shard tracer (plus local tracers).

    Same cursor-and-boot protocol as the event collector, over the
    ``trace_spans`` wire op. The result is a flat span-dict pool that
    :func:`stitch_spans` turns back into per-trace trees — the only way
    a trace whose hops ran in three processes becomes one tree again.
    """

    def __init__(self, cluster=None, tracers=()) -> None:
        self._cluster = cluster
        self._tracers = list(tracers)
        self._cursors: dict = {}        # shard index -> (boot, next_index)
        self._local_cursors: dict = {}  # id(tracer) -> next_index
        self._spans: list[dict] = []
        self._lock = threading.Lock()

    def add_tracer(self, tracer) -> None:
        self._tracers.append(tracer)

    def poll(self) -> list[dict]:
        new: list[dict] = []
        if self._cluster is not None:
            cursors = {index: nxt for index, (_, nxt) in self._cursors.items()}
            for index, payload in dict(self._cluster.span_snapshots(cursors)).items():
                if not payload:
                    continue
                boot = payload.get("boot", "")
                known_boot, _ = self._cursors.get(index, ("", 0))
                if known_boot and boot != known_boot:
                    payload = self._cluster.shard_spans(index, since=0) or payload
                spans = payload.get("spans", [])
                self._cursors[index] = (payload.get("boot", ""), payload.get("next", 0))
                new.extend(spans)
        for tracer in self._tracers:
            since = self._local_cursors.get(id(tracer), 0)
            spans = tracer.spans()[since:]
            self._local_cursors[id(tracer)] = since + len(spans)
            new.extend(s.to_dict() for s in spans)
        if new:
            with self._lock:
                self._spans.extend(new)
        return new

    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def trees(self) -> dict:
        return stitch_spans(self.spans())

    def write_json(self, path) -> int:
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(spans, fh, sort_keys=True)
        return len(spans)


def stitch_spans(span_dicts) -> dict:
    """Reassemble cross-process span trees from a flat span-dict pool.

    Returns ``{trace_id: {"span": Span, "children": [...]}}`` — the same
    node shape :meth:`Tracer.span_tree` produces, but built from spans
    collected out of many tracers. Traces whose root was not collected
    (e.g. the rooting process died) are returned under their trace id
    with a synthetic rootless node list, because an incident trace with
    a dead leader is exactly the one worth inspecting.
    """
    by_trace: dict[str, list[Span]] = {}
    for data in span_dicts:
        span = data if isinstance(data, Span) else Span.from_dict(data)
        by_trace.setdefault(span.trace_id, []).append(span)
    trees: dict[str, dict] = {}
    for trace_id, spans in by_trace.items():
        nodes = {s.span_id: {"span": s, "children": []} for s in spans}
        root = None
        orphans = []
        for s in spans:
            node = nodes[s.span_id]
            if s.parent_id and s.parent_id in nodes:
                nodes[s.parent_id]["children"].append(node)
            elif not s.parent_id:
                root = node if root is None else root
            else:
                orphans.append(node)
        if root is not None:
            root["children"].extend(orphans)
            trees[trace_id] = root
        elif orphans:
            head, rest = orphans[0], orphans[1:]
            head["children"].extend(rest)
            trees[trace_id] = head
    return trees


def format_span_tree(node, indent: int = 0) -> list[str]:
    """Indented one-line-per-span rendering of a stitched tree."""
    span = node["span"]
    ms = span.duration * 1e3
    line = f"{'  ' * indent}{span.name} [{span.site}] {ms:.3f} ms"
    lines = [line]
    for child in sorted(node["children"], key=lambda n: n["span"].start):
        lines.extend(format_span_tree(child, indent + 1))
    return lines


# -- dashboard -------------------------------------------------------------


def render_dashboard(
    merged: dict,
    shard_info: dict | None = None,
    events=None,
    rate_history=None,
    scrape_s: float = 0.0,
    width: int = 40,
) -> str:
    """One text panel of the aggregated cluster view (``repro top``).

    *merged* is an aggregator scrape; *shard_info* maps shard index to
    the ``server_metrics`` dict (connections, epoch); *events* is the
    collector's recent tail; *rate_history* a list of records/s samples
    (sparklined). Pure function of its inputs so the watch loop and the
    tests share it.
    """
    from repro.monitoring.ascii import bar, sparkline

    lines: list[str] = []
    shards = merged.get("shards", [])
    lines.append(
        f"== repro cluster == shards up: {len(shards)}"
        f"  scrape: {scrape_s * 1e3:.1f} ms"
    )
    if rate_history:
        lines.append(f"produce rate: {sparkline(rate_history, width=width)} "
                     f"{rate_history[-1]:,.0f} rec/s")
    if shard_info:
        lines.append("")
        lines.append("shard  epoch  conns  requests")
        for index in sorted(shard_info, key=str):
            info = shard_info[index] or {}
            server = info.get("server", info)
            lines.append(
                f"{str(index):>5}  {info.get('epoch', '?'):>5}  "
                f"{server.get('connections_open', 0):>5}  "
                f"{server.get('requests_total', 0):>8}"
            )
    counters = merged.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters (summed across shards)")
        top = sorted(counters.items(), key=lambda kv: -abs(kv[1]))[:12]
        peak = max(abs(v) for _, v in top) or 1.0
        for name, value in top:
            lines.append(f"{name:<40} {bar(abs(value), peak, width)} {value:,.0f}")
    hists = merged.get("histograms", {})
    if hists:
        lines.append("")
        lines.append("latency histograms (bucket-merged)")
        for name in sorted(hists):
            snap = hists[name]
            lines.append(
                f"{name:<40} n={snap['count']:<8} "
                f"p50={snap['p50'] * 1e3:.3f}ms p99={snap['p99'] * 1e3:.3f}ms"
            )
    gauges = merged.get("gauges", {})
    lag_gauges = {k: v for k, v in gauges.items() if "lag" in k or "pending" in k}
    if lag_gauges:
        lines.append("")
        lines.append("lag / pending (per shard)")
        for name in sorted(lag_gauges)[:10]:
            per_shard = lag_gauges[name]
            detail = " ".join(
                f"s{shard}={value:,.0f}" for shard, value in sorted(per_shard.items(), key=lambda kv: str(kv[0]))
            )
            lines.append(f"{name:<40} {detail}")
    if events:
        lines.append("")
        lines.append("recent control-plane events")
        for event in list(events)[-8:]:
            lines.append("  " + (event.format() if isinstance(event, Event) else str(event)))
    return "\n".join(lines)
