"""Background gauge sampling: live time series for a running pipeline.

A :class:`TelemetrySampler` periodically snapshots gauge *sources* —
callables returning ``{series_name: value}`` — into an in-memory time
series.  Convenience ``watch_*`` methods register the gauges the broker
and clients expose:

* per-partition log depth, end offset, and retained bytes
  (:meth:`Broker.partition_depths`, also served over the wire),
* **consumer lag** per group × partition (end offset minus committed
  offset, via :meth:`Broker.consumer_lag`),
* group membership size,
* prefetch buffer bytes/records (:meth:`Consumer.stats`),
* pipelined-connection in-flight request count
  (:attr:`RemoteBroker.requests_in_flight`),
* broker-server connection gauges — ``connections_active``, parked
  long-polls, and reactor loop lag (:meth:`ReactorBrokerServer.metrics`).

Series export as JSONL (one sample round per line) and, through an
attached :class:`~repro.monitoring.instruments.MetricsRegistry`, as
Prometheus text exposition — either dumped by the CLI or served by
:func:`serve_exposition`.

Everything here is opt-in: nothing in the data path references a sampler,
so the disabled-by-default overhead is zero.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class TelemetrySampler:
    """Samples registered gauge sources on a fixed interval.

    Parameters
    ----------
    registry:
        Optional :class:`MetricsRegistry`; sampled values are mirrored
        into its gauges so the Prometheus exposition shows live levels.
    interval_s:
        Background sampling period. :meth:`sample_now` can always be
        called directly (tests do, for determinism).
    max_samples:
        Retention bound per series; the oldest samples are dropped first.
    """

    def __init__(
        self,
        registry=None,
        interval_s: float = 0.25,
        max_samples: int = 10_000,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.max_samples = int(max_samples)
        self._sources: list[tuple[str, object]] = []
        #: series name -> [(elapsed_seconds, value), ...]
        self._series: dict[str, list[tuple[float, float]]] = {}
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.sample_rounds = 0
        self.source_errors = 0
        #: Ticks the background loop skipped because sampling overran the
        #: interval (absolute schedule: late rounds don't compound).
        self.ticks_skipped = 0

    # -- sources ---------------------------------------------------------

    def add_source(self, name: str, fn) -> None:
        """Register a gauge source: ``fn() -> {series_name: value}``."""
        with self._lock:
            self._sources.append((name, fn))

    def watch_broker(self, broker) -> None:
        """Sample per-partition depth/end-offset/bytes, group membership
        size, and per-group consumer lag from *broker* (in-proc or
        remote — both expose the same telemetry surface).

        Groups are remembered once seen: a group whose last member left
        keeps its lag series alive (computed from committed offsets), so
        a run's lag trajectory visibly returns to 0 instead of ending on
        its last pre-shutdown value.
        """
        seen_groups: set[str] = set()

        def _sample() -> dict:
            out: dict[str, float] = {}
            depths = getattr(broker, "partition_depths", None)
            if depths is not None:
                for (topic, p), d in depths().items():
                    out[f"broker.log_depth.{topic}.{p}"] = d["depth"]
                    out[f"broker.end_offset.{topic}.{p}"] = d["end_offset"]
                    out[f"broker.log_bytes.{topic}.{p}"] = d["bytes"]
            coordinator = getattr(broker, "coordinator", None)
            if coordinator is not None and hasattr(coordinator, "group_ids"):
                seen_groups.update(coordinator.group_ids())
                try:
                    # Groups that already left still have committed
                    # offsets; include them so even a first sample taken
                    # after shutdown records the (drained) lag.
                    seen_groups.update(
                        key[0] for key in broker.committed_offsets()
                    )
                except (TypeError, AttributeError):
                    pass  # remote brokers only expose per-group queries
                for group in sorted(seen_groups):
                    out[f"group.members.{group}"] = len(coordinator.members(group))
                    for (topic, p), lag in broker.consumer_lag(group).items():
                        out[f"consumer_lag.{group}.{topic}.{p}"] = lag
            return out

        self.add_source(f"broker:{getattr(broker, 'name', 'broker')}", _sample)

    def watch_consumer(self, consumer) -> None:
        """Sample prefetch buffer fill and position-based lag."""
        name = getattr(consumer, "client_id", "consumer")

        def _sample() -> dict:
            out: dict[str, float] = {}
            stats = consumer.stats()
            if "prefetch_buffered_bytes" in stats:
                out[f"consumer.{name}.prefetch_buffered_bytes"] = stats[
                    "prefetch_buffered_bytes"
                ]
                out[f"consumer.{name}.prefetch_buffered_records"] = stats[
                    "prefetch_buffered_records"
                ]
            out[f"consumer.{name}.position_lag"] = sum(consumer.lag().values())
            return out

        self.add_source(f"consumer:{name}", _sample)

    def watch_remote(self, remote) -> None:
        """Sample the pipelined connection's in-flight request count."""
        name = getattr(remote, "name", "remote")

        def _sample() -> dict:
            return {f"remote.{name}.requests_in_flight": remote.requests_in_flight}

        self.add_source(f"remote:{name}", _sample)

    def watch_server(self, server) -> None:
        """Sample a broker server's connection-level gauges.

        Works with any server exposing a ``metrics()`` dict (the reactor
        server's ``connections_active`` / ``parked_fetches`` /
        ``reactor_loop_lag_s``); missing keys are simply not sampled, so
        the threaded baseline server can be watched too.
        """
        name = getattr(getattr(server, "broker", None), "name", None) or "server"

        def _sample() -> dict:
            metrics = server.metrics()
            out: dict[str, float] = {}
            for key in (
                "connections_active",
                "parked_fetches",
                "reactor_loop_lag_s",
                "requests_served",
                "connections_served",
            ):
                value = metrics.get(key)
                if value is not None:
                    out[f"server.{name}.{key}"] = float(value)
            return out

        self.add_source(f"server:{name}", _sample)

    def watch_cluster(self, cluster, name: str = "cluster") -> None:
        """Sample a sharded broker's per-shard server gauges.

        *cluster* is anything exposing ``shard_metrics() ->
        {shard_index: metrics}`` (a
        :class:`~repro.broker.cluster.ClusterBroker`). Each shard's
        ``connections_active`` / ``parked_fetches`` /
        ``reactor_loop_lag_s`` land under shard-labeled series
        (``cluster.shard0.parked_fetches``, ...), plus ``shards_up`` /
        ``shards_total`` so a dead shard is visible as a gap *and* a
        level drop. On a replicated cluster (``replication_status``)
        each led partition additionally reports ``isr_size`` and
        ``replica_lag`` (worst follower), plus the cluster-wide
        ``under_replicated_partitions`` count — the standard Kafka
        health gauge. Mirrored into the registry like every source, so
        the ``/metrics`` exposition covers all shards.
        """

        def _sample() -> dict:
            out: dict[str, float] = {}
            per_shard = cluster.shard_metrics()
            for index, metrics in per_shard.items():
                for key in (
                    "connections_active",
                    "parked_fetches",
                    "reactor_loop_lag_s",
                    "requests_served",
                    "connections_served",
                ):
                    value = metrics.get(key)
                    if value is not None:
                        out[f"{name}.shard{index}.{key}"] = float(value)
            out[f"{name}.shards_up"] = float(len(per_shard))
            total = getattr(cluster, "num_shards", None)
            if total is not None:
                out[f"{name}.shards_total"] = float(total)
            replication = getattr(cluster, "replication_status", None)
            if replication is not None:
                status = replication()
                if status.get("replication_factor", 1) > 1:
                    under = 0
                    for part in status.get("partitions", ()):
                        topic, p = part["topic"], part["partition"]
                        out[f"{name}.isr_size.{topic}.{p}"] = float(
                            len(part.get("isr", ()))
                        )
                        lags = [
                            f["lag"] for f in part.get("followers", ())
                        ] or [0]
                        out[f"{name}.replica_lag.{topic}.{p}"] = float(max(lags))
                        if part.get("under_replicated"):
                            under += 1
                    out[f"{name}.under_replicated_partitions"] = float(under)
            return out

        self.add_source(f"cluster:{name}", _sample)

    # -- sampling --------------------------------------------------------

    def sample_now(self) -> dict:
        """Run every source once; returns this round's ``{name: value}``."""
        with self._lock:
            sources = list(self._sources)
        values: dict[str, float] = {}
        for _, fn in sources:
            try:
                values.update(fn())
            except Exception:  # noqa: BLE001 — a dying component must not
                # take the telemetry loop (or the run) down with it.
                self.source_errors += 1
        t = time.monotonic() - self._t0
        with self._lock:
            self.sample_rounds += 1
            for name, value in values.items():
                series = self._series.setdefault(name, [])
                series.append((t, float(value)))
                if len(series) > self.max_samples:
                    del series[: len(series) - self.max_samples]
        if self.registry is not None:
            for name, value in values.items():
                self.registry.gauge(name).set(value)
        return values

    def _run(self) -> None:
        # Absolute schedule: each tick is t0 + k*interval, so a slow
        # sample round delays the NEXT round but does not push every
        # subsequent one later (the drift a relative `wait(interval)`
        # loop accumulates). Rounds the loop can no longer make are
        # skipped — counted, not crammed in back-to-back.
        interval = self.interval_s
        next_tick = time.monotonic() + interval
        while not self._stop.wait(max(0.0, next_tick - time.monotonic())):
            self.sample_now()
            next_tick += interval
            now = time.monotonic()
            if next_tick <= now:
                missed = int((now - next_tick) // interval) + 1
                self.ticks_skipped += missed
                next_tick += missed * interval

    def start(self) -> "TelemetrySampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-sampler", daemon=True
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def stop(self, final_sample: bool = True) -> None:
        """Stop the background thread; by default take one last sample so
        end-of-run levels (lag back to 0, buffers drained) are recorded."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + 5.0)
            self._thread = None
        if final_sample:
            self.sample_now()

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- access / export -------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, name: str) -> list[tuple[float, float]]:
        with self._lock:
            return list(self._series.get(name, ()))

    def latest(self, name: str) -> float | None:
        with self._lock:
            series = self._series.get(name)
            return series[-1][1] if series else None

    def snapshot(self) -> dict:
        with self._lock:
            return {name: list(points) for name, points in self._series.items()}

    def to_jsonl(self) -> str:
        """One JSON object per sample time: ``{"t": ..., "values": {...}}``.

        Rebuilt by grouping every series' points by timestamp, so a
        parsed dump reconstructs the exact in-memory series (see
        ``series_from_jsonl`` in :mod:`repro.monitoring.export`).
        """
        rounds: dict[float, dict] = {}
        for name, points in self.snapshot().items():
            for t, value in points:
                rounds.setdefault(t, {})[name] = value
        lines = [
            json.dumps({"t": t, "values": rounds[t]}, sort_keys=True)
            for t in sorted(rounds)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


class _ExpositionHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        registry = self.server.registry  # type: ignore[attr-defined]
        if self.path not in ("/", "/metrics"):
            self.send_error(404)
            return
        body = registry.to_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass


def serve_exposition(registry, host: str = "127.0.0.1", port: int = 0):
    """Serve *registry* as Prometheus text at ``/metrics`` (daemon thread).

    *registry* is anything with ``to_prometheus()`` — a
    :class:`~repro.monitoring.instruments.MetricsRegistry` or a
    :class:`~repro.monitoring.cluster.ClusterMetricsAggregator`.

    Returns the HTTP server. With ``port=0`` the kernel picks a free
    port; the actually-bound one is on ``server.port`` (and the full
    scrape target on ``server.url``) — ``server.server_address`` holds
    the same ``(host, port)`` pair. Stop with ``server.shutdown()``.
    """
    server = ThreadingHTTPServer((host, port), _ExpositionHandler)
    server.registry = registry  # type: ignore[attr-defined]
    server.daemon_threads = True
    bound_host, bound_port = server.server_address[:2]
    server.port = bound_port  # type: ignore[attr-defined]
    server.url = f"http://{bound_host}:{bound_port}/metrics"  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=server.serve_forever, name="telemetry-exposition", daemon=True
    )
    thread.start()
    return server
