"""Thread-safe metric collection."""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.monitoring.metrics import MessageTrace


def _is_sequence(value) -> bool:
    """Sequence-of-values vs scalar for the stamp_many broadcast rule."""
    return isinstance(value, (list, tuple)) or (
        hasattr(value, "__len__") and not isinstance(value, (str, bytes))
    )


class MetricsCollector:
    """Accumulates message traces and named counters for one run.

    All pipeline components share one collector per run; traces are linked
    by ``(run_id, message_id)`` so a message's path can be reconstructed
    regardless of which thread/site stamped each stage.
    """

    def __init__(self, run_id: str, registry=None) -> None:
        self.run_id = run_id
        self._traces: dict[str, MessageTrace] = {}
        self._counters: dict[str, float] = defaultdict(float)
        #: High-watermark gauges (``record_max``) — kept apart from the
        #: monotonic counters so exports can tell a level from a rate.
        self._gauges: dict[str, float] = {}
        #: Optional :class:`repro.monitoring.MetricsRegistry`. When set,
        #: counters/gauges are mirrored into typed instruments and
        #: ``process_end`` stamps feed a live end-to-end latency
        #: histogram, so percentiles are available mid-run.
        self._registry = registry
        # Per-collector instrument caches: the registry's name->instrument
        # lookup takes the registry lock, which is pure overhead when the
        # same counters are bumped on every message. A racy double-create
        # is harmless — the registry dedups by name.
        self._counter_cache: dict = {}
        self._gauge_cache: dict = {}
        self._e2e_hist = None
        self._lock = threading.Lock()

    # -- traces ----------------------------------------------------------

    def stamp(
        self,
        message_id: str,
        stage: str,
        timestamp: float,
        nbytes: int = 0,
        site: str = "",
        partition: int = -1,
    ) -> None:
        """Record one stage hit for *message_id*."""
        with self._lock:
            trace = self._traces.get(message_id)
            if trace is None:
                trace = MessageTrace(self.run_id, message_id)
                self._traces[message_id] = trace
            if partition >= 0:
                trace.partition = partition
            trace.stamp(stage, timestamp, nbytes=nbytes, site=site)
        if self._registry is not None and stage == "process_end":
            self._observe_latencies((trace,), timestamp)

    def stamp_many(
        self,
        message_ids,
        stage: str,
        timestamp: float,
        nbytes=0,
        site: str = "",
        partition=-1,
    ) -> None:
        """Record one stage hit for a whole batch of messages.

        The batched pipeline paths stamp every message of a poll/publish
        batch at the same stage and timestamp; doing it here costs ONE
        lock acquisition instead of one per message (~6 lock round-trips
        per message across the six pipeline stages otherwise).

        ``nbytes`` and ``partition`` may be scalars (applied to every
        message) or sequences aligned with *message_ids* (per-message
        values, e.g. record sizes at the ``consume`` stage).
        """
        ids = list(message_ids)
        nbytes_seq = nbytes if _is_sequence(nbytes) else [nbytes] * len(ids)
        part_seq = partition if _is_sequence(partition) else [partition] * len(ids)
        if len(nbytes_seq) != len(ids) or len(part_seq) != len(ids):
            raise ValueError("per-message nbytes/partition must align with message_ids")
        touched = []
        with self._lock:
            for message_id, nb, part in zip(ids, nbytes_seq, part_seq):
                trace = self._traces.get(message_id)
                if trace is None:
                    trace = MessageTrace(self.run_id, message_id)
                    self._traces[message_id] = trace
                if part >= 0:
                    trace.partition = part
                trace.stamp(stage, timestamp, nbytes=nb, site=site)
                touched.append(trace)
        if self._registry is not None and stage == "process_end":
            self._observe_latencies(touched, timestamp)

    def _observe_latencies(self, traces, end_ts: float) -> None:
        """Feed live latency histograms from completed message traces."""
        e2e = self._e2e_hist
        if e2e is None:
            e2e = self._e2e_hist = self._registry.histogram("pipeline_e2e_latency_s")
        latencies = []
        for trace in traces:
            start = trace.at("produce")
            if start is not None and end_ts >= start:
                latencies.append(end_ts - start)
        e2e.observe_many(latencies)

    def trace(self, message_id: str) -> MessageTrace | None:
        with self._lock:
            return self._traces.get(message_id)

    def traces(self, complete_only: bool = False) -> list[MessageTrace]:
        with self._lock:
            out = list(self._traces.values())
        if complete_only:
            out = [t for t in out if t.complete]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] += value
        if self._registry is not None and value >= 0:
            counter = self._counter_cache.get(name)
            if counter is None:
                counter = self._counter_cache[name] = self._registry.counter(name)
            counter.inc(value)

    def record_max(self, name: str, value: float) -> None:
        """High-watermark gauge: keep the largest value reported.

        Used for peak-style metrics (e.g. concurrent fetches in flight)
        where summing per-thread reports would overstate the level.
        The first report always lands, whatever its sign — "never
        reported" is tracked by key absence, not by comparing against an
        implicit 0 (which would silently drop a first negative value).
        """
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = float(value)
        if self._registry is not None:
            gauge = self._gauge_cache.get(name)
            if gauge is None:
                gauge = self._gauge_cache[name] = self._registry.gauge(name)
            gauge.set_max(value)

    def counter(self, name: str) -> float:
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            return self._gauges.get(name, 0.0)

    def counters(self) -> dict:
        """Flat merged view of counters and gauges (legacy key layout).

        Bench guards and older exports read rates and high-watermarks
        from one dict; use :meth:`split_counters` when the distinction
        matters. A name reported through both kinds resolves to the
        counter.
        """
        with self._lock:
            out = dict(self._gauges)
            out.update(self._counters)
            return out

    def split_counters(self) -> dict:
        """Typed view: ``{"counters": {...}, "gauges": {...}}``.

        Counters are monotonic rates (``incr``); gauges are
        high-watermark levels (``record_max``).
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }

    def gauges(self) -> dict:
        with self._lock:
            return dict(self._gauges)
