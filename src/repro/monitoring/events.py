"""Structured control-plane event journal.

Metrics answer *how much*; the journal answers *what happened*. Every
control-plane transition the cluster makes — a leader election, an ISR
eviction, a shard respawn, a boot recovery, a flush stall — is appended
to a ring-buffered :class:`EventJournal` as a typed, monotonically
sequenced :class:`Event`. Each process (supervisor, every shard) owns
one journal; the ``events_since`` wire op lets the aggregation plane
drain them incrementally, and :func:`merge_timeline` interleaves the
drained streams into one incident narrative ordered by wall clock with
``(origin, seq)`` as the tiebreak, so a SIGKILL'd leader's story reads
"shard_died → leader_elected → shard_respawned → recovery_completed →
isr_join" even though four processes wrote it.

The journal is deliberately always-on: emissions are control-plane rare
(per election, per boot, per stall — never per record), so one lock and
one deque append per event costs nothing measurable, and the events are
exactly what an operator needs *after* the incident, when it is too
late to turn telemetry on.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "EVENT_TYPES",
    "Event",
    "EventJournal",
    "merge_timeline",
    "read_jsonl",
]

# The closed set of control-plane event types. ``emit`` accepts only
# these so a typo'd event name fails at the emission site, not silently
# at query time. Extend the tuple when a new subsystem gains a voice.
EVENT_TYPES = (
    "shard_started",      # worker process bound its port (supervisor)
    "shard_died",         # monitor detected a dead worker (supervisor)
    "shard_respawned",    # monitor restarted a worker (supervisor)
    "leader_elected",     # partition leadership moved (supervisor)
    "isr_join",           # follower caught up, joined the ISR (leader shard)
    "isr_evict",          # follower lagged/timed out, left the ISR (leader shard)
    "recovery_completed", # boot recovery replayed a partition's segments (shard)
    "segment_offloaded",  # retention shipped a sealed segment to the cloud tier (shard)
    "flush_stall",        # a group-commit flush exceeded the stall threshold (shard)
    "producer_fenced",    # idempotent producer rejected by epoch fencing (shard)
)


@dataclass(frozen=True)
class Event:
    """One control-plane transition.

    ``seq`` is monotonic *per journal* (per process); global ordering
    across journals is by ``ts`` with ``(origin, seq)`` as tiebreak —
    see :func:`merge_timeline`.
    """

    seq: int
    ts: float
    type: str
    origin: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "origin": self.origin,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(
            seq=int(data["seq"]),
            ts=float(data["ts"]),
            type=str(data["type"]),
            origin=str(data.get("origin", "?")),
            fields=dict(data.get("fields") or {}),
        )

    def format(self) -> str:
        """One human-readable timeline line."""
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        stamp = time.strftime("%H:%M:%S", time.localtime(self.ts))
        frac = f"{self.ts % 1:.3f}"[1:]
        return f"{stamp}{frac} [{self.origin}:{self.seq}] {self.type} {detail}".rstrip()


class EventJournal:
    """Ring-buffered, monotonically sequenced event log for one process.

    ``emit`` is thread-safe and cheap (one lock, one deque append); the
    ring bound means a chatty subsystem can never OOM the process — old
    events fall off the head, and ``events_since`` reports the drop via
    the caller's cursor simply returning fewer events than the gap.
    """

    def __init__(self, origin: str = "local", maxlen: int = 4096) -> None:
        self.origin = origin
        # A fresh random token per journal instance: a collector that
        # cached a cursor against a dead process's journal sees the boot
        # token change after a respawn and re-drains from zero.
        self.boot = os.urandom(4).hex()
        self._events: deque[Event] = deque(maxlen=maxlen)
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, type: str, **fields) -> Event:
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}; add it to EVENT_TYPES")
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts=time.time(),
                type=type,
                origin=self.origin,
                fields=fields,
            )
            self._events.append(event)
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def next_seq(self) -> int:
        """The sequence number the *next* emitted event will carry."""
        with self._lock:
            return self._seq + 1

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def events_since(self, seq: int = 0) -> list[Event]:
        """Every retained event with ``event.seq > seq``, in order.

        This is the incremental-drain primitive behind the wire op: a
        collector remembers the last seq it saw per journal and passes
        it back, getting only the delta.
        """
        with self._lock:
            return [e for e in self._events if e.seq > seq]

    def timeline(self) -> list[str]:
        """Human-readable lines for this journal's retained events."""
        return [e.format() for e in self.events()]

    def to_jsonl(self) -> str:
        """JSONL export — one event per line, oldest first."""
        return "".join(json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in self.events())

    def write_jsonl(self, path) -> int:
        """Write the retained events to ``path``; returns the event count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for e in events:
                fh.write(json.dumps(e.to_dict(), sort_keys=True) + "\n")
        return len(events)


def merge_timeline(*streams) -> list[Event]:
    """Interleave events from many journals into one global order.

    Accepts any mix of :class:`EventJournal` instances, lists of
    :class:`Event`, and lists of event dicts (as drained over the wire
    or re-read from a JSONL artifact). Orders by ``(ts, origin, seq)``:
    wall clock first — the only clock the processes share — with the
    per-journal sequence breaking ties so two events from one origin
    never swap even when their timestamps collide.
    """
    merged: list[Event] = []
    for stream in streams:
        if isinstance(stream, EventJournal):
            merged.extend(stream.events())
            continue
        for item in stream:
            merged.append(item if isinstance(item, Event) else Event.from_dict(item))
    merged.sort(key=lambda e: (e.ts, e.origin, e.seq))
    return merged


def read_jsonl(path) -> list[Event]:
    """Re-read a journal artifact written by :meth:`EventJournal.write_jsonl`."""
    events: list[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events
