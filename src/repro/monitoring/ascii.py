"""Terminal-friendly run visualisations.

No plotting stack is available offline, so the monitoring subsystem
renders its own: per-stage latency bars and a throughput sparkline over
the run — enough to eyeball a run's shape from a terminal, the way the
paper's figures are read.
"""

from __future__ import annotations

import numpy as np

from repro.monitoring.collector import MetricsCollector
from repro.monitoring.report import ThroughputReport

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """Compress a series into a unicode sparkline of ~width chars."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Bucket-average down to the target width.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([
            arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])
        ])
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * arr.size
    idx = ((arr - lo) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def bar(value: float, maximum: float, width: int = 40) -> str:
    """A horizontal bar scaled against *maximum*."""
    if maximum <= 0:
        return ""
    filled = int(round(min(value / maximum, 1.0) * width))
    return "█" * filled + "·" * (width - filled)


def render_stage_breakdown(report: ThroughputReport, width: int = 40) -> str:
    """Bars of per-stage mean latency — where a message's time goes."""
    stages = report.stage_means_s
    if not stages:
        return "(no stage data)"
    maximum = max(stages.values())
    lines = []
    for name, seconds in stages.items():
        lines.append(
            f"{name:<28} {bar(seconds, maximum, width)} {seconds * 1e3:8.2f} ms"
        )
    return "\n".join(lines)


def render_throughput_timeline(
    collector: MetricsCollector, buckets: int = 60
) -> str:
    """Sparkline of completion rate over the run's duration."""
    traces = collector.traces(complete_only=True)
    if not traces:
        return "(no complete traces)"
    ends = np.array(sorted(t.at("process_end") for t in traces))
    start, stop = ends[0], ends[-1]
    if stop <= start:
        return _BLOCKS[-1]
    counts, _ = np.histogram(ends, bins=buckets, range=(start, stop))
    return sparkline(counts, width=buckets)


def render_run(collector: MetricsCollector, title: str = "") -> str:
    """Full text panel: headline numbers, stage bars, timeline."""
    report = ThroughputReport.from_collector(collector)
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(
        f"{report.messages} msgs  {report.throughput_mb_s:.2f} MB/s  "
        f"{report.throughput_msgs_s:.1f} msgs/s  "
        f"latency p50 {report.latency_p50_s * 1e3:.1f} ms / "
        f"p95 {report.latency_p95_s * 1e3:.1f} ms"
    )
    lines.append("")
    lines.append(render_stage_breakdown(report))
    lines.append("")
    lines.append(f"completions over time: {render_throughput_timeline(collector)}")
    return "\n".join(lines)
