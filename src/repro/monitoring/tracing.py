"""Span-based distributed tracing for the edge-to-cloud continuum.

A :class:`Tracer` produces :class:`Span` objects carrying
``(trace_id, span_id, parent_id)``.  Context is propagated between
components (producer -> wire -> broker log -> consumer -> processor) as a
single compact string header, ``headers["trace"] = "<trace_id>:<span_id>"``,
so one message's produce -> uplink -> broker -> long-poll -> downlink ->
process path reconstructs as a span tree even when the hops happened on
different threads, sockets, or sites.

Design constraints (mirroring the rest of ``repro.monitoring``):

* **Disabled by default, near-zero cost when off.**  Every integration
  point guards on ``tracer is not None``; components never construct a
  tracer themselves.
* **Cheap when sampled out.**  ``sample_rate < 1.0`` makes
  :meth:`Tracer.start_trace` return the shared :data:`NOOP_SPAN`, whose
  child spans and injections are all no-ops, so long runs can keep a
  statistical sample of full trees without per-message allocation.
* **Bounded retention.**  At most ``max_spans`` finished spans are kept;
  further spans are counted in ``dropped`` rather than stored.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time

TRACE_HEADER = "trace"

_tracer_seq = itertools.count(1)


class Span:
    """One timed operation within a trace.

    Spans are recorded into their tracer on :meth:`finish` (or on context
    manager exit).  ``parent_id`` is ``""`` for root spans.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "site",
        "start",
        "end",
        "_attrs",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer | None",
        trace_id: str,
        span_id: str,
        parent_id: str,
        name: str,
        site: str = "",
        start: float | None = None,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.site = site
        self.start = time.monotonic() if start is None else float(start)
        self.end: float | None = None
        # Allocated on first use: most spans on the data path carry no
        # attributes, and the empty-dict churn showed up in the enabled-
        # telemetry overhead benchmark.
        self._attrs: dict | None = None

    @property
    def attrs(self) -> dict:
        if self._attrs is None:
            self._attrs = {}
        return self._attrs

    @attrs.setter
    def attrs(self, value: dict) -> None:
        self._attrs = value

    # -- lifecycle -------------------------------------------------------

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def recording(self) -> bool:
        return True

    def set_attr(self, key: str, value) -> "Span":
        if self._attrs is None:
            self._attrs = {}
        self._attrs[key] = value
        return self

    def finish(self, end: float | None = None) -> None:
        if self.end is not None:  # already finished; keep first end time
            return
        self.end = time.monotonic() if end is None else float(end)
        if self._tracer is not None:
            self._tracer._record(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()

    # -- context ---------------------------------------------------------

    @property
    def context(self) -> str:
        """Wire form of this span's context: ``"trace_id:span_id"``."""
        return f"{self.trace_id}:{self.span_id}"

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self._attrs) if self._attrs else {},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            None,
            data["trace_id"],
            data["span_id"],
            data.get("parent_id", ""),
            data.get("name", ""),
            site=data.get("site", ""),
            start=data.get("start", 0.0),
        )
        span.end = data.get("end")
        span.attrs = dict(data.get("attrs", {}))
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id or None!r}, site={self.site!r})"
        )


class _NoopSpan:
    """Shared placeholder returned for sampled-out traces.

    Every operation is a no-op and every child is the same object, so an
    unsampled message pays one attribute check per hop and nothing else.
    """

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = ""
    name = ""
    site = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    attrs: dict = {}
    context = ""

    @property
    def recording(self) -> bool:
        return False

    def set_attr(self, key, value):
        return self

    def finish(self, end=None) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:
        return "NoopSpan()"


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates, samples, and retains spans for one process.

    All components of a deployment may share one tracer (the integration
    tests do exactly that: pipeline, remote client, and broker server all
    record into the same instance, so the cross-site span tree assembles
    in memory without a collection backend).
    """

    def __init__(
        self,
        service: str = "",
        sample_rate: float = 1.0,
        max_spans: int = 100_000,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.service = service
        self.sample_rate = float(sample_rate)
        self.max_spans = int(max_spans)
        self._rng = random.Random(seed)
        self._prefix = f"{next(_tracer_seq):x}{os.urandom(3).hex()}"
        self._seq = itertools.count(1)
        self._spans: list[Span] = []
        self._dropped = 0
        # Lock-free sampled-out counter: next() on an itertools.count is
        # a single C call, so the sampled-out fast path pays no lock —
        # the whole point of sampling is that unsampled traffic is free.
        self._sampled_out = itertools.count()
        self._sampled_out_base = 0
        self._lock = threading.Lock()

    # -- span creation ---------------------------------------------------

    def _new_id(self) -> str:
        return f"{self._prefix}-{next(self._seq):x}"

    def _sampled_out_total(self) -> int:
        # itertools.count has no non-consuming read; its pickle form
        # carries the next value, which is exactly the increment count.
        return self._sampled_out.__reduce__()[1][0] - self._sampled_out_base

    def start_trace(self, name: str, site: str = "", start: float | None = None):
        """Start a new root span, applying the sampling decision."""
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            next(self._sampled_out)
            return NOOP_SPAN
        trace_id = self._new_id()
        return Span(self, trace_id, self._new_id(), "", name, site=site, start=start)

    def start_span(
        self,
        name: str,
        parent=None,
        site: str = "",
        start: float | None = None,
    ):
        """Start a child span of *parent* (a Span, context string, or None).

        ``parent=None`` starts a new (sampled) trace; a noop parent yields
        the noop span; a context string (e.g. extracted from headers)
        continues that remote trace.
        """
        if parent is None:
            return self.start_trace(name, site=site, start=start)
        if isinstance(parent, _NoopSpan):
            return NOOP_SPAN
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            ctx = parse_context(parent)
            if ctx is None:
                return self.start_trace(name, site=site, start=start)
            trace_id, parent_id = ctx
        return Span(self, trace_id, self._new_id(), parent_id, name, site=site, start=start)

    # -- propagation -----------------------------------------------------

    def inject(self, span, headers: dict | None) -> dict | None:
        """Write *span*'s context into a headers dict (returned).

        Noop spans leave headers untouched, so sampled-out messages carry
        no trace header at all.
        """
        if not span.recording:
            return headers
        if headers is None:
            headers = {}
        headers[TRACE_HEADER] = span.context
        return headers

    @staticmethod
    def extract(headers: dict | None) -> str | None:
        """Read a propagated context string from headers (or ``None``)."""
        if not headers:
            return None
        ctx = headers.get(TRACE_HEADER)
        return ctx if isinstance(ctx, str) and ctx else None

    # -- retention -------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
                return
            self._spans.append(span)

    def record_hops(
        self,
        name: str,
        hops,
        site: str = "",
        start: float | None = None,
        end: float | None = None,
    ) -> None:
        """Record a batch of already-finished leaf spans in one pass.

        *hops* is an iterable of ``(context, attrs)`` pairs: *context* is
        a propagated ``"trace_id:span_id"`` string (pairs with an
        unparsable context are skipped) and *attrs* an attribute dict or
        ``None``. Every span gets the same *name*, *site*, *start* and
        *end* — the shape of the broker-append and consumer-poll hops,
        where a whole poll/append batch shares one timestamp anyway.

        This is the data path's bulk alternative to
        ``start_span(...).finish()`` per record: the retention lock is
        taken once per batch instead of once per span, which is most of
        what the enabled-telemetry overhead gate measures.
        """
        end = time.monotonic() if end is None else float(end)
        start = end if start is None else float(start)
        spans: list[Span] = []
        prefix, seq = self._prefix, self._seq
        new = Span.__new__
        for ctx, attrs in hops:
            # Inlined parse_context + Span construction: this loop runs
            # once per record on the consume path, so it skips the
            # constructor's clock check and the helper-call overhead.
            if not ctx:
                continue
            trace_id, sep, parent_id = ctx.partition(":")
            if not sep or not trace_id or not parent_id:
                continue
            span = new(Span)
            span._tracer = None
            span.trace_id = trace_id
            span.span_id = f"{prefix}-{next(seq):x}"
            span.parent_id = parent_id
            span.name = name
            span.site = site
            span.start = start
            span.end = end
            span._attrs = attrs or None
            spans.append(span)
        if not spans:
            return
        with self._lock:
            room = self.max_spans - len(self._spans)
            if room >= len(spans):
                self._spans.extend(spans)
            elif room > 0:
                self._spans.extend(spans[:room])
                self._dropped += len(spans) - room
            else:
                self._dropped += len(spans)

    def spans(self, trace_id: str | None = None) -> list[Span]:
        with self._lock:
            out = list(self._spans)
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        return out

    def trace_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def span_tree(self, trace_id: str) -> dict | None:
        """Nested ``{"span": Span, "children": [...]}`` tree for a trace.

        Returns ``None`` if the trace has no root (e.g. retention dropped
        it).  Orphan spans (parent not retained) attach under the root.
        """
        spans = self.spans(trace_id)
        if not spans:
            return None
        nodes = {s.span_id: {"span": s, "children": []} for s in spans}
        root = None
        orphans = []
        for s in spans:
            node = nodes[s.span_id]
            if s.parent_id and s.parent_id in nodes:
                nodes[s.parent_id]["children"].append(node)
            elif not s.parent_id:
                root = node if root is None else root
            else:
                orphans.append(node)
        if root is None:
            return None
        root["children"].extend(orphans)
        return root

    def stats(self) -> dict:
        with self._lock:
            return {
                "spans_retained": len(self._spans),
                "spans_dropped": self._dropped,
                "traces_sampled_out": self._sampled_out_total(),
            }

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0
            self._sampled_out_base = self._sampled_out.__reduce__()[1][0]


def parse_context(context: str) -> tuple[str, str] | None:
    """Split a wire context string into ``(trace_id, span_id)``."""
    if not isinstance(context, str) or ":" not in context:
        return None
    trace_id, _, span_id = context.partition(":")
    if not trace_id or not span_id:
        return None
    return trace_id, span_id
