"""Typed metric instruments and the registry that names them.

Three instrument types, mirroring the Prometheus data model the paper's
monitoring section assumes:

* :class:`Counter` — monotonically increasing rate (records in, retries).
* :class:`Gauge` — a level that can go up and down (log depth, lag).
  ``set_max`` supports high-watermark use (peak in-flight requests).
* :class:`Histogram` — log-bucketed latency distribution with live
  p50/p95/p99, so percentiles are available *during* a run instead of
  only from full trace retention afterwards.

A :class:`MetricsRegistry` hands out instruments by name (get-or-create,
thread-safe) and renders the whole set as Prometheus text exposition
format for the CLI dump / HTTP endpoint in ``repro.monitoring.sampler``.
"""

from __future__ import annotations

import math
import threading


def _check_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ValueError(f"instrument name must be a non-empty string, got {name!r}")
    return name


class Counter:
    """Monotonic counter. Negative increments are rejected."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A settable level; also supports high-watermark and delta updates."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the largest value ever reported (first report always lands)."""
        with self._lock:
            if self._value is None or value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value = (self._value or 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current level; an untouched gauge reads 0."""
        with self._lock:
            return 0.0 if self._value is None else self._value

    @property
    def reported(self) -> bool:
        with self._lock:
            return self._value is not None


class Histogram:
    """Log-bucketed histogram for latency-style observations.

    Buckets are geometric: ``base * growth**i`` for i in [0, nbuckets),
    defaulting to 1 µs .. ~1100 s with x2 growth (31 buckets) — wide
    enough for in-proc microseconds and WAN-emulated seconds alike while
    staying O(30) memory per instrument.  Percentiles are estimated by
    log-linear interpolation inside the winning bucket, which is exact to
    within one bucket's resolution (a factor of ``growth``).
    """

    __slots__ = ("name", "_bounds", "_buckets", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        base: float = 1e-6,
        growth: float = 2.0,
        nbuckets: int = 31,
    ) -> None:
        self.name = _check_name(name)
        if base <= 0 or growth <= 1.0 or nbuckets < 1:
            raise ValueError("histogram needs base > 0, growth > 1, nbuckets >= 1")
        self._bounds = [base * growth**i for i in range(nbuckets)]
        self._buckets = [0] * (nbuckets + 1)  # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def _bucket_index(self, value: float) -> int:
        if value <= self._bounds[0]:
            return 0
        if value > self._bounds[-1]:
            return len(self._bounds)
        # log-time lookup: bounds are geometric so the index is a log
        base, growth = self._bounds[0], self._bounds[1] / self._bounds[0]
        idx = int(math.ceil(math.log(value / base, growth) - 1e-9))
        # guard float slop at bucket edges
        while idx > 0 and value <= self._bounds[idx - 1]:
            idx -= 1
        while idx < len(self._bounds) and value > self._bounds[idx]:
            idx += 1
        return idx

    def observe(self, value: float) -> None:
        value = float(value)
        idx = self._bucket_index(value) if value > 0 else 0
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values) -> None:
        """Record a batch of observations under one lock acquisition.

        The pipeline completes messages in poll-sized batches; observing
        them one lock round-trip at a time showed up in the enabled-
        telemetry overhead benchmark.
        """
        if not values:
            return
        bucket_index = self._bucket_index
        indexed = [(bucket_index(v) if v > 0 else 0, v) for v in map(float, values)]
        with self._lock:
            buckets = self._buckets
            for idx, value in indexed:
                buckets[idx] += 1
                self._sum += value
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
            self._count += len(indexed)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100]) from bucket counts."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q / 100.0 * self._count
            seen = 0
            for idx, n in enumerate(self._buckets):
                if n == 0:
                    continue
                if seen + n >= target:
                    frac = (target - seen) / n if n else 0.0
                    lo = self._bounds[idx - 1] if idx > 0 else 0.0
                    hi = self._bounds[idx] if idx < len(self._bounds) else self._max
                    hi = min(hi, self._max)
                    lo = max(lo, self._min if self._min != math.inf else lo)
                    if hi <= lo:
                        return hi
                    return lo + frac * (hi - lo)
                seen += n
            return self._max

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            buckets = list(self._buckets)
            lo = self._min if self._min != math.inf else 0.0
            hi = self._max if self._max != -math.inf else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": lo,
            "max": hi,
            "buckets": buckets,
            "bounds": list(self._bounds),
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    A name is bound to a single instrument type for the registry's
    lifetime; asking for the same name with a different type raises, so
    wiring bugs (a counter sampled as a gauge) fail loudly.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, *args, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get_or_create(name, Histogram, **kwargs)

    def instruments(self) -> dict:
        with self._lock:
            return dict(self._instruments)

    def collect(self) -> dict:
        """Flat snapshot: counters/gauges as floats, histograms as dicts."""
        out: dict[str, object] = {}
        for name, inst in sorted(self.instruments().items()):
            if isinstance(inst, Histogram):
                out[name] = inst.snapshot()
            else:
                out[name] = inst.value
        return out

    def snapshot(self) -> dict:
        """Typed, wire-friendly snapshot for the federated metrics plane.

        Unlike :meth:`collect` (flat, for human dumps), this keeps the
        instrument *types* — the cluster aggregator needs them to know
        that counters sum across shards, gauges get a ``shard`` label,
        and histograms bucket-merge. Everything in the returned dict is
        JSON-serialisable (floats, ints, lists).
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name, inst in sorted(self.instruments().items()):
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            elif isinstance(inst, Histogram):
                histograms[name] = inst.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Render every instrument in Prometheus text exposition format."""
        lines: list[str] = []
        for name, inst in sorted(self.instruments().items()):
            metric = _prom_name(namespace, name)
            if isinstance(inst, Counter):
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {_prom_value(inst.value)}")
            elif isinstance(inst, Gauge):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_prom_value(inst.value)}")
            elif isinstance(inst, Histogram):
                snap = inst.snapshot()
                lines.append(f"# TYPE {metric} histogram")
                cumulative = 0
                for bound, n in zip(snap["bounds"], snap["buckets"]):
                    cumulative += n
                    lines.append(
                        f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                    )
                lines.append(f'{metric}_bucket{{le="+Inf"}} {snap["count"]}')
                lines.append(f"{metric}_sum {_prom_value(snap['sum'])}")
                lines.append(f"{metric}_count {snap['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(namespace: str, name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{namespace}_{safe}" if namespace else safe


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
