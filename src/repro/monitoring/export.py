"""Report and trace exporters.

Experiments want machine-readable artefacts next to the printed tables:
CSV rows (one per run) for spreadsheet-style sweeps, and JSON trace dumps
for offline latency analysis. Both formats are plain stdlib so exports
work in constrained environments.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable

from repro.monitoring.collector import MetricsCollector
from repro.monitoring.metrics import STAGES
from repro.monitoring.report import ThroughputReport


def report_rows(reports: Iterable[ThroughputReport], labels: Iterable[str] | None = None) -> list[dict]:
    """Flatten reports (optionally labelled) into CSV-ready dicts."""
    reports = list(reports)
    labels = list(labels) if labels is not None else [r.run_id for r in reports]
    if len(labels) != len(reports):
        raise ValueError(f"{len(labels)} labels for {len(reports)} reports")
    rows = []
    for label, report in zip(labels, reports):
        row = {"label": label, **report.row()}
        for stage, seconds in report.stage_means_s.items():
            row[f"stage:{stage}_ms"] = round(seconds * 1e3, 4)
        rows.append(row)
    return rows


def write_reports_csv(
    path: str | Path,
    reports: Iterable[ThroughputReport],
    labels: Iterable[str] | None = None,
) -> Path:
    """Write one CSV row per report; returns the path written."""
    rows = report_rows(reports, labels)
    if not rows:
        raise ValueError("no reports to write")
    # Union of keys across rows keeps sweeps with differing stages aligned.
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def reports_csv_string(
    reports: Iterable[ThroughputReport], labels: Iterable[str] | None = None
) -> str:
    """CSV text in memory (for logging/embedding)."""
    rows = report_rows(reports, labels)
    if not rows:
        raise ValueError("no reports to render")
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def traces_to_json(collector: MetricsCollector, complete_only: bool = True) -> str:
    """Serialize message traces for offline analysis."""
    out = []
    for trace in collector.traces(complete_only=complete_only):
        timings = {
            stage: {
                "t": timing.timestamp,
                "nbytes": timing.nbytes,
                "site": timing.site,
            }
            for stage, timing in sorted(trace.timings.items())
        }
        out.append(
            {
                "run_id": trace.run_id,
                "message_id": trace.message_id,
                "partition": trace.partition,
                "end_to_end_latency_s": trace.end_to_end_latency,
                "timings": timings,
            }
        )
    return json.dumps({"stages": list(STAGES), "traces": out}, indent=2)


def write_traces_json(
    path: str | Path, collector: MetricsCollector, complete_only: bool = True
) -> Path:
    path = Path(path)
    path.write_text(traces_to_json(collector, complete_only=complete_only))
    return path


def spans_to_json(tracer) -> str:
    """Serialize a tracer's retained spans (grouped by trace) as JSON."""
    traces = {
        trace_id: [span.to_dict() for span in tracer.spans(trace_id)]
        for trace_id in tracer.trace_ids()
    }
    return json.dumps({"stats": tracer.stats(), "traces": traces}, indent=2)


def spans_from_json(text: str) -> dict:
    """Parse a :func:`spans_to_json` dump back into Span objects.

    Returns ``{trace_id: [Span, ...]}``; spans are detached (not bound to
    a tracer), suitable for offline tree reconstruction.
    """
    from repro.monitoring.tracing import Span

    data = json.loads(text)
    return {
        trace_id: [Span.from_dict(obj) for obj in spans]
        for trace_id, spans in data.get("traces", {}).items()
    }


def write_spans_json(path: str | Path, tracer) -> Path:
    path = Path(path)
    path.write_text(spans_to_json(tracer))
    return path


def series_from_jsonl(text: str) -> dict:
    """Parse a sampler JSONL dump back into per-series point lists.

    Inverse of :meth:`TelemetrySampler.to_jsonl`: returns
    ``{series_name: [(t, value), ...]}`` with points in time order.
    """
    series: dict[str, list] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        t = obj["t"]
        for name, value in obj["values"].items():
            series.setdefault(name, []).append((t, value))
    for points in series.values():
        points.sort(key=lambda p: p[0])
    return series


def write_series_jsonl(path: str | Path, sampler) -> Path:
    path = Path(path)
    path.write_text(sampler.to_jsonl())
    return path
