"""Workload demand and application objectives."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.serde import encoded_size
from repro.util.validation import (
    ValidationError,
    check_non_negative,
    check_one_of,
    check_positive,
)


@dataclass(frozen=True)
class WorkloadProfile:
    """What the application demands of the continuum.

    ``process_cost_s`` is the calibrated per-message compute cost on a
    reference cloud core (see :func:`repro.sim.calibrate_model_cost`);
    ``edge_slowdown`` scales it for device-class hardware.
    """

    points: int = 1000
    features: int = 32
    #: Aggregate arrival rate across all devices (messages/second).
    rate_msgs_s: float = 10.0
    #: Number of edge data sources (each needs a partition + device).
    num_devices: int = 4
    process_cost_s: float = 0.02
    edge_slowdown: float = 8.0
    #: Output/input ratio of the available edge pre-processing step.
    compression_ratio: float = 1.0

    def __post_init__(self) -> None:
        check_positive("points", self.points)
        check_positive("features", self.features)
        check_positive("rate_msgs_s", self.rate_msgs_s)
        check_positive("num_devices", self.num_devices)
        check_positive("process_cost_s", self.process_cost_s)
        check_positive("edge_slowdown", self.edge_slowdown)
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValidationError("compression_ratio must be in (0, 1]")

    @property
    def message_bytes(self) -> int:
        return encoded_size(self.points, self.features)

    @property
    def demand_mb_s(self) -> float:
        """Raw data rate the sources generate."""
        return self.rate_msgs_s * self.message_bytes / 1e6

    @property
    def required_cloud_cores(self) -> float:
        """Processing cores needed to keep up at the cloud tier."""
        return self.rate_msgs_s * self.process_cost_s


@dataclass(frozen=True)
class ApplicationObjective:
    """What the application wants, in order of hardness.

    Floors/ceilings of 0 mean "unconstrained". ``prefer`` breaks ties
    between feasible plans.
    """

    min_throughput_msgs_s: float = 0.0
    max_latency_s: float = 0.0
    max_cost_per_hour: float = 0.0
    prefer: str = "cost"  # "cost" | "latency" | "energy"

    def __post_init__(self) -> None:
        check_non_negative("min_throughput_msgs_s", self.min_throughput_msgs_s)
        check_non_negative("max_latency_s", self.max_latency_s)
        check_non_negative("max_cost_per_hour", self.max_cost_per_hour)
        check_one_of("prefer", self.prefer, ("cost", "latency", "energy"))
