"""The resource planner.

Planning is deliberately analytic (no search): the continuum pipeline is
a chain of three service stages (devices -> link -> consumers), so
feasibility and sizing follow from service-rate arithmetic:

- **consumer sizing** — cores needed = arrival rate x per-message cost,
- **link feasibility** — demanded MB/s must fit inside the bottleneck
  link's mean bandwidth; if not, the planner tries the edge
  pre-processing (compression) step, then edge placement,
- **instance selection** — the cheapest catalogue VM (or set of VMs)
  covering the needed cores, under the cost ceiling,
- **latency estimate** — mean one-way link latency + transfer
  serialization + processing service time (steady, uncongested
  approximation, which is what objectives are stated against).

:func:`validate_plan` closes the loop: it replays the planned
configuration in the discrete-event simulator and checks the plan's
promised throughput is actually achieved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.compute.task import ResourceSpec
from repro.netem.topology import ContinuumTopology
from repro.pilot.description import PilotDescription
from repro.planner.objectives import ApplicationObjective, WorkloadProfile
from repro.util.validation import ValidationError


class InfeasibleObjective(RuntimeError):
    """No plan can satisfy the objective with the given resources."""


@dataclass(frozen=True)
class PricedInstance:
    """A catalogue VM class with an hourly price."""

    name: str
    spec: ResourceSpec
    price_per_hour: float


#: Paper's VM classes with plausible on-demand prices (USD/h).
DEFAULT_PRICED_CATALOG: tuple = (
    PricedInstance("lrz.medium", ResourceSpec(cores=4, memory_gb=18), 0.20),
    PricedInstance("lrz.large", ResourceSpec(cores=10, memory_gb=44), 0.48),
    PricedInstance("jetstream.medium", ResourceSpec(cores=6, memory_gb=16), 0.28),
)

#: Hourly cost of keeping one RasPi-class device on (power + amortisation).
EDGE_DEVICE_COST_PER_HOUR = 0.01


@dataclass
class Plan:
    """A concrete, submittable resource layout."""

    placement: str                      # "cloud" | "hybrid" | "edge"
    edge_pilot: PilotDescription
    cloud_pilot: PilotDescription | None
    consumers: int
    instance: PricedInstance | None
    est_throughput_msgs_s: float
    est_latency_s: float
    est_cost_per_hour: float
    rationale: str = ""
    notes: list = field(default_factory=list)

    def describe(self) -> str:
        cloud = (
            f"{self.cloud_pilot.nodes} x {self.instance.name}" if self.cloud_pilot else "none"
        )
        return (
            f"Plan[{self.placement}] edge={self.edge_pilot.nodes} devices, "
            f"cloud={cloud}, consumers={self.consumers}, "
            f"~{self.est_throughput_msgs_s:.1f} msgs/s, "
            f"~{self.est_latency_s * 1e3:.0f} ms, ${self.est_cost_per_hour:.2f}/h"
        )


class ResourcePlanner:
    """Sizes and prices a continuum deployment for a workload."""

    def __init__(
        self,
        topology: ContinuumTopology,
        edge_site: str,
        cloud_site: str,
        catalog: tuple = DEFAULT_PRICED_CATALOG,
        edge_device_cost_per_hour: float = EDGE_DEVICE_COST_PER_HOUR,
    ) -> None:
        if not catalog:
            raise ValidationError("catalog must be non-empty")
        topology.site(edge_site)
        topology.site(cloud_site)
        self.topology = topology
        self.edge_site = edge_site
        self.cloud_site = cloud_site
        self.catalog = tuple(catalog)
        self.edge_device_cost_per_hour = float(edge_device_cost_per_hour)

    # -- analytic pieces -----------------------------------------------------

    def _link_profile(self):
        return self.topology.link(self.edge_site, self.cloud_site).profile

    def link_capacity_mb_s(self) -> float:
        return self._link_profile().mean_bandwidth_mbps / 8.0

    def _cheapest_covering(self, cores_needed: float) -> tuple:
        """(instance, nodes) minimising price while covering the cores."""
        best = None
        for instance in self.catalog:
            nodes = max(1, math.ceil(cores_needed / instance.spec.cores))
            price = nodes * instance.price_per_hour
            if best is None or price < best[2] or (
                price == best[2] and nodes < best[1]
            ):
                best = (instance, nodes, price)
        return best[0], best[1]

    def _latency(self, message_bytes: int, service_s: float) -> float:
        profile = self._link_profile()
        transfer = profile.mean_rtt_ms / 2000.0 + message_bytes * 8.0 / (
            profile.mean_bandwidth_mbps * 1e6
        )
        return transfer + service_s

    # -- planning -------------------------------------------------------------------

    def plan(self, workload: WorkloadProfile, objective: ApplicationObjective) -> Plan:
        """Produce the preferred feasible plan; raises
        :class:`InfeasibleObjective` when none exists."""
        candidates = []
        for builder in (self._plan_cloud, self._plan_hybrid, self._plan_edge):
            try:
                candidate = builder(workload)
            except InfeasibleObjective:
                continue
            if self._meets(candidate, workload, objective):
                candidates.append(candidate)
        if not candidates:
            raise InfeasibleObjective(
                f"no placement satisfies {objective} for {workload.demand_mb_s:.1f} MB/s "
                f"over a {self.link_capacity_mb_s():.1f} MB/s link"
            )
        key = {
            "cost": lambda p: (p.est_cost_per_hour, p.est_latency_s),
            "latency": lambda p: (p.est_latency_s, p.est_cost_per_hour),
            "energy": lambda p: (p.placement != "edge", p.est_cost_per_hour),
        }[objective.prefer]
        return min(candidates, key=key)

    def _meets(self, plan: Plan, workload: WorkloadProfile, objective: ApplicationObjective) -> bool:
        if plan.est_throughput_msgs_s < workload.rate_msgs_s:
            return False  # must at least keep up with the sources
        if objective.min_throughput_msgs_s and plan.est_throughput_msgs_s < objective.min_throughput_msgs_s:
            return False
        if objective.max_latency_s and plan.est_latency_s > objective.max_latency_s:
            return False
        if objective.max_cost_per_hour and plan.est_cost_per_hour > objective.max_cost_per_hour:
            return False
        return True

    def _edge_pilot(self, workload: WorkloadProfile) -> PilotDescription:
        return PilotDescription(
            resource="ssh",
            site=self.edge_site,
            nodes=workload.num_devices,
            node_spec=ResourceSpec(cores=1, memory_gb=4),
        )

    def _plan_cloud(self, workload: WorkloadProfile) -> Plan:
        return self._plan_transfer(workload, compressed=False)

    def _plan_hybrid(self, workload: WorkloadProfile) -> Plan:
        if workload.compression_ratio >= 1.0:
            raise InfeasibleObjective("no compression step available")
        return self._plan_transfer(workload, compressed=True)

    def _plan_transfer(self, workload: WorkloadProfile, compressed: bool) -> Plan:
        wire_bytes = int(
            workload.message_bytes
            * (workload.compression_ratio if compressed else 1.0)
        )
        demand = workload.rate_msgs_s * wire_bytes / 1e6
        capacity = self.link_capacity_mb_s()
        if demand > capacity:
            raise InfeasibleObjective(
                f"link carries {capacity:.1f} MB/s, workload demands {demand:.1f} MB/s"
            )
        cores = workload.required_cloud_cores
        instance, nodes = self._cheapest_covering(cores)
        consumers = max(1, math.ceil(cores))
        cost = (
            nodes * instance.price_per_hour
            + workload.num_devices * self.edge_device_cost_per_hour
        )
        throughput = min(
            consumers / workload.process_cost_s if workload.process_cost_s else float("inf"),
            capacity * 1e6 / max(wire_bytes, 1),
        )
        placement = "hybrid" if compressed else "cloud"
        return Plan(
            placement=placement,
            edge_pilot=self._edge_pilot(workload),
            cloud_pilot=PilotDescription(
                resource="cloud",
                site=self.cloud_site,
                nodes=nodes,
                instance_type=instance.name,
            ),
            consumers=consumers,
            instance=instance,
            est_throughput_msgs_s=throughput,
            est_latency_s=self._latency(wire_bytes, workload.process_cost_s),
            est_cost_per_hour=cost,
            rationale=(
                f"{placement}: {demand:.1f} of {capacity:.1f} MB/s link used, "
                f"{cores:.1f} cores -> {nodes} x {instance.name}"
            ),
        )

    def _plan_edge(self, workload: WorkloadProfile) -> Plan:
        per_message = workload.process_cost_s * workload.edge_slowdown
        device_rate = workload.rate_msgs_s / workload.num_devices
        if device_rate * per_message > 1.0:
            raise InfeasibleObjective(
                f"devices cannot keep up: need {device_rate * per_message:.2f} "
                "cores per single-core device"
            )
        throughput = workload.num_devices / per_message
        cost = workload.num_devices * self.edge_device_cost_per_hour
        return Plan(
            placement="edge",
            edge_pilot=self._edge_pilot(workload),
            cloud_pilot=None,
            consumers=workload.num_devices,
            instance=None,
            est_throughput_msgs_s=throughput,
            est_latency_s=per_message,
            est_cost_per_hour=cost,
            rationale=(
                f"edge: {per_message * 1e3:.0f} ms/msg on-device, no transfer"
            ),
        )


def validate_plan(
    plan: Plan,
    workload: WorkloadProfile,
    link_profile=None,
    messages_per_device: int = 64,
    seed: int = 0,
):
    """Replay the plan in the simulator; returns (ok, sim_result).

    ``link_profile`` is the edge->cloud link for cloud/hybrid plans
    (default loopback); edge plans never cross a link. Sources produce
    at the workload's aggregate rate. ``ok`` is True when the simulated
    steady-state throughput reaches at least 70% of the offered rate —
    the analytic model ignores queueing transients, so exact equality is
    not expected.
    """
    from repro.netem.link import LOOPBACK
    from repro.sim import SimConfig, SimulatedPipeline, StageCostModel

    if plan.placement == "edge":
        process = StageCostModel(
            "edge-process", workload.process_cost_s * workload.edge_slowdown
        )
        uplink = LOOPBACK
        consumers = workload.num_devices
        points = workload.points
    else:
        process = StageCostModel("cloud-process", workload.process_cost_s)
        uplink = link_profile if link_profile is not None else LOOPBACK
        consumers = plan.consumers
        points = int(
            workload.points
            * (workload.compression_ratio if plan.placement == "hybrid" else 1.0)
        )
    # Per-device production interval matching the aggregate offered rate.
    per_device_interval = workload.num_devices / workload.rate_msgs_s
    cfg = SimConfig(
        num_devices=workload.num_devices,
        messages_per_device=messages_per_device,
        points=max(1, points),
        features=workload.features,
        num_consumers=consumers,
        process_cost=process,
        produce_cost=StageCostModel("produce", per_device_interval, jitter=0.05),
        uplink=uplink,
        seed=seed,
    )
    result = SimulatedPipeline(cfg).run()
    ok = result.report.throughput_msgs_s >= 0.7 * workload.rate_msgs_s
    return ok, result
