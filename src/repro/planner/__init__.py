"""Objective-driven resource planning (paper future work).

The paper's conclusion envisions Pilot-Edge as "the basis for a
distributed workload management system that can select, acquire and
dynamically scale resources across the continuum at runtime based on the
application's objectives". This package implements that planner:

- :class:`WorkloadProfile` — the application's demand (message size and
  rate, calibrated per-message compute cost),
- :class:`ApplicationObjective` — what to optimise (throughput floor,
  latency ceiling, cost ceiling; preference ordering),
- :class:`ResourcePlanner` — sizes the consumer tier, picks the VM class
  from a priced catalogue, decides the placement (with the netem
  topology's link model), and emits ready-to-submit
  :class:`~repro.pilot.description.PilotDescription` objects plus a cost
  estimate,
- :func:`validate_plan` — replays the plan through the discrete-event
  simulator and checks the objective is actually met.
"""

from repro.planner.objectives import ApplicationObjective, WorkloadProfile
from repro.planner.planner import (
    InfeasibleObjective,
    Plan,
    PricedInstance,
    ResourcePlanner,
    DEFAULT_PRICED_CATALOG,
    validate_plan,
)

__all__ = [
    "ApplicationObjective",
    "WorkloadProfile",
    "ResourcePlanner",
    "Plan",
    "PricedInstance",
    "InfeasibleObjective",
    "DEFAULT_PRICED_CATALOG",
    "validate_plan",
]
