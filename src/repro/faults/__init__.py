"""Deterministic fault injection for chaos tests and robustness benchmarks.

The injector models the failure classes the paper's edge-to-cloud runs
actually hit — lossy last-mile links, flapping TCP connections, stalled
brokers — as *seeded, scripted plans* rather than background randomness,
so a chaos test replays identically on every run.
"""

from repro.faults.injector import FaultInjected, FaultInjector, FaultyBroker

__all__ = ["FaultInjected", "FaultInjector", "FaultyBroker"]
